//! The worker side of multi-box distributed training.
//!
//! `pigeon work --coordinator URL` runs [`run_worker`]: a poll loop that
//! leases one shard at a time from the coordinator (`POST /v1/leases`),
//! checks the content-addressed partial cache before doing any work
//! (`GET /v1/partials/<key>`), and otherwise extracts the shard locally
//! — the same `build_training_partial` the sharded CLI path uses — and
//! uploads the `.pgnc` partial (`POST /v1/partials`). The coordinator
//! runs the finishing merge once coverage is exact, so the resulting
//! model is byte-identical to a single-process `pigeon train` over the
//! same corpus.
//!
//! The HTTP client here is the same dependency-free std-only style as
//! the server: `Connection: close` requests over a `TcpStream` with
//! `Content-Length` framing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pigeon_corpus::Language;

use crate::{Pigeon, PigeonConfig};

/// The on-disk file extension for each language's sources — shared by
/// the CLI's corpus scans and the coordinator/worker corpus listing.
pub fn language_ext(language: Language) -> &'static str {
    match language {
        Language::JavaScript => "js",
        Language::Java => "java",
        Language::Python => "py",
        Language::CSharp => "cs",
    }
}

/// Lists a corpus directory exactly the way `pigeon train --dir` does:
/// regular files with the language's extension, sorted by path, read in
/// full. Returns `(file_name, contents)` pairs — the names feed the
/// shard content addresses, the contents feed extraction. The
/// coordinator and every worker run this same listing, which is what
/// makes their independently derived cache keys agree.
///
/// # Errors
///
/// Returns a message when the directory cannot be read or holds no
/// matching files.
pub fn list_corpus(language: Language, dir: &str) -> Result<Vec<(String, String)>, String> {
    let ext = language_ext(language);
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some(ext))
        .collect();
    if paths.is_empty() {
        return Err(format!("no .{ext} files in {dir}"));
    }
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            std::fs::read_to_string(&path)
                .map(|source| (name, source))
                .map_err(|e| format!("cannot read {}: {e}", path.display()))
        })
        .collect()
}

/// One parsed HTTP response: status and body bytes.
struct Response {
    status: u16,
    body: Vec<u8>,
}

/// Normalises a coordinator URL (`http://host:port`, with or without
/// the scheme or a trailing slash) to the bare `host:port` dial string.
fn dial_addr(coordinator: &str) -> &str {
    coordinator
        .trim_start_matches("http://")
        .trim_end_matches('/')
}

/// One `Connection: close` HTTP/1.1 exchange against the coordinator.
fn http(
    coordinator: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<Response, String> {
    let addr = dial_addr(coordinator);
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    // The request goes out as two writes (head, body); TCP_NODELAY
    // keeps Nagle from holding the body for the peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    (&stream)
        .write_all(head.as_bytes())
        .and_then(|()| (&stream).write_all(body))
        .map_err(|e| format!("write to {addr} failed: {e}"))?;

    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read from {addr} failed: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}: {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read from {addr} failed: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = value.parse().ok();
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read from {addr} failed: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read from {addr} failed: {e}"))?;
        }
    }
    Ok(Response { status, body })
}

fn http_json(
    coordinator: &str,
    method: &str,
    path: &str,
    request: &serde_json::Value,
) -> Result<(u16, serde_json::Value), String> {
    let body = serde_json::to_string(request).map_err(|e| e.to_string())?;
    let response = http(
        coordinator,
        method,
        path,
        "application/json",
        body.as_bytes(),
    )?;
    let text = String::from_utf8_lossy(&response.body);
    let value = serde_json::from_str(&text)
        .map_err(|e| format!("coordinator sent invalid JSON for {method} {path}: {e}: {text}"))?;
    Ok((response.status, value))
}

/// Configuration of one [`run_worker`] loop.
pub struct WorkerOptions {
    /// Coordinator base URL (`http://host:port`).
    pub coordinator: String,
    /// Worker name reported on leases (shows up in job status).
    pub name: String,
    /// Poll interval while the coordinator says `wait`.
    pub poll: Duration,
    /// Artificial delay before each upload — straggler injection for
    /// the reassignment tests; zero in real use.
    pub throttle: Duration,
    /// Extraction fan-out inside this worker; `0` uses all cores.
    pub jobs: usize,
    /// Exit once the coordinator has no work (after a few idle polls);
    /// `false` polls forever, picking up jobs as they are created.
    pub exit_when_idle: bool,
}

/// How many consecutive `idle` polls (no running job anywhere) before
/// an `exit_when_idle` worker goes home.
const IDLE_POLLS_BEFORE_EXIT: u32 = 3;

/// How many consecutive connection failures to tolerate before giving
/// up — rides out a coordinator restart mid-job.
const MAX_CONNECT_FAILURES: u32 = 30;

/// Renders a JSON value for error messages.
fn render(v: &serde_json::Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unrenderable JSON>".to_owned())
}

fn field_str<'a>(v: &'a serde_json::Value, field: &str) -> Result<&'a str, String> {
    v.get(field)
        .and_then(|s| s.as_str())
        .ok_or_else(|| format!("lease is missing `{field}`: {}", render(v)))
}

fn field_u64(v: &serde_json::Value, field: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(|n| n.as_u64())
        .ok_or_else(|| format!("lease is missing `{field}`: {}", render(v)))
}

/// Extracts and uploads one leased shard; returns `"cached"` when the
/// partial was already in the coordinator's cache.
fn work_one_lease(opts: &WorkerOptions, lease: &serde_json::Value) -> Result<&'static str, String> {
    let job = field_u64(lease, "job")?;
    let shard_index = field_u64(lease, "shard_index")? as usize;
    let shard_count = field_u64(lease, "shard_count")? as usize;
    let key = field_str(lease, "cache_key")?;

    // Cache pre-flight: if any worker (or a previous run) already
    // produced this exact shard under this exact configuration, re-post
    // the cached bytes instead of extracting anything.
    let cached = http(
        &opts.coordinator,
        "GET",
        &format!("/v1/partials/{key}"),
        "application/json",
        b"",
    )?;
    let partial =
        if cached.status == 200 {
            cached.body
        } else {
            let language_name = field_str(lease, "language")?;
            let language = Language::from_name(language_name)
                .ok_or_else(|| format!("lease names unknown language `{language_name}`"))?;
            let target_name = field_str(lease, "target")?;
            let target = crate::target_from_name(target_name)
                .ok_or_else(|| format!("lease names unknown target `{target_name}`"))?;
            let config =
                PigeonConfig::builder()
                    .limits(
                        field_u64(lease, "max_length")? as usize,
                        field_u64(lease, "max_width")? as usize,
                    )
                    .keep_prob(lease.get("keep_prob").and_then(|n| n.as_f64()).ok_or_else(
                        || format!("lease is missing `keep_prob`: {}", render(lease)),
                    )?)
                    .dataflow_contexts(
                        lease
                            .get("dataflow_contexts")
                            .and_then(|b| b.as_bool())
                            .unwrap_or(false),
                    )
                    .jobs(opts.jobs)
                    .build()
                    .map_err(|e| e.to_string())?;
            let files = list_corpus(language, field_str(lease, "corpus_dir")?)?;
            let sources: Vec<&str> = files.iter().map(|(_, s)| s.as_str()).collect();
            Pigeon::build_training_partial(
                language,
                target,
                &sources,
                shard_index,
                shard_count,
                &config,
            )
            .map_err(|e| e.to_string())?
        };
    if !opts.throttle.is_zero() {
        std::thread::sleep(opts.throttle);
    }
    let response = http(
        &opts.coordinator,
        "POST",
        "/v1/partials",
        "application/octet-stream",
        &partial,
    )?;
    if response.status != 200 {
        return Err(format!(
            "coordinator rejected shard {shard_index}/{shard_count} of job {job}: {}",
            String::from_utf8_lossy(&response.body)
        ));
    }
    Ok(if cached.status == 200 {
        "cached"
    } else {
        "extracted"
    })
}

/// The worker loop: lease, work, repeat. Connection errors are retried
/// with the poll delay (up to a bound) so a coordinator restart mid-job
/// does not kill the fleet; shard-level failures are reported and the
/// loop moves on (the lease expires and the shard is reassigned).
///
/// # Errors
///
/// Returns a message when the coordinator stays unreachable past the
/// retry budget.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), String> {
    let mut idle_polls = 0u32;
    let mut connect_failures = 0u32;
    let mut done = 0u64;
    let mut cached = 0u64;
    loop {
        let lease = match http_json(
            &opts.coordinator,
            "POST",
            "/v1/leases",
            &serde_json::json!({ "worker": opts.name }),
        ) {
            Ok((200, value)) => value,
            Ok((status, value)) => {
                return Err(format!(
                    "coordinator refused the lease poll ({status}): {}",
                    render(&value)
                ));
            }
            Err(e) => {
                connect_failures += 1;
                if connect_failures >= MAX_CONNECT_FAILURES {
                    return Err(format!(
                        "pigeon work: giving up after {connect_failures} failed polls: {e}"
                    ));
                }
                eprintln!("pigeon work: poll failed ({e}); retrying");
                std::thread::sleep(opts.poll.max(Duration::from_millis(50)));
                continue;
            }
        };
        connect_failures = 0;
        match lease.get("status").and_then(|s| s.as_str()) {
            Some("assigned") => {
                idle_polls = 0;
                match work_one_lease(opts, &lease) {
                    Ok(outcome) => {
                        done += 1;
                        if outcome == "cached" {
                            cached += 1;
                        }
                        println!(
                            "pigeon work: {} shard {}/{} of job {} ({outcome})",
                            opts.name,
                            lease
                                .get("shard_index")
                                .and_then(|n| n.as_u64())
                                .unwrap_or(0),
                            lease
                                .get("shard_count")
                                .and_then(|n| n.as_u64())
                                .unwrap_or(0),
                            lease.get("job").and_then(|n| n.as_u64()).unwrap_or(0),
                        );
                    }
                    Err(e) => {
                        // The lease deadline reassigns this shard; keep
                        // polling rather than dying mid-fleet.
                        eprintln!("pigeon work: shard failed: {e}");
                        std::thread::sleep(opts.poll.max(Duration::from_millis(50)));
                    }
                }
            }
            Some("wait") => {
                idle_polls = 0;
                std::thread::sleep(opts.poll);
            }
            Some("idle") => {
                idle_polls += 1;
                if opts.exit_when_idle && idle_polls >= IDLE_POLLS_BEFORE_EXIT {
                    println!(
                        "pigeon work: {} idle; exiting after {done} shard{} ({cached} cached)",
                        opts.name,
                        if done == 1 { "" } else { "s" },
                    );
                    return Ok(());
                }
                std::thread::sleep(opts.poll);
            }
            other => {
                return Err(format!(
                    "coordinator sent unknown lease status {other:?}: {}",
                    render(&lease)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_addr_strips_scheme_and_slash() {
        assert_eq!(dial_addr("http://127.0.0.1:8080/"), "127.0.0.1:8080");
        assert_eq!(dial_addr("127.0.0.1:8080"), "127.0.0.1:8080");
    }

    #[test]
    fn list_corpus_sorts_and_filters_by_extension() {
        let dir = std::env::temp_dir().join(format!("pigeon-distrib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.js"), "function b(x) { return x; }").unwrap();
        std::fs::write(dir.join("a.js"), "function a(y) { return y; }").unwrap();
        std::fs::write(dir.join("ignore.txt"), "not a source").unwrap();
        let files = list_corpus(Language::JavaScript, dir.to_str().unwrap()).unwrap();
        assert_eq!(
            files.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            ["a.js", "b.js"]
        );
        assert!(files[0].1.contains("function a"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_corpus_rejects_an_empty_directory() {
        let dir = std::env::temp_dir().join(format!("pigeon-distrib-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = list_corpus(Language::JavaScript, dir.to_str().unwrap()).unwrap_err();
        assert!(err.contains("no .js files"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
