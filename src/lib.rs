//! PIGEON: a general path-based representation for predicting program
//! properties.
//!
//! This workspace reproduces *A General Path-Based Representation for
//! Predicting Program Properties* (Alon, Zilberstein, Levy & Yahav, PLDI
//! 2018) as a complete Rust system: four language frontends, the AST-path
//! extraction at the heart of the paper, both learners it evaluates (a
//! Nice2Predict-style CRF and SGNS word embeddings), the paper's
//! baselines, and a benchmark harness regenerating every table and
//! figure. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! The crate re-exports each subsystem under a short module name and
//! offers [`Pigeon`], a high-level facade covering the common use case:
//! train a variable-name (or method-name) predictor on a corpus and query
//! it on new programs.
//!
//! # Quickstart
//!
//! ```
//! use pigeon::{corpus, Pigeon, PigeonConfig};
//! use pigeon::corpus::{CorpusConfig, Language};
//!
//! // Train on a small synthetic JavaScript corpus…
//! let training = corpus::generate(
//!     Language::JavaScript,
//!     &CorpusConfig::default().with_files(120),
//! );
//! let sources: Vec<&str> =
//!     training.docs.iter().map(|d| d.source.as_str()).collect();
//! let namer = Pigeon::train_variable_namer(
//!     Language::JavaScript,
//!     &sources,
//!     &PigeonConfig::default(),
//! ).unwrap();
//!
//! // …then ask it to name the paper's Fig. 1 variable `d`.
//! let program = "function f() { var d = false; while (!d) { \
//!                if (check()) { d = true; } } }";
//! let predictions = namer.predict(program).unwrap();
//! assert_eq!(predictions.len(), 1);
//! assert_eq!(predictions[0].current_name, "d");
//! assert!(!predictions[0].candidates.is_empty());
//! ```

pub use pigeon_analysis as analysis;
pub use pigeon_ast as ast;
pub use pigeon_core as core;
pub use pigeon_corpus as corpus;
pub use pigeon_crf as crf;
pub use pigeon_csharp as csharp;
pub use pigeon_eval as eval;
pub use pigeon_java as java;
pub use pigeon_js as js;
pub use pigeon_python as python;
pub use pigeon_telemetry as telemetry;
pub use pigeon_word2vec as word2vec;

pub mod distrib;
pub mod serve;

use pigeon_core::{derive_seed, downsample, Abstraction, ExtractionConfig, DOWNSAMPLE_SEED};
use pigeon_corpus::Language;
use pigeon_crf::{CrfConfig, CrfModel, RawStatistics, TrainControl, TrainOutcome, TrainState};
use pigeon_eval::partial::{DocPartial, PartialMeta, TrainPartial};
use pigeon_eval::{
    build_name_graph, build_name_graph_lookup, extract_edge_features, parallel_map_indexed,
    shard_range, ElementClass, Representation, Vocabs,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration of a [`Pigeon`] predictor.
#[derive(Debug, Clone)]
pub struct PigeonConfig {
    /// Path length/width limits (§4.2 of the paper).
    pub extraction: ExtractionConfig,
    /// Path abstraction level (§5.6).
    pub abstraction: Abstraction,
    /// CRF training parameters.
    pub crf: CrfConfig,
    /// Candidates returned per prediction.
    pub top_k: usize,
    /// Probability of keeping each extracted path-context during
    /// training (§5.5 of the paper: downsampling trades a little accuracy
    /// for much smaller models). `1.0` keeps everything; the sampling
    /// seed is fixed, so a given `keep_prob` is reproducible.
    pub keep_prob: f64,
    /// Worker threads for per-source parse + extraction and the CRF's
    /// statistics pass during training; `1` is fully serial, `0` uses
    /// all available cores. Per-source results merge in source order and
    /// the statistics merge is commutative, so the trained model is
    /// byte-identical for any value.
    pub jobs: usize,
    /// Also extract edge-typed data-flow path-contexts (`lw:`/`lu:`
    /// features over last-write/last-use edges from the data-flow
    /// engine in `pigeon-analysis`). Off by default; with it off, every
    /// training and serialisation surface is byte-identical to builds
    /// that predate the knob.
    pub dataflow_contexts: bool,
}

impl Default for PigeonConfig {
    fn default() -> Self {
        PigeonConfig {
            extraction: ExtractionConfig::with_limits(4, 3),
            abstraction: Abstraction::Full,
            crf: CrfConfig::default(),
            top_k: 8,
            keep_prob: 1.0,
            jobs: 1,
            dataflow_contexts: false,
        }
    }
}

impl PigeonConfig {
    /// A validating builder starting from the defaults. Unlike struct
    /// literals, [`PigeonConfigBuilder::build`] rejects configurations
    /// that would silently train a useless model (`max_length == 0`,
    /// `keep_prob` outside `(0, 1]`, …).
    pub fn builder() -> PigeonConfigBuilder {
        PigeonConfigBuilder {
            config: PigeonConfig::default(),
        }
    }
}

/// Builder for [`PigeonConfig`]; see [`PigeonConfig::builder`].
#[derive(Debug, Clone)]
pub struct PigeonConfigBuilder {
    config: PigeonConfig,
}

impl PigeonConfigBuilder {
    /// Path length/width limits (§4.2 of the paper).
    pub fn extraction(mut self, extraction: ExtractionConfig) -> Self {
        self.config.extraction = extraction;
        self
    }

    /// Shorthand for the two extraction limits.
    pub fn limits(mut self, max_length: usize, max_width: usize) -> Self {
        let semi = self.config.extraction.semi_paths;
        self.config.extraction =
            ExtractionConfig::with_limits(max_length, max_width).semi_paths(semi);
        self
    }

    /// Also emit semi-paths (terminal → ancestor).
    pub fn semi_paths(mut self, on: bool) -> Self {
        self.config.extraction.semi_paths = on;
        self
    }

    /// Path abstraction level (§5.6).
    pub fn abstraction(mut self, abstraction: Abstraction) -> Self {
        self.config.abstraction = abstraction;
        self
    }

    /// CRF training parameters.
    pub fn crf(mut self, crf: CrfConfig) -> Self {
        self.config.crf = crf;
        self
    }

    /// Candidates returned per prediction.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.config.top_k = top_k;
        self
    }

    /// Training-time path-context keep probability (§5.5).
    pub fn keep_prob(mut self, keep_prob: f64) -> Self {
        self.config.keep_prob = keep_prob;
        self
    }

    /// Worker threads (`0` = all cores).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Also extract edge-typed data-flow path-contexts (last-write /
    /// last-use edges, rendered as `lw:`/`lu:`-prefixed features).
    pub fn dataflow_contexts(mut self, on: bool) -> Self {
        self.config.dataflow_contexts = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`PigeonError`] with [`ErrorKind::Config`] when the
    /// configuration is unusable:
    /// * `max_length == 0` — no path fits, extraction is empty;
    /// * `keep_prob` outside `(0, 1]` or not finite;
    /// * `top_k == 0` — predictions could never carry a candidate;
    /// * `crf.epochs == 0` — the model would never train.
    pub fn build(self) -> Result<PigeonConfig, PigeonError> {
        let c = &self.config;
        if c.extraction.max_length == 0 {
            return Err(PigeonError::config(
                "extraction.max_length must be at least 1 (0 extracts nothing)",
            ));
        }
        if !(c.keep_prob > 0.0 && c.keep_prob <= 1.0) {
            return Err(PigeonError::config(format!(
                "keep_prob must be in (0, 1], got {}",
                c.keep_prob
            )));
        }
        if c.top_k == 0 {
            return Err(PigeonError::config("top_k must be at least 1"));
        }
        if c.crf.epochs == 0 {
            return Err(PigeonError::config(
                "crf.epochs must be at least 1 (0 never trains)",
            ));
        }
        Ok(self.config)
    }
}

/// Stable classification of a [`PigeonError`] — the machine-readable
/// part of the v1 API error contract. The [`PigeonError::code`] string
/// of each kind appears verbatim in HTTP error bodies and per-source
/// batch errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A source program failed to parse.
    Parse,
    /// A configuration was rejected (builder validation, bad CLI flag).
    Config,
    /// A serialised model failed to load or validate.
    ModelFormat,
    /// An underlying I/O operation failed.
    Io,
    /// Anything else — a bug or an unclassified failure.
    Internal,
}

impl ErrorKind {
    /// The stable machine-readable code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Config => "config",
            ErrorKind::ModelFormat => "model-format",
            ErrorKind::Io => "io",
            ErrorKind::Internal => "internal",
        }
    }
}

/// An error from the [`Pigeon`] facade, classified by [`ErrorKind`].
#[derive(Debug, Clone)]
pub struct PigeonError {
    kind: ErrorKind,
    message: String,
}

impl PigeonError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        PigeonError {
            kind,
            message: message.into(),
        }
    }

    /// A parse failure.
    pub fn parse(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Parse, message)
    }

    /// A rejected configuration.
    pub fn config(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Config, message)
    }

    /// A malformed or invalid serialised model.
    pub fn model_format(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::ModelFormat, message)
    }

    /// An I/O failure.
    pub fn io(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Io, message)
    }

    /// An unclassified failure.
    pub fn internal(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Internal, message)
    }

    /// The error's stable classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The stable machine-readable code (`"parse"`, `"config"`,
    /// `"model-format"`, `"io"`, `"internal"`) carried by API responses.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for PigeonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PigeonError {}

impl From<std::io::Error> for PigeonError {
    fn from(e: std::io::Error) -> Self {
        PigeonError::io(e.to_string())
    }
}

/// One predicted name for a program element.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The element's name as written in the query program (possibly
    /// stripped/minified).
    pub current_name: String,
    /// The model's best suggestion.
    pub predicted_name: String,
    /// Ranked `(name, score)` candidates, best first — the paper's top-k
    /// suggestion API (§5.1).
    pub candidates: Vec<(String, f32)>,
}

/// A trained name predictor: the paper's PIGEON tool for one language and
/// one task.
#[derive(Debug)]
pub struct Pigeon {
    language: Language,
    target: ElementClass,
    config: PigeonConfig,
    vocabs: Vocabs,
    model: CrfModel,
}

impl Pigeon {
    /// Trains a local-variable/parameter name predictor on `sources`.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] when any training source fails to parse.
    pub fn train_variable_namer(
        language: Language,
        sources: &[&str],
        config: &PigeonConfig,
    ) -> Result<Pigeon, PigeonError> {
        Pigeon::train(language, ElementClass::Variable, sources, config)
    }

    /// Trains a method-name predictor on `sources`.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] when any training source fails to parse.
    pub fn train_method_namer(
        language: Language,
        sources: &[&str],
        config: &PigeonConfig,
    ) -> Result<Pigeon, PigeonError> {
        Pigeon::train(language, ElementClass::Method, sources, config)
    }

    fn train(
        language: Language,
        target: ElementClass,
        sources: &[&str],
        config: &PigeonConfig,
    ) -> Result<Pigeon, PigeonError> {
        let _span = telemetry::span("train");
        let (vocabs, instances) = build_training_inputs(language, target, sources, 0, config)?;
        // The CRF's statistics pass shares the same worker budget; its
        // sequential-update training is byte-identical for any value.
        let crf_cfg = CrfConfig {
            jobs: config.jobs,
            ..config.crf
        };
        let model = pigeon_crf::train(&instances, vocabs.labels.len() as u32, &crf_cfg);
        Ok(Pigeon {
            language,
            target,
            config: config.clone(),
            vocabs,
            model,
        })
    }

    /// Trains a name predictor with checkpoint/resume control — the
    /// engine behind `pigeon train --checkpoint-every/--resume`. The
    /// corpus pipeline is identical to [`Pigeon::train_variable_namer`];
    /// only the SGD loop is driven through `control`, so a run that is
    /// never interrupted produces the byte-identical model.
    ///
    /// # Errors
    ///
    /// Parse failures ([`ErrorKind::Parse`]), or a resume snapshot whose
    /// fingerprint does not match this corpus and configuration
    /// ([`ErrorKind::Config`]).
    pub fn train_namer_resumable(
        language: Language,
        target: ElementClass,
        sources: &[&str],
        config: &PigeonConfig,
        control: TrainControl<'_>,
    ) -> Result<TrainRun, PigeonError> {
        let _span = telemetry::span("train");
        register_training_metrics();
        let (vocabs, instances) = build_training_inputs(language, target, sources, 0, config)?;
        let crf_cfg = CrfConfig {
            jobs: config.jobs,
            ..config.crf
        };
        let outcome =
            pigeon_crf::train_resumable(&instances, vocabs.labels.len() as u32, &crf_cfg, control)
                .map_err(PigeonError::config)?;
        Ok(match outcome {
            TrainOutcome::Completed(model) => TrainRun::Completed(Box::new(Pigeon {
                language,
                target,
                config: config.clone(),
                vocabs,
                model: *model,
            })),
            TrainOutcome::Interrupted(state) => TrainRun::Interrupted(state),
        })
    }

    /// Runs extraction and statistics collection over one deterministic
    /// 1/`shard_count` slice of `sources` (the **full** corpus list;
    /// slicing is internal so every shard agrees on global document
    /// indices), returning a partial statistics file — a `.pgnc`
    /// container of kind `partial` for `pigeon merge`.
    ///
    /// # Errors
    ///
    /// A shard index out of range ([`ErrorKind::Config`]) or a source in
    /// the shard that fails to parse ([`ErrorKind::Parse`]).
    pub fn build_training_partial(
        language: Language,
        target: ElementClass,
        sources: &[&str],
        shard_index: usize,
        shard_count: usize,
        config: &PigeonConfig,
    ) -> Result<Vec<u8>, PigeonError> {
        let _span = telemetry::span("train_shard");
        if shard_count == 0 || shard_index >= shard_count {
            return Err(PigeonError::config(format!(
                "shard index {shard_index} out of range {shard_count}"
            )));
        }
        let range = shard_range(sources.len(), shard_index, shard_count);
        let slice = &sources[range.clone()];
        let mut docs = Vec::with_capacity(slice.len());
        for (offset, built) in build_doc_partials(language, target, slice, range.start, config)?
            .into_iter()
            .enumerate()
        {
            let (labels, features, instance) = built;
            let stats =
                RawStatistics::collect(std::slice::from_ref(&instance), labels.len() as u32);
            docs.push(DocPartial {
                global_index: (range.start + offset) as u32,
                labels,
                features,
                instance,
                stats,
            });
        }
        let meta = training_partial_meta(
            language,
            target,
            config,
            shard_index as u32,
            shard_count as u32,
            sources.len() as u32,
        );
        Ok(pigeon_eval::partial::encode_partial(&TrainPartial {
            meta,
            docs,
        }))
    }

    /// Merges partial statistics files written by
    /// [`Pigeon::build_training_partial`] and finishes training — the
    /// engine behind `pigeon merge`. The result is byte-identical to
    /// single-process training on the full corpus, for any shard count.
    ///
    /// # Errors
    ///
    /// Malformed partials ([`ErrorKind::ModelFormat`]), partials built
    /// under different configurations or with missing/duplicate shards
    /// ([`ErrorKind::Config`] — the message names the differing knob).
    pub fn from_partials(parts: &[Vec<u8>]) -> Result<Pigeon, PigeonError> {
        let _span = telemetry::span("merge_train");
        register_training_metrics();
        let decoded: Vec<TrainPartial> = parts
            .iter()
            .enumerate()
            .map(|(i, bytes)| {
                pigeon_eval::partial::decode_partial(bytes)
                    .map_err(|e| PigeonError::model_format(format!("partial {i}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        let merged = pigeon_eval::partial::merge_partials(&decoded).map_err(PigeonError::config)?;
        let meta = &merged.meta;
        let err = |m: String| PigeonError::model_format(m);
        let language = Language::from_name(&meta.language)
            .ok_or_else(|| err(format!("partial: unknown language `{}`", meta.language)))?;
        let target = target_from_name(&meta.target)
            .ok_or_else(|| err(format!("partial: unknown target `{}`", meta.target)))?;
        let abstraction = Abstraction::from_name(&meta.abstraction).ok_or_else(|| {
            err(format!(
                "partial: unknown abstraction `{}`",
                meta.abstraction
            ))
        })?;
        let mut extraction =
            ExtractionConfig::with_limits(meta.max_length as usize, meta.max_width as usize);
        extraction.semi_paths = meta.semi_paths;
        let crf_cfg = CrfConfig {
            jobs: 1,
            ..meta.crf
        };
        let config = PigeonConfig {
            extraction,
            abstraction,
            crf: crf_cfg,
            top_k: meta.top_k as usize,
            keep_prob: meta.keep_prob,
            jobs: 1,
            dataflow_contexts: meta.dataflow_contexts,
        };
        let model = pigeon_crf::train_from_statistics(
            &merged.instances,
            merged.vocabs.labels.len() as u32,
            &crf_cfg,
            merged.stats,
        )
        .map_err(PigeonError::internal)?;
        Ok(Pigeon {
            language,
            target,
            config,
            vocabs: merged.vocabs,
            model,
        })
    }

    /// Folds new documents into this trained predictor **without
    /// re-extracting the original corpus** — the engine behind
    /// `pigeon train --update MODEL --add DIR`. The update is
    /// approximate by design: the base model's (already truncated)
    /// count tables seed the statistics, new documents' counts are
    /// absorbed, and the SGD loop warm-starts from the base weights over
    /// the new instances only.
    ///
    /// # Errors
    ///
    /// Artifact-backed predictors ([`ErrorKind::Config`] — compiled
    /// models freeze their weight tables; update the JSON model and
    /// recompile) or a new source that fails to parse
    /// ([`ErrorKind::Parse`]).
    pub fn update(&self, new_sources: &[&str]) -> Result<Pigeon, PigeonError> {
        let _span = telemetry::span("train_update");
        let mut vocabs = self.vocabs.clone();
        let base_labels = vocabs.labels.len();
        let mut instances = Vec::with_capacity(new_sources.len());
        let extracted =
            build_doc_partials(self.language, self.target, new_sources, 0, &self.config)?;
        {
            let _phase = telemetry::span("graph_build");
            for (labels, features, instance) in extracted {
                // Re-intern the doc-local ids into the (growing) base
                // vocabularies — the same replay the shard merge runs.
                let label_map: Vec<u32> = labels
                    .into_iter()
                    .map(|s| vocabs.labels.intern(s))
                    .collect();
                let feature_map: Vec<u32> = features
                    .into_iter()
                    .map(|s| vocabs.features.intern(s))
                    .collect();
                instances.push(remap_instance(&instance, &label_map, &feature_map));
            }
        }
        let num_labels = vocabs.labels.len() as u32;
        let new_stats = RawStatistics::collect(&instances, num_labels);
        let crf_cfg = CrfConfig {
            jobs: self.config.jobs,
            ..self.config.crf
        };
        let model = pigeon_crf::train_incremental(
            &instances,
            num_labels,
            &crf_cfg,
            &self.model,
            &new_stats,
        )
        .map_err(PigeonError::config)?;
        debug_assert!(base_labels <= vocabs.labels.len());
        Ok(Pigeon {
            language: self.language,
            target: self.target,
            config: self.config.clone(),
            vocabs,
            model,
        })
    }

    /// The language this predictor was trained for.
    pub fn language(&self) -> Language {
        self.language
    }

    /// The trained CRF model, read-only — the `pigeon audit` model lint
    /// inspects weight tables and candidate sets through this.
    pub fn crf_model(&self) -> &CrfModel {
        &self.model
    }

    /// The label/feature vocabularies the model was trained with.
    pub fn vocabs(&self) -> &Vocabs {
        &self.vocabs
    }

    /// Serialises the trained predictor (model, vocabularies and
    /// configuration) to JSON, for `pigeon predict --model`.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let labels: Vec<String> = self.vocabs.labels.iter().map(|(_, s)| s.clone()).collect();
        let features: Vec<String> = self
            .vocabs
            .features
            .iter()
            .map(|(_, s)| s.clone())
            .collect();
        let mut file = serde_json::json!({
            "language": self.language.name(),
            "target": match self.target {
                ElementClass::Variable => "variables",
                ElementClass::Method => "methods",
                ElementClass::Other => "other",
            },
            "max_length": self.config.extraction.max_length,
            "max_width": self.config.extraction.max_width,
            "semi_paths": self.config.extraction.semi_paths,
            "abstraction": self.config.abstraction.name(),
            "top_k": self.config.top_k,
            "labels": labels,
            "features": features,
            "model": self.model.to_json()?,
        });
        // Inserted only when set: knob-off model files stay
        // byte-identical to files written before the knob existed.
        if self.config.dataflow_contexts {
            file.as_object_mut()
                .expect("json! object literal")
                .insert("dataflow_contexts".to_owned(), serde_json::json!(true));
        }
        serde_json::to_string(&file)
    }

    /// Restores a predictor serialised by [`Pigeon::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] on malformed input.
    pub fn from_json(json: &str) -> Result<Pigeon, PigeonError> {
        let err = |m: &str| PigeonError::model_format(format!("model file: {m}"));
        let v: serde_json::Value = serde_json::from_str(json).map_err(|e| err(&e.to_string()))?;
        let str_field = |k: &str| -> Result<&str, PigeonError> {
            v.get(k)
                .and_then(|x| x.as_str())
                .ok_or_else(|| err(&format!("missing field `{k}`")))
        };
        let num_field = |k: &str| -> Result<u64, PigeonError> {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| err(&format!("missing field `{k}`")))
        };
        let language =
            Language::from_name(str_field("language")?).ok_or_else(|| err("unknown language"))?;
        let target = match str_field("target")? {
            "variables" => ElementClass::Variable,
            "methods" => ElementClass::Method,
            _ => ElementClass::Other,
        };
        let abstraction = Abstraction::from_name(str_field("abstraction")?)
            .ok_or_else(|| err("unknown abstraction"))?;
        let mut vocabs = Vocabs::new();
        for (key, vocab) in [
            ("labels", &mut vocabs.labels),
            ("features", &mut vocabs.features),
        ] {
            let items = v
                .get(key)
                .and_then(|x| x.as_array())
                .ok_or_else(|| err(&format!("missing field `{key}`")))?;
            for item in items {
                let s = item.as_str().ok_or_else(|| err("non-string vocab item"))?;
                vocab.intern(s.to_owned());
            }
        }
        let model = CrfModel::from_json(str_field("model")?).map_err(|e| err(&e.to_string()))?;
        // A truncated or hand-edited file can carry weight-table ids
        // beyond the vocabularies it ships, non-finite weights, or
        // absurd inference caps; catch that here so `predict` never
        // indexes out of bounds or scores against a poisoned table.
        model
            .validate(vocabs.features.len(), vocabs.labels.len())
            .map_err(|issue| err(&issue.to_string()))?;
        let mut extraction = ExtractionConfig::with_limits(
            num_field("max_length")? as usize,
            num_field("max_width")? as usize,
        );
        extraction.semi_paths = v
            .get("semi_paths")
            .and_then(|x| x.as_bool())
            .unwrap_or(false);
        // Absent in files written before the knob existed (and in every
        // knob-off file since): absent means off.
        let dataflow_contexts = v
            .get("dataflow_contexts")
            .and_then(|x| x.as_bool())
            .unwrap_or(false);
        Ok(Pigeon {
            language,
            target,
            config: PigeonConfig {
                extraction,
                abstraction,
                crf: CrfConfig::default(),
                dataflow_contexts,
                top_k: num_field("top_k")? as usize,
                // Training-only knobs; a deserialized model is for
                // prediction, so the defaults are fine.
                ..PigeonConfig::default()
            },
            vocabs,
            model,
        })
    }

    /// Serialises the trained predictor into the compiled binary
    /// artifact format (see `pigeon_crf::artifact`): the CSR-packed
    /// engine, vocabularies and configuration in one flat,
    /// checksummed file that [`Pigeon::from_artifact`] loads with bulk
    /// array reads instead of JSON parsing and recompilation.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] with [`ErrorKind::ModelFormat`] when the
    /// model carries non-finite weights, or a weight exceeds the `f16`
    /// range under [`crf::artifact::Quant::F16`].
    pub fn to_artifact(&self, quant: crf::artifact::Quant) -> Result<Vec<u8>, PigeonError> {
        let _span = telemetry::span("compile_artifact");
        let labels: Vec<String> = self.vocabs.labels.iter().map(|(_, s)| s.clone()).collect();
        let features: Vec<String> = self
            .vocabs
            .features
            .iter()
            .map(|(_, s)| s.clone())
            .collect();
        let meta = crf::artifact::ArtifactMeta {
            language: self.language.name().to_owned(),
            target: match self.target {
                ElementClass::Variable => "variables",
                ElementClass::Method => "methods",
                ElementClass::Other => "other",
            }
            .to_owned(),
            abstraction: self.config.abstraction.name().to_owned(),
            max_length: self.config.extraction.max_length as u32,
            max_width: self.config.extraction.max_width as u32,
            semi_paths: self.config.extraction.semi_paths,
            top_k: self.config.top_k as u32,
            dataflow_contexts: self.config.dataflow_contexts,
        };
        crf::artifact::write_artifact(&meta, &labels, &features, &self.model, quant)
            .map_err(|m| PigeonError::model_format(format!("compiled artifact: {m}")))
    }

    /// Restores a predictor from a compiled binary artifact written by
    /// [`Pigeon::to_artifact`] (or `pigeon compile`).
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] with [`ErrorKind::ModelFormat`] on any
    /// truncated, bit-flipped or otherwise invalid artifact — the
    /// decoder checks checksums, section bounds, CSR structure, id
    /// ranges and weight finiteness, and never panics on bad input.
    pub fn from_artifact(bytes: &[u8]) -> Result<Pigeon, PigeonError> {
        let _span = telemetry::span("load_artifact");
        let err = |m: &str| PigeonError::model_format(format!("compiled artifact: {m}"));
        let art = crf::artifact::read_artifact(bytes).map_err(|m| err(&m))?;
        let language =
            Language::from_name(&art.meta.language).ok_or_else(|| err("unknown language"))?;
        let target = match art.meta.target.as_str() {
            "variables" => ElementClass::Variable,
            "methods" => ElementClass::Method,
            "other" => ElementClass::Other,
            other => return Err(err(&format!("unknown prediction target `{other}`"))),
        };
        let abstraction = Abstraction::from_name(&art.meta.abstraction)
            .ok_or_else(|| err("unknown abstraction"))?;
        if art.meta.max_length == 0 {
            return Err(err("max_length must be at least 1"));
        }
        if art.meta.top_k == 0 {
            return Err(err("top_k must be at least 1"));
        }
        let mut vocabs = Vocabs::new();
        for (what, items, vocab) in [
            ("label", &art.labels, &mut vocabs.labels),
            ("feature", &art.features, &mut vocabs.features),
        ] {
            for item in items {
                vocab.intern(item.clone());
            }
            // A repeated string would collapse two ids into one and
            // silently shift every id after it.
            if vocab.len() != items.len() {
                return Err(err(&format!("duplicate entry in the {what} vocabulary")));
            }
        }
        let mut extraction = ExtractionConfig::with_limits(
            art.meta.max_length as usize,
            art.meta.max_width as usize,
        );
        extraction.semi_paths = art.meta.semi_paths;
        Ok(Pigeon {
            language,
            target,
            config: PigeonConfig {
                extraction,
                abstraction,
                dataflow_contexts: art.meta.dataflow_contexts,
                top_k: art.meta.top_k as usize,
                // Training-only knobs; an artifact-backed model is for
                // prediction, so the defaults are fine.
                ..PigeonConfig::default()
            },
            vocabs,
            model: art.model,
        })
    }

    /// Loads a serialised predictor from raw bytes, sniffing the format:
    /// the compiled binary artifact when the magic matches, UTF-8 JSON
    /// otherwise. This is what every model-accepting surface (CLI
    /// `--model` flags, `POST /v1/models`) runs.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] with [`ErrorKind::ModelFormat`] on
    /// malformed input in either format.
    pub fn load(bytes: &[u8]) -> Result<Pigeon, PigeonError> {
        if crf::artifact::is_artifact(bytes) {
            return Pigeon::from_artifact(bytes);
        }
        let json = std::str::from_utf8(bytes).map_err(|_| {
            PigeonError::model_format(
                "model file: neither a compiled artifact (bad magic) nor UTF-8 JSON",
            )
        })?;
        Pigeon::from_json(json)
    }

    /// Predicts names for every target element of `source`, in
    /// first-occurrence order.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] when `source` fails to parse.
    pub fn predict(&self, source: &str) -> Result<Vec<Prediction>, PigeonError> {
        let _span = telemetry::span("predict");
        let ast = self.language.parse(source).map_err(PigeonError::parse)?;
        let rep = Representation::AstPaths(self.config.abstraction);
        let mut features = extract_edge_features(self.language, &ast, rep, &self.config.extraction);
        if self.config.dataflow_contexts {
            // A model trained with flow features must see them at
            // prediction time too, or its `lw:`/`lu:` weights go unused.
            features.extend(dataflow_edge_features(
                self.language,
                &ast,
                &self.config.extraction,
                self.config.abstraction,
            ));
        }
        // Lookup-only graph build: prediction never grows the
        // vocabularies, so the hot path borrows them directly — no
        // per-call clone, and `&self` stays shareable across threads.
        let graph =
            build_name_graph_lookup(self.language, &ast, self.target, &features, &self.vocabs);
        let labels = self.model.predict(&graph.instance);
        let mut out = Vec::new();
        for &node in &graph.unknown_nodes {
            let candidates: Vec<(String, f32)> = self
                .model
                .top_k(&graph.instance, node, self.config.top_k)
                .into_iter()
                .map(|(l, s)| (self.vocabs.label_name(l).to_owned(), s))
                .collect();
            out.push(Prediction {
                current_name: graph.node_names[node].clone(),
                predicted_name: self.vocabs.label_name(labels[node]).to_owned(),
                candidates,
            });
        }
        Ok(out)
    }

    /// Predicts names for many programs at once, fanning the per-program
    /// work (parse, extraction, graph build, inference) over `jobs`
    /// worker threads; `1` is fully serial, `0` uses all available
    /// cores.
    ///
    /// Accepts any slice of string-likes (`&[&str]`, `&[String]`, …) so
    /// callers that own their sources — like the serving layer's
    /// admission queue, which coalesces concurrent requests into
    /// micro-batches of owned bodies — need no intermediate re-borrow.
    ///
    /// Results come back in `sources` order and each entry is exactly
    /// what [`Pigeon::predict`] returns for that source — prediction is
    /// read-only, so the output is identical for any `jobs` value.
    pub fn predict_batch<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
        jobs: usize,
    ) -> Vec<Result<Vec<Prediction>, PigeonError>> {
        parallel_map_indexed(sources, jobs, |_, source| self.predict(source.as_ref()))
    }
}

/// The outcome of a checkpointed training run
/// ([`Pigeon::train_namer_resumable`]): either a finished predictor or
/// the SGD state to persist (`pigeon_crf::checkpoint::encode_checkpoint`)
/// and resume from later.
#[derive(Debug)]
pub enum TrainRun {
    /// Training ran to completion.
    Completed(Box<Pigeon>),
    /// The interrupt hook fired; resume by passing this state back
    /// through [`TrainControl::resume`].
    Interrupted(Box<TrainState>),
}

/// Registers every training-path metric family (checkpoint save/load
/// latency and totals, shard-merge latency, resume counts) on the
/// current telemetry sink. Training entry points call this themselves;
/// the serving layer also calls it at startup so the `/v1/metrics`
/// family set is byte-stable whether or not a training phase ran in
/// this process.
pub fn register_training_metrics() {
    pigeon_crf::checkpoint::register_metrics();
    pigeon_eval::partial::register_metrics();
    pigeon_analysis::dataflow::register_metrics();
    telemetry::describe(
        pigeon_core::DATAFLOW_CONTEXTS_TOTAL,
        "Edge-typed data-flow path-contexts extracted, by edge kind",
    );
    for kind in ["last_use", "last_write"] {
        telemetry::counter_with(pigeon_core::DATAFLOW_CONTEXTS_TOTAL, &[("kind", kind)]);
    }
    telemetry::describe(
        "pigeon_crf_resumes_total",
        "Training runs resumed from a checkpoint",
    );
    telemetry::counter("pigeon_crf_resumes_total");
}

/// Extracts edge-typed data-flow path-contexts from one tree and
/// renders them as CRF edge features: the analysis crate's last-write /
/// last-use edges, connected by AST paths (`pigeon_core::flow_contexts`)
/// and prefixed with the edge type (`lw:` / `lu:`) so the learner can
/// weight semantic relations separately from syntactic ones.
///
/// This is the composition the `dataflow_contexts` knob switches on in
/// training and prediction. It is public (and a plain `fn`) so the CLI
/// can pass it to [`pigeon_eval::NameExperiment::with_dataflow`] — the
/// eval crate cannot depend on the analysis crate, so the composed
/// extractor has to arrive from this layer.
pub fn dataflow_edge_features(
    language: Language,
    ast: &ast::Ast,
    extraction: &ExtractionConfig,
    abstraction: Abstraction,
) -> Vec<pigeon_eval::EdgeFeature> {
    let edges = pigeon_analysis::flow_edges(language, ast);
    pigeon_core::flow_contexts(ast, &edges, extraction)
        .into_iter()
        .map(|(kind, c)| pigeon_eval::EdgeFeature {
            a: c.start_node,
            b: c.end_node,
            feature: format!("{}:{}", kind.tag(), abstraction.apply(&c.path)),
        })
        .collect()
}

/// The [`PartialMeta`] a shard worker stamps on its partial for this
/// configuration — the single source of truth for what
/// [`Pigeon::build_training_partial`] emits. The distributed-training
/// coordinator builds the same meta from a job's knobs to fingerprint
/// cache keys and to validate uploaded partials knob-by-knob, so server
/// and worker can never drift on what "the same configuration" means.
pub fn training_partial_meta(
    language: Language,
    target: ElementClass,
    config: &PigeonConfig,
    shard_index: u32,
    shard_count: u32,
    total_docs: u32,
) -> PartialMeta {
    PartialMeta {
        language: language.name().to_owned(),
        target: target_name(target).to_owned(),
        abstraction: config.abstraction.name().to_owned(),
        max_length: config.extraction.max_length as u32,
        max_width: config.extraction.max_width as u32,
        semi_paths: config.extraction.semi_paths,
        dataflow_contexts: config.dataflow_contexts,
        top_k: config.top_k as u32,
        keep_prob: config.keep_prob,
        crf: CrfConfig {
            jobs: 0,
            ..config.crf
        },
        shard_index,
        shard_count,
        total_docs,
    }
}

/// The stable prediction-target string carried by model files and
/// partials.
fn target_name(target: ElementClass) -> &'static str {
    match target {
        ElementClass::Variable => "variables",
        ElementClass::Method => "methods",
        ElementClass::Other => "other",
    }
}

/// Inverse of [`target_name`].
fn target_from_name(name: &str) -> Option<ElementClass> {
    match name {
        "variables" => Some(ElementClass::Variable),
        "methods" => Some(ElementClass::Method),
        "other" => Some(ElementClass::Other),
        _ => None,
    }
}

/// The full single-process corpus pipeline: parallel parse + extract,
/// then source-order downsample + graph build into shared vocabularies.
/// Document `i` downsamples with a seed derived from its **global**
/// index `index_base + i`, so any contiguous slice of the corpus
/// samples exactly as the full run does — the property shard workers
/// rely on.
fn build_training_inputs(
    language: Language,
    target: ElementClass,
    sources: &[&str],
    index_base: usize,
    config: &PigeonConfig,
) -> Result<(Vocabs, Vec<pigeon_crf::Instance>), PigeonError> {
    let extracted = parse_and_extract(language, sources, index_base, config)?;
    let mut vocabs = Vocabs::new();
    let mut instances = Vec::with_capacity(sources.len());
    {
        let _phase = telemetry::span("graph_build");
        for (i, (ast, features)) in extracted.into_iter().enumerate() {
            let mut rng =
                SmallRng::seed_from_u64(derive_seed(DOWNSAMPLE_SEED, (index_base + i) as u64));
            let features = downsample(features, config.keep_prob, &mut rng);
            let graph = build_name_graph(language, &ast, target, &features, &mut vocabs, true);
            instances.push(graph.instance);
        }
    }
    Ok((vocabs, instances))
}

/// Parse + extract fan out over the worker pool; everything that
/// interns into vocabularies (downsampling included, because it
/// consumes the sampling rng) runs afterwards in source order, so the
/// result is identical for any `jobs`. Error messages carry the global
/// document index.
fn parse_and_extract(
    language: Language,
    sources: &[&str],
    index_base: usize,
    config: &PigeonConfig,
) -> Result<Vec<(ast::Ast, Vec<pigeon_eval::EdgeFeature>)>, PigeonError> {
    let rep = Representation::AstPaths(config.abstraction);
    let extracted = {
        let _phase = telemetry::span("parse_extract");
        parallel_map_indexed(sources, config.jobs, |_, source| {
            language.parse(source).map(|ast| {
                let mut features = extract_edge_features(language, &ast, rep, &config.extraction);
                if config.dataflow_contexts {
                    features.extend(dataflow_edge_features(
                        language,
                        &ast,
                        &config.extraction,
                        config.abstraction,
                    ));
                }
                (ast, features)
            })
        })
    };
    if let Some((i, Err(e))) = extracted.iter().enumerate().find(|(_, r)| r.is_err()) {
        return Err(PigeonError::parse(format!(
            "training source {}: {e}",
            index_base + i
        )));
    }
    Ok(extracted
        .into_iter()
        .map(|r| r.expect("errors returned above"))
        .collect())
}

/// Runs the per-document half of the pipeline with **doc-local**
/// vocabularies: each document is parsed, extracted, downsampled with
/// its global-index-derived seed, and graph-built into a fresh
/// [`Vocabs`]. Returns `(labels, features, instance)` per document —
/// local vocabulary strings in first-intern order plus the instance in
/// doc-local ids. In training mode the graph builder's intern sequence
/// depends only on the document, so replaying these local tables in
/// global document order reproduces the shared vocabularies exactly.
#[allow(clippy::type_complexity)]
fn build_doc_partials(
    language: Language,
    target: ElementClass,
    sources: &[&str],
    index_base: usize,
    config: &PigeonConfig,
) -> Result<Vec<(Vec<String>, Vec<String>, pigeon_crf::Instance)>, PigeonError> {
    let extracted = parse_and_extract(language, sources, index_base, config)?;
    let _phase = telemetry::span("graph_build");
    Ok(extracted
        .into_iter()
        .enumerate()
        .map(|(i, (ast, features))| {
            let mut rng =
                SmallRng::seed_from_u64(derive_seed(DOWNSAMPLE_SEED, (index_base + i) as u64));
            let features = downsample(features, config.keep_prob, &mut rng);
            let mut vocabs = Vocabs::new();
            let graph = build_name_graph(language, &ast, target, &features, &mut vocabs, true);
            let labels: Vec<String> = vocabs.labels.iter().map(|(_, s)| s.clone()).collect();
            let feats: Vec<String> = vocabs.features.iter().map(|(_, s)| s.clone()).collect();
            (labels, feats, graph.instance)
        })
        .collect())
}

/// Maps an instance's doc-local label/feature ids through intern maps
/// into a shared id space.
fn remap_instance(
    instance: &pigeon_crf::Instance,
    label_map: &[u32],
    feature_map: &[u32],
) -> pigeon_crf::Instance {
    pigeon_crf::Instance {
        nodes: instance
            .nodes
            .iter()
            .map(|n| pigeon_crf::Node {
                label: label_map[n.label as usize],
                known: n.known,
            })
            .collect(),
        pairwise: instance
            .pairwise
            .iter()
            .map(|pf| pigeon_crf::PairFactor {
                a: pf.a,
                b: pf.b,
                path: feature_map[pf.path as usize],
            })
            .collect(),
        unary: instance
            .unary
            .iter()
            .map(|uf| pigeon_crf::UnaryFactor {
                node: uf.node,
                path: feature_map[uf.path as usize],
            })
            .collect(),
    }
}
