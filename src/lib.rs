//! PIGEON: a general path-based representation for predicting program
//! properties.
//!
//! This workspace reproduces *A General Path-Based Representation for
//! Predicting Program Properties* (Alon, Zilberstein, Levy & Yahav, PLDI
//! 2018) as a complete Rust system: four language frontends, the AST-path
//! extraction at the heart of the paper, both learners it evaluates (a
//! Nice2Predict-style CRF and SGNS word embeddings), the paper's
//! baselines, and a benchmark harness regenerating every table and
//! figure. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! The crate re-exports each subsystem under a short module name and
//! offers [`Pigeon`], a high-level facade covering the common use case:
//! train a variable-name (or method-name) predictor on a corpus and query
//! it on new programs.
//!
//! # Quickstart
//!
//! ```
//! use pigeon::{corpus, Pigeon, PigeonConfig};
//! use pigeon::corpus::{CorpusConfig, Language};
//!
//! // Train on a small synthetic JavaScript corpus…
//! let training = corpus::generate(
//!     Language::JavaScript,
//!     &CorpusConfig::default().with_files(120),
//! );
//! let sources: Vec<&str> =
//!     training.docs.iter().map(|d| d.source.as_str()).collect();
//! let namer = Pigeon::train_variable_namer(
//!     Language::JavaScript,
//!     &sources,
//!     &PigeonConfig::default(),
//! ).unwrap();
//!
//! // …then ask it to name the paper's Fig. 1 variable `d`.
//! let program = "function f() { var d = false; while (!d) { \
//!                if (check()) { d = true; } } }";
//! let predictions = namer.predict(program).unwrap();
//! assert_eq!(predictions.len(), 1);
//! assert_eq!(predictions[0].current_name, "d");
//! assert!(!predictions[0].candidates.is_empty());
//! ```

pub use pigeon_analysis as analysis;
pub use pigeon_ast as ast;
pub use pigeon_core as core;
pub use pigeon_corpus as corpus;
pub use pigeon_crf as crf;
pub use pigeon_csharp as csharp;
pub use pigeon_eval as eval;
pub use pigeon_java as java;
pub use pigeon_js as js;
pub use pigeon_python as python;
pub use pigeon_telemetry as telemetry;
pub use pigeon_word2vec as word2vec;

pub mod serve;

use pigeon_core::{downsample, Abstraction, ExtractionConfig};
use pigeon_corpus::Language;
use pigeon_crf::{CrfConfig, CrfModel};
use pigeon_eval::{
    build_name_graph, build_name_graph_lookup, extract_edge_features, parallel_map_indexed,
    ElementClass, Representation, Vocabs,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration of a [`Pigeon`] predictor.
#[derive(Debug, Clone)]
pub struct PigeonConfig {
    /// Path length/width limits (§4.2 of the paper).
    pub extraction: ExtractionConfig,
    /// Path abstraction level (§5.6).
    pub abstraction: Abstraction,
    /// CRF training parameters.
    pub crf: CrfConfig,
    /// Candidates returned per prediction.
    pub top_k: usize,
    /// Probability of keeping each extracted path-context during
    /// training (§5.5 of the paper: downsampling trades a little accuracy
    /// for much smaller models). `1.0` keeps everything; the sampling
    /// seed is fixed, so a given `keep_prob` is reproducible.
    pub keep_prob: f64,
    /// Worker threads for per-source parse + extraction and the CRF's
    /// statistics pass during training; `1` is fully serial, `0` uses
    /// all available cores. Per-source results merge in source order and
    /// the statistics merge is commutative, so the trained model is
    /// byte-identical for any value.
    pub jobs: usize,
}

impl Default for PigeonConfig {
    fn default() -> Self {
        PigeonConfig {
            extraction: ExtractionConfig::with_limits(4, 3),
            abstraction: Abstraction::Full,
            crf: CrfConfig::default(),
            top_k: 8,
            keep_prob: 1.0,
            jobs: 1,
        }
    }
}

impl PigeonConfig {
    /// A validating builder starting from the defaults. Unlike struct
    /// literals, [`PigeonConfigBuilder::build`] rejects configurations
    /// that would silently train a useless model (`max_length == 0`,
    /// `keep_prob` outside `(0, 1]`, …).
    pub fn builder() -> PigeonConfigBuilder {
        PigeonConfigBuilder {
            config: PigeonConfig::default(),
        }
    }
}

/// Builder for [`PigeonConfig`]; see [`PigeonConfig::builder`].
#[derive(Debug, Clone)]
pub struct PigeonConfigBuilder {
    config: PigeonConfig,
}

impl PigeonConfigBuilder {
    /// Path length/width limits (§4.2 of the paper).
    pub fn extraction(mut self, extraction: ExtractionConfig) -> Self {
        self.config.extraction = extraction;
        self
    }

    /// Shorthand for the two extraction limits.
    pub fn limits(mut self, max_length: usize, max_width: usize) -> Self {
        let semi = self.config.extraction.semi_paths;
        self.config.extraction =
            ExtractionConfig::with_limits(max_length, max_width).semi_paths(semi);
        self
    }

    /// Also emit semi-paths (terminal → ancestor).
    pub fn semi_paths(mut self, on: bool) -> Self {
        self.config.extraction.semi_paths = on;
        self
    }

    /// Path abstraction level (§5.6).
    pub fn abstraction(mut self, abstraction: Abstraction) -> Self {
        self.config.abstraction = abstraction;
        self
    }

    /// CRF training parameters.
    pub fn crf(mut self, crf: CrfConfig) -> Self {
        self.config.crf = crf;
        self
    }

    /// Candidates returned per prediction.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.config.top_k = top_k;
        self
    }

    /// Training-time path-context keep probability (§5.5).
    pub fn keep_prob(mut self, keep_prob: f64) -> Self {
        self.config.keep_prob = keep_prob;
        self
    }

    /// Worker threads (`0` = all cores).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`PigeonError`] with [`ErrorKind::Config`] when the
    /// configuration is unusable:
    /// * `max_length == 0` — no path fits, extraction is empty;
    /// * `keep_prob` outside `(0, 1]` or not finite;
    /// * `top_k == 0` — predictions could never carry a candidate;
    /// * `crf.epochs == 0` — the model would never train.
    pub fn build(self) -> Result<PigeonConfig, PigeonError> {
        let c = &self.config;
        if c.extraction.max_length == 0 {
            return Err(PigeonError::config(
                "extraction.max_length must be at least 1 (0 extracts nothing)",
            ));
        }
        if !(c.keep_prob > 0.0 && c.keep_prob <= 1.0) {
            return Err(PigeonError::config(format!(
                "keep_prob must be in (0, 1], got {}",
                c.keep_prob
            )));
        }
        if c.top_k == 0 {
            return Err(PigeonError::config("top_k must be at least 1"));
        }
        if c.crf.epochs == 0 {
            return Err(PigeonError::config(
                "crf.epochs must be at least 1 (0 never trains)",
            ));
        }
        Ok(self.config)
    }
}

/// Stable classification of a [`PigeonError`] — the machine-readable
/// part of the v1 API error contract. The [`PigeonError::code`] string
/// of each kind appears verbatim in HTTP error bodies and per-source
/// batch errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A source program failed to parse.
    Parse,
    /// A configuration was rejected (builder validation, bad CLI flag).
    Config,
    /// A serialised model failed to load or validate.
    ModelFormat,
    /// An underlying I/O operation failed.
    Io,
    /// Anything else — a bug or an unclassified failure.
    Internal,
}

impl ErrorKind {
    /// The stable machine-readable code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Config => "config",
            ErrorKind::ModelFormat => "model-format",
            ErrorKind::Io => "io",
            ErrorKind::Internal => "internal",
        }
    }
}

/// An error from the [`Pigeon`] facade, classified by [`ErrorKind`].
#[derive(Debug, Clone)]
pub struct PigeonError {
    kind: ErrorKind,
    message: String,
}

impl PigeonError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        PigeonError {
            kind,
            message: message.into(),
        }
    }

    /// A parse failure.
    pub fn parse(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Parse, message)
    }

    /// A rejected configuration.
    pub fn config(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Config, message)
    }

    /// A malformed or invalid serialised model.
    pub fn model_format(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::ModelFormat, message)
    }

    /// An I/O failure.
    pub fn io(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Io, message)
    }

    /// An unclassified failure.
    pub fn internal(message: impl Into<String>) -> Self {
        PigeonError::new(ErrorKind::Internal, message)
    }

    /// The error's stable classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The stable machine-readable code (`"parse"`, `"config"`,
    /// `"model-format"`, `"io"`, `"internal"`) carried by API responses.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for PigeonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PigeonError {}

impl From<std::io::Error> for PigeonError {
    fn from(e: std::io::Error) -> Self {
        PigeonError::io(e.to_string())
    }
}

/// One predicted name for a program element.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The element's name as written in the query program (possibly
    /// stripped/minified).
    pub current_name: String,
    /// The model's best suggestion.
    pub predicted_name: String,
    /// Ranked `(name, score)` candidates, best first — the paper's top-k
    /// suggestion API (§5.1).
    pub candidates: Vec<(String, f32)>,
}

/// A trained name predictor: the paper's PIGEON tool for one language and
/// one task.
#[derive(Debug)]
pub struct Pigeon {
    language: Language,
    target: ElementClass,
    config: PigeonConfig,
    vocabs: Vocabs,
    model: CrfModel,
}

impl Pigeon {
    /// Trains a local-variable/parameter name predictor on `sources`.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] when any training source fails to parse.
    pub fn train_variable_namer(
        language: Language,
        sources: &[&str],
        config: &PigeonConfig,
    ) -> Result<Pigeon, PigeonError> {
        Pigeon::train(language, ElementClass::Variable, sources, config)
    }

    /// Trains a method-name predictor on `sources`.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] when any training source fails to parse.
    pub fn train_method_namer(
        language: Language,
        sources: &[&str],
        config: &PigeonConfig,
    ) -> Result<Pigeon, PigeonError> {
        Pigeon::train(language, ElementClass::Method, sources, config)
    }

    fn train(
        language: Language,
        target: ElementClass,
        sources: &[&str],
        config: &PigeonConfig,
    ) -> Result<Pigeon, PigeonError> {
        let _span = telemetry::span("train");
        let rep = Representation::AstPaths(config.abstraction);
        // Parse + extract fan out over the worker pool; everything that
        // interns into the shared vocabularies (downsampling included,
        // because it consumes the sampling rng) runs afterwards in
        // source order, so the model is identical for any `jobs`.
        let extracted = {
            let _phase = telemetry::span("parse_extract");
            parallel_map_indexed(sources, config.jobs, |_, source| {
                language.parse(source).map(|ast| {
                    let features = extract_edge_features(language, &ast, rep, &config.extraction);
                    (ast, features)
                })
            })
        };
        if let Some((i, Err(e))) = extracted.iter().enumerate().find(|(_, r)| r.is_err()) {
            return Err(PigeonError::parse(format!("training source {i}: {e}")));
        }
        let mut vocabs = Vocabs::new();
        let mut rng = SmallRng::seed_from_u64(0x9160_704E);
        let mut instances = Vec::with_capacity(sources.len());
        {
            let _phase = telemetry::span("graph_build");
            for result in extracted {
                let (ast, features) = result.expect("errors returned above");
                let features = downsample(features, config.keep_prob, &mut rng);
                let graph = build_name_graph(language, &ast, target, &features, &mut vocabs, true);
                instances.push(graph.instance);
            }
        }
        // The CRF's statistics pass shares the same worker budget; its
        // sequential-update training is byte-identical for any value.
        let crf_cfg = CrfConfig {
            jobs: config.jobs,
            ..config.crf
        };
        let model = pigeon_crf::train(&instances, vocabs.labels.len() as u32, &crf_cfg);
        Ok(Pigeon {
            language,
            target,
            config: config.clone(),
            vocabs,
            model,
        })
    }

    /// The language this predictor was trained for.
    pub fn language(&self) -> Language {
        self.language
    }

    /// The trained CRF model, read-only — the `pigeon audit` model lint
    /// inspects weight tables and candidate sets through this.
    pub fn crf_model(&self) -> &CrfModel {
        &self.model
    }

    /// The label/feature vocabularies the model was trained with.
    pub fn vocabs(&self) -> &Vocabs {
        &self.vocabs
    }

    /// Serialises the trained predictor (model, vocabularies and
    /// configuration) to JSON, for `pigeon predict --model`.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let labels: Vec<String> = self.vocabs.labels.iter().map(|(_, s)| s.clone()).collect();
        let features: Vec<String> = self
            .vocabs
            .features
            .iter()
            .map(|(_, s)| s.clone())
            .collect();
        let file = serde_json::json!({
            "language": self.language.name(),
            "target": match self.target {
                ElementClass::Variable => "variables",
                ElementClass::Method => "methods",
                ElementClass::Other => "other",
            },
            "max_length": self.config.extraction.max_length,
            "max_width": self.config.extraction.max_width,
            "semi_paths": self.config.extraction.semi_paths,
            "abstraction": self.config.abstraction.name(),
            "top_k": self.config.top_k,
            "labels": labels,
            "features": features,
            "model": self.model.to_json()?,
        });
        serde_json::to_string(&file)
    }

    /// Restores a predictor serialised by [`Pigeon::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] on malformed input.
    pub fn from_json(json: &str) -> Result<Pigeon, PigeonError> {
        let err = |m: &str| PigeonError::model_format(format!("model file: {m}"));
        let v: serde_json::Value = serde_json::from_str(json).map_err(|e| err(&e.to_string()))?;
        let str_field = |k: &str| -> Result<&str, PigeonError> {
            v.get(k)
                .and_then(|x| x.as_str())
                .ok_or_else(|| err(&format!("missing field `{k}`")))
        };
        let num_field = |k: &str| -> Result<u64, PigeonError> {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| err(&format!("missing field `{k}`")))
        };
        let language =
            Language::from_name(str_field("language")?).ok_or_else(|| err("unknown language"))?;
        let target = match str_field("target")? {
            "variables" => ElementClass::Variable,
            "methods" => ElementClass::Method,
            _ => ElementClass::Other,
        };
        let abstraction = Abstraction::from_name(str_field("abstraction")?)
            .ok_or_else(|| err("unknown abstraction"))?;
        let mut vocabs = Vocabs::new();
        for (key, vocab) in [
            ("labels", &mut vocabs.labels),
            ("features", &mut vocabs.features),
        ] {
            let items = v
                .get(key)
                .and_then(|x| x.as_array())
                .ok_or_else(|| err(&format!("missing field `{key}`")))?;
            for item in items {
                let s = item.as_str().ok_or_else(|| err("non-string vocab item"))?;
                vocab.intern(s.to_owned());
            }
        }
        let model = CrfModel::from_json(str_field("model")?).map_err(|e| err(&e.to_string()))?;
        // A truncated or hand-edited file can carry weight-table ids
        // beyond the vocabularies it ships, non-finite weights, or
        // absurd inference caps; catch that here so `predict` never
        // indexes out of bounds or scores against a poisoned table.
        model
            .validate(vocabs.features.len(), vocabs.labels.len())
            .map_err(|issue| err(&issue.to_string()))?;
        let mut extraction = ExtractionConfig::with_limits(
            num_field("max_length")? as usize,
            num_field("max_width")? as usize,
        );
        extraction.semi_paths = v
            .get("semi_paths")
            .and_then(|x| x.as_bool())
            .unwrap_or(false);
        Ok(Pigeon {
            language,
            target,
            config: PigeonConfig {
                extraction,
                abstraction,
                crf: CrfConfig::default(),
                top_k: num_field("top_k")? as usize,
                // Training-only knobs; a deserialized model is for
                // prediction, so the defaults are fine.
                ..PigeonConfig::default()
            },
            vocabs,
            model,
        })
    }

    /// Serialises the trained predictor into the compiled binary
    /// artifact format (see `pigeon_crf::artifact`): the CSR-packed
    /// engine, vocabularies and configuration in one flat,
    /// checksummed file that [`Pigeon::from_artifact`] loads with bulk
    /// array reads instead of JSON parsing and recompilation.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] with [`ErrorKind::ModelFormat`] when the
    /// model carries non-finite weights, or a weight exceeds the `f16`
    /// range under [`crf::artifact::Quant::F16`].
    pub fn to_artifact(&self, quant: crf::artifact::Quant) -> Result<Vec<u8>, PigeonError> {
        let _span = telemetry::span("compile_artifact");
        let labels: Vec<String> = self.vocabs.labels.iter().map(|(_, s)| s.clone()).collect();
        let features: Vec<String> = self
            .vocabs
            .features
            .iter()
            .map(|(_, s)| s.clone())
            .collect();
        let meta = crf::artifact::ArtifactMeta {
            language: self.language.name().to_owned(),
            target: match self.target {
                ElementClass::Variable => "variables",
                ElementClass::Method => "methods",
                ElementClass::Other => "other",
            }
            .to_owned(),
            abstraction: self.config.abstraction.name().to_owned(),
            max_length: self.config.extraction.max_length as u32,
            max_width: self.config.extraction.max_width as u32,
            semi_paths: self.config.extraction.semi_paths,
            top_k: self.config.top_k as u32,
        };
        crf::artifact::write_artifact(&meta, &labels, &features, &self.model, quant)
            .map_err(|m| PigeonError::model_format(format!("compiled artifact: {m}")))
    }

    /// Restores a predictor from a compiled binary artifact written by
    /// [`Pigeon::to_artifact`] (or `pigeon compile`).
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] with [`ErrorKind::ModelFormat`] on any
    /// truncated, bit-flipped or otherwise invalid artifact — the
    /// decoder checks checksums, section bounds, CSR structure, id
    /// ranges and weight finiteness, and never panics on bad input.
    pub fn from_artifact(bytes: &[u8]) -> Result<Pigeon, PigeonError> {
        let _span = telemetry::span("load_artifact");
        let err = |m: &str| PigeonError::model_format(format!("compiled artifact: {m}"));
        let art = crf::artifact::read_artifact(bytes).map_err(|m| err(&m))?;
        let language =
            Language::from_name(&art.meta.language).ok_or_else(|| err("unknown language"))?;
        let target = match art.meta.target.as_str() {
            "variables" => ElementClass::Variable,
            "methods" => ElementClass::Method,
            "other" => ElementClass::Other,
            other => return Err(err(&format!("unknown prediction target `{other}`"))),
        };
        let abstraction = Abstraction::from_name(&art.meta.abstraction)
            .ok_or_else(|| err("unknown abstraction"))?;
        if art.meta.max_length == 0 {
            return Err(err("max_length must be at least 1"));
        }
        if art.meta.top_k == 0 {
            return Err(err("top_k must be at least 1"));
        }
        let mut vocabs = Vocabs::new();
        for (what, items, vocab) in [
            ("label", &art.labels, &mut vocabs.labels),
            ("feature", &art.features, &mut vocabs.features),
        ] {
            for item in items {
                vocab.intern(item.clone());
            }
            // A repeated string would collapse two ids into one and
            // silently shift every id after it.
            if vocab.len() != items.len() {
                return Err(err(&format!("duplicate entry in the {what} vocabulary")));
            }
        }
        let mut extraction = ExtractionConfig::with_limits(
            art.meta.max_length as usize,
            art.meta.max_width as usize,
        );
        extraction.semi_paths = art.meta.semi_paths;
        Ok(Pigeon {
            language,
            target,
            config: PigeonConfig {
                extraction,
                abstraction,
                top_k: art.meta.top_k as usize,
                // Training-only knobs; an artifact-backed model is for
                // prediction, so the defaults are fine.
                ..PigeonConfig::default()
            },
            vocabs,
            model: art.model,
        })
    }

    /// Loads a serialised predictor from raw bytes, sniffing the format:
    /// the compiled binary artifact when the magic matches, UTF-8 JSON
    /// otherwise. This is what every model-accepting surface (CLI
    /// `--model` flags, `POST /v1/models`) runs.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] with [`ErrorKind::ModelFormat`] on
    /// malformed input in either format.
    pub fn load(bytes: &[u8]) -> Result<Pigeon, PigeonError> {
        if crf::artifact::is_artifact(bytes) {
            return Pigeon::from_artifact(bytes);
        }
        let json = std::str::from_utf8(bytes).map_err(|_| {
            PigeonError::model_format(
                "model file: neither a compiled artifact (bad magic) nor UTF-8 JSON",
            )
        })?;
        Pigeon::from_json(json)
    }

    /// Predicts names for every target element of `source`, in
    /// first-occurrence order.
    ///
    /// # Errors
    ///
    /// Returns [`PigeonError`] when `source` fails to parse.
    pub fn predict(&self, source: &str) -> Result<Vec<Prediction>, PigeonError> {
        let _span = telemetry::span("predict");
        let ast = self.language.parse(source).map_err(PigeonError::parse)?;
        let rep = Representation::AstPaths(self.config.abstraction);
        let features = extract_edge_features(self.language, &ast, rep, &self.config.extraction);
        // Lookup-only graph build: prediction never grows the
        // vocabularies, so the hot path borrows them directly — no
        // per-call clone, and `&self` stays shareable across threads.
        let graph =
            build_name_graph_lookup(self.language, &ast, self.target, &features, &self.vocabs);
        let labels = self.model.predict(&graph.instance);
        let mut out = Vec::new();
        for &node in &graph.unknown_nodes {
            let candidates: Vec<(String, f32)> = self
                .model
                .top_k(&graph.instance, node, self.config.top_k)
                .into_iter()
                .map(|(l, s)| (self.vocabs.label_name(l).to_owned(), s))
                .collect();
            out.push(Prediction {
                current_name: graph.node_names[node].clone(),
                predicted_name: self.vocabs.label_name(labels[node]).to_owned(),
                candidates,
            });
        }
        Ok(out)
    }

    /// Predicts names for many programs at once, fanning the per-program
    /// work (parse, extraction, graph build, inference) over `jobs`
    /// worker threads; `1` is fully serial, `0` uses all available
    /// cores.
    ///
    /// Accepts any slice of string-likes (`&[&str]`, `&[String]`, …) so
    /// callers that own their sources — like the serving layer's
    /// admission queue, which coalesces concurrent requests into
    /// micro-batches of owned bodies — need no intermediate re-borrow.
    ///
    /// Results come back in `sources` order and each entry is exactly
    /// what [`Pigeon::predict`] returns for that source — prediction is
    /// read-only, so the output is identical for any `jobs` value.
    pub fn predict_batch<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
        jobs: usize,
    ) -> Vec<Result<Vec<Prediction>, PigeonError>> {
        parallel_map_indexed(sources, jobs, |_, source| self.predict(source.as_ref()))
    }
}
