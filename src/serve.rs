//! `pigeon serve`: a dependency-free HTTP prediction server.
//!
//! The lineage system of the paper's CRF — Nice2Predict, deployed at
//! jsnice.org — was a prediction *service*; this module turns a trained
//! [`Pigeon`] model into one using nothing beyond `std`. The model is
//! loaded once; every request runs the read-only prediction hot path
//! (no vocabulary clone, no interning), so one model serves any number
//! of worker threads concurrently.
//!
//! # Protocol (v1)
//!
//! Minimal HTTP/1.1, one request per connection (`Connection: close`).
//! Every JSON response carries `"api": "pigeon/1"`; errors come back as
//! `{"api": "pigeon/1", "code": "<stable code>", "error": "<message>"}`
//! with a 4xx status, where `code` matches [`crate::ErrorKind::code`]
//! for failures originating in the facade.
//!
//! * `POST /v1/predict` — body `{"source": "<program text>"}`; responds
//!   `{"predictions": [{"current_name", "predicted_name",
//!   "candidates": [[name, score], …]}, …]}`.
//! * `POST /v1/predict_batch` — body `{"sources": ["<program>", …]}`;
//!   responds `{"results": [<per-source predict response>, …]}` in
//!   request order (per-source failures inline as `{"error", "code"}`).
//! * `GET /v1/stats` — request/error/prediction counters, latency and
//!   throughput since startup.
//! * `GET /v1/health` — liveness probe, `{"status": "ok"}`.
//! * `GET /v1/metrics` — Prometheus text exposition: the process-global
//!   telemetry registry (training phases, extraction counters, …)
//!   merged with this server's request counters and latency histogram.
//!
//! The pre-versioning paths (`/predict`, `/predict_batch`, `/stats`,
//! `/health`, `/metrics`) remain as aliases; they answer normally but
//! add a `Deprecation: true` header pointing clients at `/v1/…`.
//!
//! # Robustness
//!
//! Every connection gets a read timeout and a bounded request size, so a
//! slow or hostile client cannot wedge a worker. The accept loop exits
//! cleanly on SIGINT/SIGTERM or after `--idle-timeout` seconds without
//! a request, joining all workers before returning.

use crate::{Pigeon, Prediction};
use pigeon_telemetry as telemetry;
use pigeon_telemetry::{Counter, Histogram, Registry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// The API version tag stamped on every JSON response.
pub const API_VERSION: &str = "pigeon/1";

/// Configuration of one [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port (printed on startup).
    pub port: u16,
    /// Worker threads handling connections; `0` uses all cores.
    pub workers: usize,
    /// Largest accepted request body, in bytes.
    pub max_request_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Exit after this long without a request; `None` serves forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_owned(),
            port: 7470,
            workers: 0,
            max_request_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
            idle_timeout: None,
        }
    }
}

/// Fixed-memory uniform sample of observed latencies (Vitter's
/// Algorithm R): the first `CAPACITY` observations fill the buffer,
/// after which the `n`-th observation replaces a random slot with
/// probability `CAPACITY / n`. Percentiles read from the sample are
/// unbiased estimates of the true distribution at O(1) memory, however
/// long the server runs. Replacement indices come from a deterministic
/// LCG so the sampler needs no RNG dependency.
#[derive(Debug)]
struct Reservoir {
    samples: Vec<u64>,
    /// Total observations offered, including those not retained.
    seen: u64,
    /// LCG state (Knuth's MMIX multiplier).
    state: u64,
}

impl Reservoir {
    const CAPACITY: usize = 1024;

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // The high bits of an LCG are the well-mixed ones.
        self.state >> 11
    }

    fn offer(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < Self::CAPACITY {
            self.samples.push(value);
        } else {
            let slot = self.next_u64() % self.seen;
            if (slot as usize) < Self::CAPACITY {
                self.samples[slot as usize] = value;
            }
        }
    }

    /// Nearest-rank percentiles over the current sample, one sort for
    /// all requested ranks. Returns zeros while the sample is empty.
    fn percentiles<const N: usize>(&self, ranks: [f64; N]) -> [u64; N] {
        if self.samples.is_empty() {
            return [0; N];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        ranks.map(|q| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        })
    }
}

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir {
            samples: Vec::new(),
            seen: 0,
            state: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Request/latency series shared by every worker, exposed on `/stats`
/// and (merged with the process-global registry) on `/metrics`.
///
/// Counters and the latency histogram live in a **per-server** telemetry
/// [`Registry`] so two servers in one process never mix numbers; the
/// reservoir stays because the `/stats` percentiles are exact
/// order-statistics of a uniform sample, which histogram buckets cannot
/// provide (a bucket upper bound can exceed the observed max).
struct Stats {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    predictions: Arc<Counter>,
    /// Predict/batch request latency, microseconds (sum and count double
    /// as the `/stats` totals).
    latency: Arc<Histogram>,
    latency_max_micros: AtomicU64,
    /// Sampled individual latencies for the `/stats` percentiles.
    latency_sample: Mutex<Reservoir>,
}

impl Stats {
    fn new() -> Self {
        let registry = Arc::new(telemetry::global().shard());
        registry.describe(
            "pigeon_http_requests_total",
            "HTTP requests answered, by endpoint and status",
        );
        registry.describe("pigeon_requests_total", "Connections handled");
        registry.describe(
            "pigeon_request_errors_total",
            "Requests answered with an error status",
        );
        registry.describe("pigeon_predictions_total", "Program elements predicted");
        registry.describe(
            "pigeon_predict_latency_micros",
            "Predict endpoint latency in microseconds",
        );
        Stats {
            requests: registry.counter("pigeon_requests_total", &[]),
            errors: registry.counter("pigeon_request_errors_total", &[]),
            predictions: registry.counter("pigeon_predictions_total", &[]),
            latency: registry.histogram(
                "pigeon_predict_latency_micros",
                &[],
                telemetry::LATENCY_BOUNDS,
            ),
            registry,
            latency_max_micros: AtomicU64::new(0),
            latency_sample: Mutex::new(Reservoir::default()),
        }
    }

    /// Counts one answered request under its canonical endpoint + status.
    fn record_http(&self, endpoint: &'static str, status: u16) {
        self.registry
            .counter(
                "pigeon_http_requests_total",
                &[("endpoint", endpoint), ("status", &status.to_string())],
            )
            .inc();
    }

    fn record_latency(&self, elapsed: Duration) {
        let micros = elapsed.as_micros() as u64;
        self.latency.observe(micros);
        self.latency_max_micros.fetch_max(micros, Ordering::Relaxed);
        self.latency_sample
            .lock()
            .expect("latency sample lock")
            .offer(micros);
    }

    /// The `/metrics` document: the process-global registry (pipeline
    /// phases, extraction counters) merged with this server's request
    /// series, rendered in the byte-stable Prometheus text format.
    fn render_metrics(&self) -> String {
        let merged = Registry::default();
        merged.merge(telemetry::global());
        merged.merge(&self.registry);
        merged.render_prometheus()
    }

    fn to_json(&self, uptime: Duration) -> serde_json::Value {
        let predict_requests = self.latency.count();
        let latency_micros = self.latency.sum();
        let predictions = self.predictions.get();
        let uptime_secs = uptime.as_secs_f64();
        let mean_micros = if predict_requests == 0 {
            0.0
        } else {
            latency_micros as f64 / predict_requests as f64
        };
        let throughput = if uptime_secs > 0.0 {
            predictions as f64 / uptime_secs
        } else {
            0.0
        };
        let [p50, p95, p99] = self
            .latency_sample
            .lock()
            .expect("latency sample lock")
            .percentiles([0.50, 0.95, 0.99]);
        serde_json::json!({
            "uptime_secs": uptime_secs,
            "requests_total": self.requests.get(),
            "errors_total": self.errors.get(),
            "predict_requests_total": predict_requests,
            "predictions_total": predictions,
            "latency_micros_total": latency_micros,
            "latency_micros_mean": mean_micros,
            "latency_micros_p50": p50,
            "latency_micros_p95": p95,
            "latency_micros_p99": p99,
            "latency_micros_max": self.latency_max_micros.load(Ordering::Relaxed),
            "predictions_per_sec": throughput,
        })
    }
}

/// Set by the SIGINT/SIGTERM handler; the accept loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // Provided by libc, which std already links; declaring it here
        // keeps the server dependency-free.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// An HTTP error response: status, reason phrase, a stable
/// machine-readable code (matching [`crate::ErrorKind::code`] when the
/// failure came from the facade), and a human-readable message.
struct HttpError {
    status: u16,
    reason: &'static str,
    code: &'static str,
    message: String,
}

impl HttpError {
    fn new(status: u16, reason: &'static str, code: &'static str, message: String) -> Self {
        HttpError {
            status,
            reason,
            code,
            message,
        }
    }

    fn bad_request(message: String) -> Self {
        HttpError::new(400, "Bad Request", "bad-request", message)
    }
}

/// A successful response body: JSON for the API endpoints, Prometheus
/// text for `/metrics`.
enum Payload {
    Json(serde_json::Value),
    Metrics(String),
}

fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    deprecated: bool,
    body: &str,
) -> String {
    let deprecation = if deprecated {
        "Deprecation: true\r\n"
    } else {
        ""
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{deprecation}Connection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Stamps the v1 API version field onto a JSON object response.
fn with_api(value: serde_json::Value) -> serde_json::Value {
    match value {
        serde_json::Value::Object(mut map) => {
            map.insert(
                "api".to_owned(),
                serde_json::Value::String(API_VERSION.to_owned()),
            );
            serde_json::Value::Object(map)
        }
        other => other,
    }
}

fn error_body(code: &str, message: &str) -> String {
    serde_json::to_string(&with_api(serde_json::json!({
        "code": code,
        "error": message,
    })))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_owned())
}

/// Reads and parses one request off the socket, enforcing the body-size
/// bound. Socket timeouts surface as 408, oversized bodies as 413.
fn read_request(reader: &mut BufReader<&TcpStream>, max_body: usize) -> Result<Request, HttpError> {
    // Generous fixed bound on the header section; bodies get the
    // configurable limit.
    const MAX_HEADER_BYTES: usize = 16 * 1024;
    let map_io = |e: std::io::Error| -> HttpError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::new(
                408,
                "Request Timeout",
                "timeout",
                "connection read timed out".into(),
            ),
            _ => HttpError::new(400, "Bad Request", "io", format!("read failed: {e}")),
        }
    };
    let mut line = String::new();
    reader.read_line(&mut line).map_err(map_io)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(HttpError::bad_request("malformed request line".into()));
    };
    let (method, path) = (method.to_owned(), path.to_owned());

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(map_io)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(
                431,
                "Request Header Fields Too Large",
                "bad-request",
                "headers too large".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length".to_owned()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            "Payload Too Large",
            "too-large",
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(map_io)?;
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::bad_request("request body is not UTF-8".to_owned()))?;
    Ok(Request { method, path, body })
}

fn predictions_to_json(predictions: &[Prediction]) -> serde_json::Value {
    serde_json::Value::Array(
        predictions
            .iter()
            .map(|p| {
                serde_json::json!({
                    "current_name": p.current_name,
                    "predicted_name": p.predicted_name,
                    "candidates": serde_json::Value::Array(
                        p.candidates
                            .iter()
                            .map(|(name, score)| serde_json::json!([name, score]))
                            .collect(),
                    ),
                })
            })
            .collect(),
    )
}

fn parse_json_body(body: &str) -> Result<serde_json::Value, HttpError> {
    serde_json::from_str(body)
        .map_err(|e| HttpError::bad_request(format!("request is not valid JSON: {e}")))
}

/// Maps a request path to its canonical v1 endpoint, flagging the
/// pre-versioning aliases (they answer, but with a `Deprecation: true`
/// header). Unknown paths come back as `("other", false)` so the
/// request-counter label set stays bounded however clients probe.
fn canonical_endpoint(path: &str) -> (&'static str, bool) {
    match path {
        "/v1/predict" => ("/v1/predict", false),
        "/predict" => ("/v1/predict", true),
        "/v1/predict_batch" => ("/v1/predict_batch", false),
        "/predict_batch" => ("/v1/predict_batch", true),
        "/v1/stats" => ("/v1/stats", false),
        "/stats" => ("/v1/stats", true),
        "/v1/health" => ("/v1/health", false),
        "/health" => ("/v1/health", true),
        "/v1/metrics" => ("/v1/metrics", false),
        "/metrics" => ("/v1/metrics", true),
        _ => ("other", false),
    }
}

/// Routes one request (already canonicalised to its v1 endpoint).
fn route(
    model: &Pigeon,
    stats: &Stats,
    started: Instant,
    endpoint: &'static str,
    req: &Request,
) -> Result<Payload, HttpError> {
    match (req.method.as_str(), endpoint) {
        ("POST", "/v1/predict") => {
            let t = Instant::now();
            let value = parse_json_body(&req.body)?;
            let source = value
                .get("source")
                .and_then(|s| s.as_str())
                .ok_or_else(|| {
                    HttpError::bad_request(
                        "expected a JSON object with a string `source` field".to_owned(),
                    )
                })?;
            let predictions = model.predict(source).map_err(|e| {
                HttpError::new(422, "Unprocessable Entity", e.code(), e.to_string())
            })?;
            stats.predictions.add(predictions.len() as u64);
            stats.record_latency(t.elapsed());
            Ok(Payload::Json(
                serde_json::json!({ "predictions": predictions_to_json(&predictions) }),
            ))
        }
        ("POST", "/v1/predict_batch") => {
            let t = Instant::now();
            let value = parse_json_body(&req.body)?;
            let sources = value
                .get("sources")
                .and_then(|s| s.as_array())
                .ok_or_else(|| {
                    HttpError::bad_request(
                        "expected a JSON object with a `sources` array".to_owned(),
                    )
                })?;
            let mut results = Vec::with_capacity(sources.len());
            for source in sources {
                let Some(source) = source.as_str() else {
                    return Err(HttpError::bad_request(
                        "`sources` must hold strings".to_owned(),
                    ));
                };
                // Per-source failures are reported in place so one bad
                // program does not void the rest of the batch; they carry
                // the same stable `code` as top-level error bodies.
                results.push(match model.predict(source) {
                    Ok(predictions) => {
                        stats.predictions.add(predictions.len() as u64);
                        serde_json::json!({ "predictions": predictions_to_json(&predictions) })
                    }
                    Err(e) => serde_json::json!({
                        "code": e.code(),
                        "error": e.to_string(),
                    }),
                });
            }
            stats.record_latency(t.elapsed());
            Ok(Payload::Json(
                serde_json::json!({ "results": serde_json::Value::Array(results) }),
            ))
        }
        ("GET", "/v1/stats") => Ok(Payload::Json(stats.to_json(started.elapsed()))),
        ("GET", "/v1/health") => Ok(Payload::Json(serde_json::json!({ "status": "ok" }))),
        ("GET", "/v1/metrics") => Ok(Payload::Metrics(stats.render_metrics())),
        _ => Err(HttpError::new(
            404,
            "Not Found",
            "not-found",
            format!("no route for {} {}", req.method, req.path),
        )),
    }
}

fn handle_connection(
    stream: TcpStream,
    model: &Pigeon,
    stats: &Stats,
    started: Instant,
    cfg: &ServeConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    stats.requests.inc();
    let mut reader = BufReader::new(&stream);
    let (endpoint, deprecated, result) = match read_request(&mut reader, cfg.max_request_bytes) {
        Ok(req) => {
            let (endpoint, deprecated) = canonical_endpoint(&req.path);
            (
                endpoint,
                deprecated,
                route(model, stats, started, endpoint, &req),
            )
        }
        Err(e) => ("other", false, Err(e)),
    };
    let response = match result {
        Ok(Payload::Json(body)) => {
            stats.record_http(endpoint, 200);
            let body = serde_json::to_string(&with_api(body)).unwrap_or_else(|_| "{}".to_owned());
            render_response(200, "OK", "application/json", deprecated, &body)
        }
        Ok(Payload::Metrics(text)) => {
            stats.record_http(endpoint, 200);
            render_response(
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                deprecated,
                &text,
            )
        }
        Err(e) => {
            stats.errors.inc();
            stats.record_http(endpoint, e.status);
            render_response(
                e.status,
                e.reason,
                "application/json",
                deprecated,
                &error_body(e.code, &e.message),
            )
        }
    };
    let _ = (&stream).write_all(response.as_bytes());
    let _ = (&stream).flush();
}

/// Runs the server until SIGINT/SIGTERM or the idle timeout.
///
/// Prints one `listening on http://HOST:PORT` line (with the resolved
/// ephemeral port, when `port` was 0) before accepting traffic, and a
/// final request-count summary after a clean shutdown.
///
/// # Errors
///
/// Returns a message when the listen address cannot be bound.
pub fn serve(model: Pigeon, cfg: &ServeConfig) -> Result<(), String> {
    let workers = pigeon_eval::effective_jobs(cfg.workers);
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))
        .map_err(|e| format!("cannot bind {}:{}: {e}", cfg.host, cfg.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll listener: {e}"))?;
    SHUTDOWN.store(false, Ordering::SeqCst);
    install_shutdown_handler();

    let model = Arc::new(model);
    let stats = Arc::new(Stats::new());
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    println!(
        "pigeon serve: {} model, listening on http://{addr} ({workers} worker{})",
        model.language().name(),
        if workers == 1 { "" } else { "s" },
    );

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let model = Arc::clone(&model);
            let stats = Arc::clone(&stats);
            let cfg = cfg.clone();
            scope.spawn(move || loop {
                // Holding the lock only for the recv keeps workers
                // draining the queue independently.
                let stream = rx.lock().expect("receiver lock").recv();
                match stream {
                    Ok(stream) => handle_connection(stream, &model, &stats, started, &cfg),
                    Err(_) => break, // accept loop hung up: shutdown
                }
            });
        }

        let mut last_activity = Instant::now();
        loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                break;
            }
            if let Some(idle) = cfg.idle_timeout {
                if last_activity.elapsed() >= idle {
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    last_activity = Instant::now();
                    // The listener polls; connections block (with the
                    // read timeout) so workers do not spin.
                    let _ = stream.set_nonblocking(false);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("pigeon serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        // Dropping the sender ends every worker's recv loop; the scope
        // joins them before the final summary prints.
        drop(tx);
    });

    println!(
        "pigeon serve: shut down after {} requests ({} errors, {} predictions) in {:.1}s",
        stats.requests.get(),
        stats.errors.get(),
        stats.predictions.get(),
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_percentiles_are_exact_below_capacity() {
        let mut r = Reservoir::default();
        for v in 1..=100u64 {
            r.offer(v);
        }
        assert_eq!(r.percentiles([0.50, 0.95, 0.99]), [50, 95, 99]);
        assert_eq!(r.percentiles([1.0]), [100]);
    }

    #[test]
    fn reservoir_memory_stays_bounded() {
        let mut r = Reservoir::default();
        for v in 0..10 * Reservoir::CAPACITY as u64 {
            r.offer(v);
        }
        assert_eq!(r.samples.len(), Reservoir::CAPACITY);
        assert_eq!(r.seen, 10 * Reservoir::CAPACITY as u64);
    }

    #[test]
    fn reservoir_sample_tracks_the_distribution() {
        // Offer 0..20_000; a uniform sample's median should land near
        // 10_000. A sampler that only kept a prefix would sit at ~512.
        let mut r = Reservoir::default();
        for v in 0..20_000u64 {
            r.offer(v);
        }
        let [p50] = r.percentiles([0.50]);
        assert!(
            (5_000..15_000).contains(&p50),
            "median {p50} far from 10_000"
        );
    }

    #[test]
    fn empty_reservoir_reports_zeros() {
        let r = Reservoir::default();
        assert_eq!(r.percentiles([0.50, 0.99]), [0, 0]);
    }
}
