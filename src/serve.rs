//! `pigeon serve`: a dependency-free high-throughput HTTP prediction
//! server.
//!
//! The lineage system of the paper's CRF — Nice2Predict, deployed at
//! jsnice.org — was a prediction *service*; this module turns a trained
//! [`Pigeon`] model into one using nothing beyond `std`. Three layers
//! carry the traffic:
//!
//! 1. **Keep-alive connections.** HTTP/1.1 connections are persistent by
//!    default: each worker loops `read_request` on its socket until the
//!    client sends `Connection: close`, the idle read timeout passes
//!    between requests (closed silently — no 408 written into the void),
//!    or the per-connection request cap is reached. This removes the TCP
//!    connect/teardown tax that made one-request-per-connection serving
//!    ~2× slower than the in-process loop (see `EXPERIMENTS.md`).
//! 2. **Admission queue + micro-batching.** `POST /v1/predict` bodies do
//!    not run inference on the connection worker; they enter a bounded
//!    admission queue that a batcher thread drains into
//!    [`Pigeon::predict_batch`] micro-batches sized by current queue
//!    depth (bounded companion wait, default 2 ms, cut short at
//!    `batch_max`). Past `queue_cap` waiting jobs the server answers
//!    `429` with `Retry-After` and the stable code `overloaded` instead
//!    of accepting unbounded work.
//! 3. **Versioned model registry with atomic hot swap.** The model given
//!    at startup is version 1; `POST /v1/models` loads a new model —
//!    JSON or a compiled `.pgnc` artifact, sniffed by magic —
//!    into an `Arc` and swaps it in atomically — in-flight batches keep
//!    their own handle to the old version, so a swap never fails a
//!    request. `GET /v1/models` lists every version; `/v1/stats` carries
//!    per-version request/prediction slices.
//!
//! # Protocol (v1)
//!
//! Minimal HTTP/1.1 with keep-alive. Every JSON response carries
//! `"api": "pigeon/1"`; errors come back as `{"api": "pigeon/1",
//! "code": "<stable code>", "error": "<message>"}` with a 4xx/5xx
//! status, where `code` matches [`crate::ErrorKind::code`] for failures
//! originating in the facade.
//!
//! * `POST /v1/predict` — body `{"source": "<program text>"}`; responds
//!   `{"model_version": N, "predictions": [{"current_name",
//!   "predicted_name", "candidates": [[name, score], …]}, …]}`.
//! * `POST /v1/predict_batch` — body `{"sources": ["<program>", …]}`;
//!   responds `{"model_version": N, "results": [<per-source predict
//!   response>, …]}` in request order (per-source failures inline as
//!   `{"error", "code"}`).
//! * `POST /v1/models` — body is either a model JSON (the `pigeon
//!   train --out` format) or the raw bytes of a compiled `.pgnc`
//!   artifact (`pigeon compile`); the format is sniffed by magic.
//!   Loads it, makes it the active version, responds `{"version": N,
//!   "language", "format": "json"|"artifact", "active": true}`. A body
//!   that fails to load as either answers `400` with the stable code of
//!   the load error (`model-format`, `parse`, …).
//! * `GET /v1/models` — every loaded version with its origin and
//!   active flag.
//! * `GET /v1/stats` — request/error/prediction counters, latency,
//!   throughput, queue/batch counters, and per-model-version slices.
//! * `GET /v1/health` — liveness probe, `{"status": "ok"}`.
//! * `GET /v1/metrics` — Prometheus text exposition: the process-global
//!   telemetry registry merged with this server's request counters,
//!   queue-depth gauge, and batch-size/latency histograms.
//!
//! The pre-versioning paths (`/predict`, `/predict_batch`, `/stats`,
//! `/health`, `/metrics`) remain as aliases; they answer normally but
//! add a `Deprecation: true` header pointing clients at `/v1/…`.
//!
//! # Robustness
//!
//! Every connection gets a read timeout and a bounded request size, so a
//! slow or hostile client cannot wedge a worker. Request handling runs
//! under `catch_unwind`: a panicking handler answers `500` with a
//! contract-conforming error body and the worker lives on. Every lock in
//! the serving path recovers from poisoning (`PoisonError::into_inner`)
//! — one panic while holding the latency reservoir or the worker-pool
//! receiver must degrade that one request, never the server. The accept
//! loop exits cleanly on SIGINT/SIGTERM or after `--idle-timeout`
//! seconds without a request, joining all workers and the batcher before
//! returning.

use crate::{Pigeon, PigeonConfig, PigeonError, Prediction};
use pigeon_corpus::Language;
use pigeon_eval::coordinator::{
    cache_key, config_fingerprint, corpus_shard_fingerprint, Lease, ShardBoard,
};
use pigeon_eval::partial::{config_knobs, decode_partial, PartialMeta};
use pigeon_eval::{shard_range, ElementClass};
use pigeon_telemetry as telemetry;
use pigeon_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// The API version tag stamped on every JSON response.
pub const API_VERSION: &str = "pigeon/1";

/// The `Sunset` date advertised on deprecated unversioned paths (RFC
/// 8594): the earliest the pre-`/v1` aliases may be removed. A fixed
/// constant so clients and tests see one stable value.
pub const DEPRECATED_SUNSET: &str = "Thu, 01 Jan 2026 00:00:00 GMT";

/// Bucket bounds for the `pigeon_batch_size` histogram: micro-batches
/// are sized by queue depth, capped by `--batch-max`.
pub const BATCH_SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Configuration of one [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port (printed on startup).
    pub port: u16,
    /// Worker threads handling connections; `0` uses all cores. Also the
    /// fan-out for inference inside one micro-batch.
    pub workers: usize,
    /// Largest accepted request body, in bytes.
    pub max_request_bytes: usize,
    /// Per-connection socket read timeout. Mid-request, hitting it is a
    /// `408`; between keep-alive requests it closes the connection
    /// silently.
    pub read_timeout: Duration,
    /// Exit after this long without a request; `None` serves forever.
    pub idle_timeout: Option<Duration>,
    /// Honor HTTP/1.1 persistent connections. `false` restores the old
    /// one-request-per-connection behaviour (`Connection: close` on
    /// every response).
    pub keep_alive: bool,
    /// Requests served on one connection before the server closes it
    /// (bounds per-connection resource pinning).
    pub max_conn_requests: usize,
    /// Largest micro-batch the admission queue hands to
    /// [`Pigeon::predict_batch`].
    pub batch_max: usize,
    /// How long the batcher waits for companion requests after the first
    /// job of a batch arrives (cut short once `batch_max` are queued).
    pub batch_wait: Duration,
    /// Admission-queue capacity; a submit past this answers `429` with
    /// `Retry-After`.
    pub queue_cap: usize,
    /// Content-addressed partial cache directory. Setting it arms the
    /// distributed-training surface (`/v1/partials`, `/v1/train-jobs`,
    /// `/v1/leases`); `None` (plain `pigeon serve`) answers those routes
    /// with a coded 409.
    pub cache_dir: Option<String>,
    /// Base shard-lease duration: a worker that has not uploaded its
    /// shard within this window is presumed dead and the shard is
    /// reassigned (with capped exponential backoff per retry).
    pub lease_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_owned(),
            port: 7470,
            workers: 0,
            max_request_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
            idle_timeout: None,
            keep_alive: true,
            max_conn_requests: 1000,
            batch_max: 16,
            batch_wait: Duration::from_millis(2),
            queue_cap: 256,
            cache_dir: None,
            lease_timeout: Duration::from_secs(60),
        }
    }
}

/// Locks a mutex, recovering from poisoning: the data under every lock
/// in the serving path stays usable after a panic (a half-updated
/// reservoir sample or queue is still structurally valid), so a single
/// panicking request must not turn into a denial of service where every
/// later `.lock().expect(…)` panics too.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fixed-memory uniform sample of observed latencies (Vitter's
/// Algorithm R): the first `CAPACITY` observations fill the buffer,
/// after which the `n`-th observation replaces a random slot with
/// probability `CAPACITY / n`. Percentiles read from the sample are
/// unbiased estimates of the true distribution at O(1) memory, however
/// long the server runs. Replacement indices come from a deterministic
/// LCG so the sampler needs no RNG dependency.
#[derive(Debug)]
struct Reservoir {
    samples: Vec<u64>,
    /// Total observations offered, including those not retained.
    seen: u64,
    /// LCG state (Knuth's MMIX multiplier).
    state: u64,
}

impl Reservoir {
    const CAPACITY: usize = 1024;

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // The high bits of an LCG are the well-mixed ones.
        self.state >> 11
    }

    fn offer(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < Self::CAPACITY {
            self.samples.push(value);
        } else {
            let slot = self.next_u64() % self.seen;
            if (slot as usize) < Self::CAPACITY {
                self.samples[slot as usize] = value;
            }
        }
    }

    /// Nearest-rank percentiles over the current sample, one sort for
    /// all requested ranks. Returns zeros while the sample is empty.
    fn percentiles<const N: usize>(&self, ranks: [f64; N]) -> [u64; N] {
        if self.samples.is_empty() {
            return [0; N];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        ranks.map(|q| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        })
    }
}

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir {
            samples: Vec::new(),
            seen: 0,
            state: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Request/latency series shared by every worker, exposed on `/stats`
/// and (merged with the process-global registry) on `/metrics`.
///
/// Counters, gauges and histograms live in a **per-server** telemetry
/// [`Registry`] so two servers in one process never mix numbers; the
/// reservoir stays because the `/stats` percentiles are exact
/// order-statistics of a uniform sample, which histogram buckets cannot
/// provide (a bucket upper bound can exceed the observed max).
///
/// Every family is registered eagerly in [`Stats::new`] so `/v1/metrics`
/// exposes the full schema (queue depth, batch size, …) from the first
/// scrape, before any traffic — and so the exposition is byte-stable for
/// a given request sequence whatever `--jobs` is.
struct Stats {
    registry: Arc<Registry>,
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    predictions: Arc<Counter>,
    /// `429` answers: submits rejected by the full admission queue.
    rejected: Arc<Counter>,
    /// Models activated via `POST /v1/models`.
    model_swaps: Arc<Counter>,
    /// Validated partial uploads written newly into the cache.
    partials_received: Arc<Counter>,
    /// Uploads (or job-creation scans) satisfied by an existing cache
    /// entry — the "unchanged shard never re-done" counter.
    partials_cached: Arc<Counter>,
    /// Partial uploads rejected (corrupt container or knob mismatch).
    partials_rejected: Arc<Counter>,
    /// Shards taken back from an expired lease and handed to another
    /// worker.
    reassignments: Arc<Counter>,
    /// Requests answered on a deprecated unversioned path.
    deprecated_requests: Arc<Counter>,
    /// Jobs currently waiting in the admission queue.
    queue_depth: Arc<Gauge>,
    /// Micro-batch sizes handed to `predict_batch`.
    batch_size: Arc<Histogram>,
    /// Time jobs spent queued before their batch started, microseconds.
    queue_wait: Arc<Histogram>,
    /// Predict/batch request latency, microseconds (sum and count double
    /// as the `/stats` totals).
    latency: Arc<Histogram>,
    latency_max_micros: AtomicU64,
    /// Sampled individual latencies for the `/stats` percentiles.
    latency_sample: Mutex<Reservoir>,
}

impl Stats {
    fn new() -> Self {
        // Training-path families (checkpoint save/load, shard merge,
        // resume counts) register eagerly too: a serving process never
        // trains, but `/v1/metrics` must expose the same family set as
        // any other process so dashboards and the CI byte-stability
        // check see one stable schema.
        crate::register_training_metrics();
        let registry = Arc::new(telemetry::global().shard());
        registry.describe(
            "pigeon_http_requests_total",
            "HTTP requests answered, by endpoint and status",
        );
        registry.describe("pigeon_connections_total", "Connections accepted");
        registry.describe("pigeon_requests_total", "HTTP requests parsed");
        registry.describe(
            "pigeon_request_errors_total",
            "Requests answered with an error status",
        );
        registry.describe("pigeon_predictions_total", "Program elements predicted");
        registry.describe(
            "pigeon_queue_rejected_total",
            "Predict submissions rejected with 429 because the admission queue was full",
        );
        registry.describe(
            "pigeon_model_swaps_total",
            "Model versions activated via POST /v1/models",
        );
        registry.describe(
            "pigeon_queue_depth",
            "Predict jobs currently waiting in the admission queue",
        );
        registry.describe(
            "pigeon_batch_size",
            "Micro-batch sizes the admission queue handed to predict_batch",
        );
        registry.describe(
            "pigeon_queue_wait_micros",
            "Time predict jobs spent in the admission queue, microseconds",
        );
        registry.describe(
            "pigeon_predict_latency_micros",
            "Predict endpoint latency in microseconds",
        );
        registry.describe(
            "pigeon_partials_received_total",
            "Validated partial uploads newly written into the cache",
        );
        registry.describe(
            "pigeon_partials_cached_total",
            "Partial uploads or job shards satisfied by an existing cache entry",
        );
        registry.describe(
            "pigeon_partials_rejected_total",
            "Partial uploads rejected on decode or config mismatch",
        );
        registry.describe(
            "pigeon_shard_reassignments_total",
            "Shards reassigned after a lease deadline expired",
        );
        registry.describe(
            "pigeon_deprecated_requests_total",
            "Requests answered on a deprecated unversioned path",
        );
        registry.describe(
            "pigeon_job_phase_micros",
            "Train-job phase latency in microseconds, by phase",
        );
        // Eager label registration keeps the /v1/metrics schema stable
        // from the first scrape.
        for phase in ["collect", "merge"] {
            registry.histogram(
                "pigeon_job_phase_micros",
                &[("phase", phase)],
                telemetry::PHASE_BOUNDS,
            );
        }
        Stats {
            connections: registry.counter("pigeon_connections_total", &[]),
            requests: registry.counter("pigeon_requests_total", &[]),
            errors: registry.counter("pigeon_request_errors_total", &[]),
            predictions: registry.counter("pigeon_predictions_total", &[]),
            rejected: registry.counter("pigeon_queue_rejected_total", &[]),
            model_swaps: registry.counter("pigeon_model_swaps_total", &[]),
            partials_received: registry.counter("pigeon_partials_received_total", &[]),
            partials_cached: registry.counter("pigeon_partials_cached_total", &[]),
            partials_rejected: registry.counter("pigeon_partials_rejected_total", &[]),
            reassignments: registry.counter("pigeon_shard_reassignments_total", &[]),
            deprecated_requests: registry.counter("pigeon_deprecated_requests_total", &[]),
            queue_depth: registry.gauge("pigeon_queue_depth", &[]),
            batch_size: registry.histogram("pigeon_batch_size", &[], BATCH_SIZE_BOUNDS),
            queue_wait: registry.histogram(
                "pigeon_queue_wait_micros",
                &[],
                telemetry::LATENCY_BOUNDS,
            ),
            latency: registry.histogram(
                "pigeon_predict_latency_micros",
                &[],
                telemetry::LATENCY_BOUNDS,
            ),
            registry,
            latency_max_micros: AtomicU64::new(0),
            latency_sample: Mutex::new(Reservoir::default()),
        }
    }

    /// Counts one answered request under its canonical endpoint + status.
    fn record_http(&self, endpoint: &'static str, status: u16) {
        self.registry
            .counter(
                "pigeon_http_requests_total",
                &[("endpoint", endpoint), ("status", &status.to_string())],
            )
            .inc();
    }

    /// Observes one train-job phase duration (`collect` or `merge`).
    fn observe_job_phase(&self, phase: &'static str, elapsed: Duration) {
        self.registry
            .histogram(
                "pigeon_job_phase_micros",
                &[("phase", phase)],
                telemetry::PHASE_BOUNDS,
            )
            .observe(elapsed.as_micros() as u64);
    }

    fn record_latency(&self, elapsed: Duration) {
        let micros = elapsed.as_micros() as u64;
        self.latency.observe(micros);
        self.latency_max_micros.fetch_max(micros, Ordering::Relaxed);
        lock_unpoisoned(&self.latency_sample).offer(micros);
    }

    /// The `/metrics` document: the process-global registry (pipeline
    /// phases, extraction counters) merged with this server's request
    /// series, rendered in the byte-stable Prometheus text format.
    fn render_metrics(&self) -> String {
        let merged = Registry::default();
        merged.merge(telemetry::global());
        merged.merge(&self.registry);
        merged.render_prometheus()
    }

    fn to_json(&self, uptime: Duration, models: &ModelRegistry) -> serde_json::Value {
        let predict_requests = self.latency.count();
        let latency_micros = self.latency.sum();
        let predictions = self.predictions.get();
        let uptime_secs = uptime.as_secs_f64();
        let mean_micros = if predict_requests == 0 {
            0.0
        } else {
            latency_micros as f64 / predict_requests as f64
        };
        let throughput = if uptime_secs > 0.0 {
            predictions as f64 / uptime_secs
        } else {
            0.0
        };
        let [p50, p95, p99] = lock_unpoisoned(&self.latency_sample).percentiles([0.50, 0.95, 0.99]);
        let (active_version, versions) = models.snapshot();
        let model_slices: Vec<serde_json::Value> = versions
            .iter()
            .map(|m| {
                serde_json::json!({
                    "version": m.version,
                    "language": m.language,
                    "origin": m.origin.as_str(),
                    "active": Some(m.version) == active_version,
                    "predict_requests_total": m.predict_requests.load(Ordering::Relaxed),
                    "predictions_total": m.predictions.load(Ordering::Relaxed),
                    "errors_total": m.errors.load(Ordering::Relaxed),
                })
            })
            .collect();
        serde_json::json!({
            "uptime_secs": uptime_secs,
            "connections_total": self.connections.get(),
            "requests_total": self.requests.get(),
            "errors_total": self.errors.get(),
            "rejected_total": self.rejected.get(),
            "predict_requests_total": predict_requests,
            "predictions_total": predictions,
            "batches_total": self.batch_size.count(),
            "latency_micros_total": latency_micros,
            "latency_micros_mean": mean_micros,
            "latency_micros_p50": p50,
            "latency_micros_p95": p95,
            "latency_micros_p99": p99,
            "latency_micros_max": self.latency_max_micros.load(Ordering::Relaxed),
            "predictions_per_sec": throughput,
            "models": serde_json::Value::Array(model_slices),
        })
    }
}

/// One loaded model: an immutable `Arc<Pigeon>` plus per-version request
/// accounting for the `/v1/stats` slices. In-flight batches hold their
/// own `Arc<ModelVersion>`, so activating a new version never drops a
/// model out from under a running prediction.
struct ModelVersion {
    version: u64,
    language: &'static str,
    /// Where this version came from: `"startup"` or `"api"`.
    origin: String,
    model: Arc<Pigeon>,
    predict_requests: AtomicU64,
    predictions: AtomicU64,
    errors: AtomicU64,
}

impl ModelVersion {
    fn new(version: u64, model: Pigeon, origin: &str) -> Self {
        ModelVersion {
            version,
            language: model.language().name(),
            origin: origin.to_owned(),
            model: Arc::new(model),
            predict_requests: AtomicU64::new(0),
            predictions: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    fn record(&self, result: &Result<Vec<Prediction>, PigeonError>) {
        self.predict_requests.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(p) => {
                self.predictions
                    .fetch_add(p.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The versioned model registry behind `POST /v1/models`: an append-only
/// version list plus an atomically swappable active handle. A
/// coordinator-mode server starts with no model at all — the predict
/// routes answer a coded 409 until a model is installed (via `POST
/// /v1/models` or a finished train job).
struct ModelRegistry {
    versions: RwLock<Vec<Arc<ModelVersion>>>,
    active: RwLock<Option<Arc<ModelVersion>>>,
}

impl ModelRegistry {
    fn new(model: Option<Pigeon>, origin: &str) -> Self {
        match model {
            Some(model) => {
                let entry = Arc::new(ModelVersion::new(1, model, origin));
                ModelRegistry {
                    versions: RwLock::new(vec![Arc::clone(&entry)]),
                    active: RwLock::new(Some(entry)),
                }
            }
            None => ModelRegistry {
                versions: RwLock::new(Vec::new()),
                active: RwLock::new(None),
            },
        }
    }

    /// The version new work should run against. Callers keep the `Arc`
    /// for the whole batch, so a concurrent swap cannot unload it.
    fn active(&self) -> Option<Arc<ModelVersion>> {
        self.active
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Registers `model` as the next version and atomically makes it
    /// active. Returns the new entry.
    fn install(&self, model: Pigeon, origin: &str) -> Arc<ModelVersion> {
        let mut versions = self
            .versions
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = Arc::new(ModelVersion::new(versions.len() as u64 + 1, model, origin));
        versions.push(Arc::clone(&entry));
        *self.active.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&entry));
        entry
    }

    /// One version by number (`GET /v1/models/<version>`).
    fn get(&self, version: u64) -> Option<Arc<ModelVersion>> {
        self.versions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|m| m.version == version)
            .cloned()
    }

    /// `(active version, all versions in load order)`.
    fn snapshot(&self) -> (Option<u64>, Vec<Arc<ModelVersion>>) {
        let active = self.active().map(|m| m.version);
        let versions = self
            .versions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        (active, versions)
    }
}

/// The coded 409 every inference route answers while no model is
/// loaded (a coordinator started without `--model`).
fn no_model_error() -> HttpError {
    HttpError::new(
        409,
        "Conflict",
        "no-model",
        "no model is loaded; POST one to /v1/models or finish a train job".to_owned(),
    )
}

/// One queued predict job: the program source and the channel its
/// connection worker blocks on for the batch result.
struct Job {
    source: String,
    enqueued: Instant,
    reply: mpsc::Sender<JobReply>,
}

struct JobReply {
    result: Result<Vec<Prediction>, PigeonError>,
    model_version: u64,
}

#[derive(Debug)]
enum SubmitError {
    /// Queue at capacity — the backpressure (429) path.
    Full,
    /// Server shutting down.
    Closed,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue in front of the batcher. Connection
/// workers [`AdmissionQueue::submit`] single-predict jobs; the batcher
/// thread drains them in [`AdmissionQueue::next_batch`] micro-batches
/// sized by current depth.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
    depth_gauge: Arc<Gauge>,
}

impl AdmissionQueue {
    fn new(cap: usize, depth_gauge: Arc<Gauge>) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            depth_gauge,
        }
    }

    fn submit(&self, source: String) -> Result<mpsc::Receiver<JobReply>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let mut state = lock_unpoisoned(&self.state);
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.cap {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(Job {
            source,
            enqueued: Instant::now(),
            reply: tx,
        });
        self.depth_gauge.set(state.jobs.len() as i64);
        self.ready.notify_one();
        Ok(rx)
    }

    /// Blocks until a micro-batch is ready (or the queue is closed and
    /// drained — then `None`). After the first job arrives the batcher
    /// waits up to `batch_wait` for companions, cut short the moment
    /// `batch_max` are queued; it then takes `min(depth, batch_max)`
    /// jobs — the batch is sized by whatever the queue holds.
    fn next_batch(&self, batch_max: usize, batch_wait: Duration) -> Option<Vec<Job>> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let deadline = Instant::now() + batch_wait;
        while state.jobs.len() < batch_max && !state.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            state = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        let n = state.jobs.len().min(batch_max);
        let batch: Vec<Job> = state.jobs.drain(..n).collect();
        self.depth_gauge.set(state.jobs.len() as i64);
        Some(batch)
    }

    /// Marks the queue closed and wakes the batcher; queued jobs still
    /// drain (the batcher exits once the queue is empty).
    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.ready.notify_all();
    }
}

/// Everything a worker needs to answer requests, borrowed across the
/// server's thread scope.
struct ServerCtx {
    models: ModelRegistry,
    queue: AdmissionQueue,
    stats: Stats,
    started: Instant,
    /// Inference fan-out inside one micro-batch.
    infer_jobs: usize,
    /// Distributed-training coordination, armed by `--cache-dir`.
    coord: Option<CoordState>,
}

/// The batcher: drains the admission queue into `predict_batch` calls
/// against the currently active model version. A panic inside inference
/// answers every job in the batch with a coded internal error instead of
/// killing the thread.
fn run_batcher(ctx: &ServerCtx, cfg: &ServeConfig) {
    while let Some(batch) = ctx.queue.next_batch(cfg.batch_max.max(1), cfg.batch_wait) {
        let Some(entry) = ctx.models.active() else {
            // Model-less coordinator: the predict route answers 409
            // before submitting, so this only covers the race where the
            // active model disappeared between submit and drain (it
            // cannot today — versions are append-only — but the batcher
            // must never panic on the invariant).
            for job in &batch {
                let _ = job.reply.send(JobReply {
                    result: Err(PigeonError::internal("no model loaded")),
                    model_version: 0,
                });
            }
            continue;
        };
        ctx.stats.batch_size.observe(batch.len() as u64);
        let now = Instant::now();
        for job in &batch {
            let waited = now.saturating_duration_since(job.enqueued).as_micros() as u64;
            ctx.stats.queue_wait.observe(waited);
        }
        let sources: Vec<&str> = batch.iter().map(|j| j.source.as_str()).collect();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            entry.model.predict_batch(&sources, ctx.infer_jobs)
        }));
        match outcome {
            Ok(results) => {
                for (job, result) in batch.iter().zip(results) {
                    entry.record(&result);
                    let _ = job.reply.send(JobReply {
                        result,
                        model_version: entry.version,
                    });
                }
            }
            Err(_) => {
                for job in &batch {
                    let result = Err(PigeonError::internal(
                        "prediction panicked; the server recovered",
                    ));
                    entry.record(&result);
                    let _ = job.reply.send(JobReply {
                        result,
                        model_version: entry.version,
                    });
                }
            }
        }
    }
}

/// Set by the SIGINT/SIGTERM handler; the accept loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // Provided by libc, which std already links; declaring it here
        // keeps the server dependency-free.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// Whether the fault-injection endpoint (`POST /v1/_chaos/poison`) is
/// armed. Off unless the process runs with `PIGEON_CHAOS=1`; the e2e
/// poisoned-lock regression test uses it to panic a worker while it
/// holds the latency reservoir.
fn chaos_enabled() -> bool {
    std::env::var("PIGEON_CHAOS").is_ok_and(|v| v == "1")
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    /// Raw body bytes. Endpoints that expect JSON validate UTF-8
    /// themselves (via [`parse_json_body`]); `POST /v1/models` accepts
    /// binary artifact bytes as-is.
    body: Vec<u8>,
    /// The client asked for (or its HTTP version implies) connection
    /// close after this response.
    wants_close: bool,
}

/// An HTTP error response: status, reason phrase, a stable
/// machine-readable code (matching [`crate::ErrorKind::code`] when the
/// failure came from the facade), and a human-readable message.
struct HttpError {
    status: u16,
    reason: &'static str,
    code: &'static str,
    message: String,
    /// Rendered as a `Retry-After: N` header (the 429 backpressure path).
    retry_after: Option<u64>,
}

impl HttpError {
    fn new(status: u16, reason: &'static str, code: &'static str, message: String) -> Self {
        HttpError {
            status,
            reason,
            code,
            message,
            retry_after: None,
        }
    }

    fn bad_request(message: String) -> Self {
        HttpError::new(400, "Bad Request", "bad-request", message)
    }

    /// The backpressure answer: queue full, come back shortly.
    fn overloaded(cap: usize) -> Self {
        let mut e = HttpError::new(
            429,
            "Too Many Requests",
            "overloaded",
            format!("admission queue full ({cap} jobs queued); retry shortly"),
        );
        e.retry_after = Some(1);
        e
    }

    /// A handler panicked; `catch_unwind` turned it into this coded 500.
    fn internal() -> Self {
        HttpError::new(
            500,
            "Internal Server Error",
            "internal",
            "request handler panicked; the server recovered".to_owned(),
        )
    }
}

/// A successful response body: JSON for the API endpoints, Prometheus
/// text for `/metrics`, raw bytes for partial/model downloads.
enum Payload {
    Json(serde_json::Value),
    Metrics(String),
    /// `(content type, body)` — served verbatim (`GET /v1/partials/…`,
    /// `GET /v1/train-jobs/…/model`).
    Bytes(&'static str, Vec<u8>),
}

/// Renders the status line and headers (through the blank line); the
/// caller writes the body bytes separately so binary payloads never
/// round-trip through a `String`. Deprecated (pre-`/v1`) responses
/// carry both the `Deprecation` marker and the RFC 8594 `Sunset` date.
fn render_head(
    status: u16,
    reason: &str,
    content_type: &str,
    deprecated: bool,
    connection: &str,
    retry_after: Option<u64>,
    body_len: usize,
) -> String {
    let deprecation = if deprecated {
        format!("Deprecation: true\r\nSunset: {DEPRECATED_SUNSET}\r\n")
    } else {
        String::new()
    };
    let retry = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {body_len}\r\n{deprecation}{retry}Connection: {connection}\r\n\r\n"
    )
}

/// Stamps the v1 API version field onto a JSON object response.
fn with_api(value: serde_json::Value) -> serde_json::Value {
    match value {
        serde_json::Value::Object(mut map) => {
            map.insert(
                "api".to_owned(),
                serde_json::Value::String(API_VERSION.to_owned()),
            );
            serde_json::Value::Object(map)
        }
        other => other,
    }
}

/// The last-resort error body. Even when JSON rendering itself fails,
/// the v1 contract holds: `"api"` stamp and a stable machine `code`.
const INTERNAL_ERROR_BODY: &str =
    "{\"api\":\"pigeon/1\",\"code\":\"internal\",\"error\":\"internal error\"}";

fn error_body(code: &str, message: &str) -> String {
    serde_json::to_string(&with_api(serde_json::json!({
        "code": code,
        "error": message,
    })))
    .unwrap_or_else(|_| INTERNAL_ERROR_BODY.to_owned())
}

/// Reads and parses one request off the socket, enforcing the body-size
/// bound.
///
/// `Ok(None)` means the connection ended cleanly **between** requests —
/// the peer closed it, or the read timeout passed with not a single
/// byte of a new request read. The caller closes silently: writing a
/// 408 into a connection the client has mentally parked (or already
/// closed) would corrupt keep-alive framing. A timeout *after* the
/// first byte is a real mid-request stall and surfaces as 408;
/// oversized bodies as 413.
fn read_request(
    reader: &mut BufReader<&TcpStream>,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    // Generous fixed bound on the header section; bodies get the
    // configurable limit.
    const MAX_HEADER_BYTES: usize = 16 * 1024;
    let is_timeout = |e: &std::io::Error| {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    };
    let map_io = |e: std::io::Error| -> HttpError {
        if is_timeout(&e) {
            HttpError::new(
                408,
                "Request Timeout",
                "timeout",
                "connection read timed out mid-request".into(),
            )
        } else {
            HttpError::new(400, "Bad Request", "io", format!("read failed: {e}"))
        }
    };
    let mut line = String::new();
    match reader.read_line(&mut line) {
        // EOF before any byte of a new request: clean close.
        Ok(0) => return Ok(None),
        Ok(_) => {}
        // Idle keep-alive gap: the timeout fired with nothing read.
        // (`read_line` appends whatever it read before failing, so an
        // empty buffer really means zero bytes.)
        Err(ref e) if is_timeout(e) && line.is_empty() => return Ok(None),
        Err(e) => return Err(map_io(e)),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(HttpError::bad_request("malformed request line".into()));
    };
    let (method, path) = (method.to_owned(), path.to_owned());
    let http_10 = parts
        .next()
        .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.0"));

    let mut content_length = 0usize;
    let mut connection = String::new();
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(map_io)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(
                431,
                "Request Header Fields Too Large",
                "bad-request",
                "headers too large".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length".to_owned()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            "Payload Too Large",
            "too-large",
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(map_io)?;
    // HTTP/1.1 defaults to keep-alive unless the client says `close`;
    // HTTP/1.0 defaults to close unless it says `keep-alive`.
    let wants_close = if connection.contains("close") {
        true
    } else if http_10 {
        !connection.contains("keep-alive")
    } else {
        false
    };
    Ok(Some(Request {
        method,
        path,
        body,
        wants_close,
    }))
}

fn predictions_to_json(predictions: &[Prediction]) -> serde_json::Value {
    serde_json::Value::Array(
        predictions
            .iter()
            .map(|p| {
                serde_json::json!({
                    "current_name": p.current_name,
                    "predicted_name": p.predicted_name,
                    "candidates": serde_json::Value::Array(
                        p.candidates
                            .iter()
                            .map(|(name, score)| serde_json::json!([name, score]))
                            .collect(),
                    ),
                })
            })
            .collect(),
    )
}

fn parse_json_body(body: &[u8]) -> Result<serde_json::Value, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::bad_request("request body is not UTF-8".to_owned()))?;
    serde_json::from_str(text)
        .map_err(|e| HttpError::bad_request(format!("request is not valid JSON: {e}")))
}

/// The shared validation path for binary uploads (`POST /v1/models`,
/// `POST /v1/partials`): reject empty bodies, run the format-specific
/// decoder, and map any load failure to a 400 carrying the error's
/// stable code (`model-format`, `parse`, …) — one contract for every
/// upload endpoint instead of per-route hand-rolling.
fn validated_upload<T>(
    body: &[u8],
    decode: impl FnOnce(&[u8]) -> Result<T, PigeonError>,
) -> Result<T, HttpError> {
    if body.is_empty() {
        return Err(HttpError::bad_request("empty upload body".to_owned()));
    }
    decode(body).map_err(|e| HttpError::new(400, "Bad Request", e.code(), e.to_string()))
}

// ---------------------------------------------------------------------
// Distributed training: job coordination + content-addressed cache.
// ---------------------------------------------------------------------

/// Where a train job is in its lifecycle.
enum JobPhase {
    /// Shards outstanding; workers are polling `/v1/leases`.
    Running,
    /// Coverage was exact and the finishing merge wrote the model.
    Done,
    /// The finishing merge failed (kept for post-mortem via the status
    /// route; the partials stay in the cache).
    Failed(String),
}

impl JobPhase {
    fn name(&self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed(_) => "failed",
        }
    }
}

/// One distributed train job: the corpus + knobs from `POST
/// /v1/train-jobs`, the per-shard board, and bookkeeping for the status
/// route.
struct CoordJob {
    id: u64,
    language: Language,
    corpus_dir: String,
    /// Where the finished model JSON lands (server-side path).
    out: String,
    shard_count: u32,
    total_docs: u32,
    /// The meta every uploaded partial must agree with knob-for-knob
    /// (`shard_index` is per-upload and ignored in the comparison).
    expected: PartialMeta,
    board: ShardBoard,
    /// Shards found in the cache at job creation.
    cached_at_creation: u32,
    reassignments: u64,
    phase: JobPhase,
    /// Coordinator-clock creation time (for the `collect` phase timer).
    created_ms: u64,
}

/// Coordination state, armed by `--cache-dir` (both `pigeon serve` and
/// `pigeon coordinate`). All mutable state sits behind one mutex — the
/// board operations are microseconds; only the finishing merge holds it
/// for longer, and by then every worker is done anyway.
struct CoordState {
    cache_dir: PathBuf,
    lease_timeout: Duration,
    jobs: Mutex<Vec<CoordJob>>,
    next_job_id: AtomicU64,
}

impl CoordState {
    fn new(cache_dir: &str, lease_timeout: Duration) -> Result<Self, String> {
        std::fs::create_dir_all(cache_dir).map_err(|e| format!("{cache_dir}: {e}"))?;
        Ok(CoordState {
            cache_dir: PathBuf::from(cache_dir),
            lease_timeout,
            jobs: Mutex::new(Vec::new()),
            next_job_id: AtomicU64::new(1),
        })
    }

    /// The on-disk cache path for a content address.
    fn partial_path(&self, key: &str) -> PathBuf {
        self.cache_dir.join(format!("{key}.pgnc"))
    }
}

/// The coordination surface is not armed on this server.
fn no_coordinator_error() -> HttpError {
    HttpError::new(
        409,
        "Conflict",
        "no-coordinator",
        "distributed training is not enabled; start with --cache-dir or `pigeon coordinate`"
            .to_owned(),
    )
}

/// Milliseconds on the coordinator's monotonic clock (lease deadlines).
fn coord_now_ms(ctx: &ServerCtx) -> u64 {
    ctx.started.elapsed().as_millis() as u64
}

/// Writes `bytes` atomically (tmp + rename) so a crashed or concurrent
/// write can never leave a torn file behind a content address.
fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// JSON field accessors for the train-job request body.
fn json_str<'a>(v: &'a serde_json::Value, field: &str) -> Option<&'a str> {
    v.get(field).and_then(|s| s.as_str())
}

fn json_u64(v: &serde_json::Value, field: &str, default: u64) -> Result<u64, HttpError> {
    match v.get(field) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| HttpError::bad_request(format!("`{field}` must be a number"))),
    }
}

fn json_f64(v: &serde_json::Value, field: &str, default: f64) -> Result<f64, HttpError> {
    match v.get(field) {
        None => Ok(default),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| HttpError::bad_request(format!("`{field}` must be a number"))),
    }
}

fn json_bool(v: &serde_json::Value, field: &str, default: bool) -> Result<bool, HttpError> {
    match v.get(field) {
        None => Ok(default),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| HttpError::bad_request(format!("`{field}` must be a boolean"))),
    }
}

/// Derives every shard's content address for a job: FNV-1a of the
/// config fingerprint (over the same knob table `merge_partials`
/// compares), the shard coordinates, and the shard's file names +
/// bytes. Touching one corpus file moves exactly that shard's key.
fn derive_shard_keys(
    expected: &PartialMeta,
    files: &[(String, String)],
    shard_count: u32,
) -> Vec<String> {
    let config_fp = config_fingerprint(&config_knobs(expected));
    (0..shard_count)
        .map(|i| {
            let range = shard_range(files.len(), i as usize, shard_count as usize);
            let corpus_fp = corpus_shard_fingerprint(
                files[range].iter().map(|(n, s)| (n.as_str(), s.as_bytes())),
            );
            cache_key(config_fp, i, shard_count, corpus_fp)
        })
        .collect()
}

/// `POST /v1/train-jobs`: create a job from a corpus dir + knobs, scan
/// the cache for shards that are already done, and (when everything was
/// cached) run the finishing merge immediately.
fn create_train_job(ctx: &ServerCtx, req: &Request) -> Result<Payload, HttpError> {
    let coord = ctx.coord.as_ref().ok_or_else(no_coordinator_error)?;
    let value = parse_json_body(&req.body)?;
    let corpus_dir = json_str(&value, "corpus_dir")
        .ok_or_else(|| HttpError::bad_request("`corpus_dir` (string) is required".to_owned()))?;
    let out = json_str(&value, "out")
        .ok_or_else(|| HttpError::bad_request("`out` (string) is required".to_owned()))?;
    let language_name = json_str(&value, "language")
        .ok_or_else(|| HttpError::bad_request("`language` (string) is required".to_owned()))?;
    let language = Language::from_name(language_name).ok_or_else(|| {
        HttpError::new(
            400,
            "Bad Request",
            "config",
            format!("unknown language `{language_name}`"),
        )
    })?;
    let target = match json_str(&value, "target").unwrap_or("variables") {
        "variables" | "vars" => ElementClass::Variable,
        "methods" => ElementClass::Method,
        other => {
            return Err(HttpError::new(
                400,
                "Bad Request",
                "config",
                format!("unknown target `{other}` (variables|methods)"),
            ))
        }
    };
    let shard_count = json_u64(&value, "shard_count", 1)? as u32;
    if shard_count == 0 {
        return Err(HttpError::new(
            400,
            "Bad Request",
            "config",
            "`shard_count` must be at least 1".to_owned(),
        ));
    }
    // The same validating builder the CLI trains through: bad knobs are
    // a coded 400 naming the constraint, not a job that fails later.
    let config = PigeonConfig::builder()
        .limits(
            json_u64(&value, "max_length", 4)? as usize,
            json_u64(&value, "max_width", 3)? as usize,
        )
        .keep_prob(json_f64(&value, "keep_prob", 1.0)?)
        .dataflow_contexts(json_bool(&value, "dataflow_contexts", false)?)
        .build()
        .map_err(|e| HttpError::new(400, "Bad Request", e.code(), e.to_string()))?;
    let files = crate::distrib::list_corpus(language, corpus_dir)
        .map_err(|e| HttpError::new(400, "Bad Request", "io", e))?;
    let total_docs = files.len() as u32;
    let expected =
        crate::training_partial_meta(language, target, &config, 0, shard_count, total_docs);
    let keys = derive_shard_keys(&expected, &files, shard_count);

    let mut board = ShardBoard::new(keys, coord.lease_timeout.as_millis().max(1) as u64);
    let mut cached = 0u32;
    for (i, shard) in board.shards().to_vec().iter().enumerate() {
        if coord.partial_path(&shard.key).is_file() {
            board.mark_cached(i);
            ctx.stats.partials_cached.inc();
            cached += 1;
        }
    }

    let id = coord.next_job_id.fetch_add(1, Ordering::Relaxed);
    let mut job = CoordJob {
        id,
        language,
        corpus_dir: corpus_dir.to_owned(),
        out: out.to_owned(),
        shard_count,
        total_docs,
        expected,
        board,
        cached_at_creation: cached,
        reassignments: 0,
        phase: JobPhase::Running,
        created_ms: coord_now_ms(ctx),
    };
    if job.board.all_uploaded() {
        // Every shard was already in the cache: nothing to assign.
        ctx.stats
            .observe_job_phase("collect", Duration::from_millis(0));
        finish_job(ctx, coord, &mut job);
    }
    let response = serde_json::json!({
        "id": id,
        "shard_count": shard_count,
        "total_docs": total_docs,
        "cached": cached,
        "phase": job.phase.name(),
        "out": job.out,
    });
    lock_unpoisoned(&coord.jobs).push(job);
    Ok(Payload::Json(response))
}

/// The finishing pass once coverage is exact: read every shard's
/// partial from the cache, run the PR 8 merge (byte-identical to the
/// single-process run), write the model atomically to the job's `out`,
/// and make it this server's active model version.
fn finish_job(ctx: &ServerCtx, coord: &CoordState, job: &mut CoordJob) {
    let t = Instant::now();
    let outcome = (|| -> Result<(), String> {
        let parts: Vec<Vec<u8>> = job
            .board
            .shards()
            .iter()
            .map(|s| {
                let path = coord.partial_path(&s.key);
                std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))
            })
            .collect::<Result<_, _>>()?;
        let model = Pigeon::from_partials(&parts).map_err(|e| e.to_string())?;
        let json = model.to_json().map_err(|e| e.to_string())?;
        atomic_write(std::path::Path::new(&job.out), json.as_bytes())?;
        ctx.models.install(model, "train-job");
        Ok(())
    })();
    ctx.stats.observe_job_phase("merge", t.elapsed());
    match outcome {
        Ok(()) => {
            job.board.mark_merged();
            job.phase = JobPhase::Done;
            println!(
                "pigeon coordinate: job {} merged {} shards → {}",
                job.id, job.shard_count, job.out
            );
        }
        Err(e) => {
            eprintln!("pigeon coordinate: job {} merge failed: {e}", job.id);
            job.phase = JobPhase::Failed(e);
        }
    }
}

/// `POST /v1/partials`: ingest one `.pgnc` partial. The body is decoded
/// and fully validated (checksums, count-map structure) before any disk
/// write; its meta is matched against the jobs' expected configuration
/// — a knob mismatch is a coded 400 naming the knob. Valid partials
/// land in the content-addressed cache (atomic write), advance their
/// shard, and trigger the finishing merge when they complete coverage.
fn ingest_partial(ctx: &ServerCtx, req: &Request) -> Result<Payload, HttpError> {
    let coord = ctx.coord.as_ref().ok_or_else(no_coordinator_error)?;
    let partial = validated_upload(&req.body, |bytes| {
        decode_partial(bytes).map_err(PigeonError::model_format)
    })
    .inspect_err(|_| ctx.stats.partials_rejected.inc())?;
    let meta = &partial.meta;

    let mut jobs = lock_unpoisoned(&coord.jobs);
    // Match the upload to a job by shard geometry, newest job first;
    // remember the first knob mismatch so the error can name the knob.
    let mut mismatch: Option<String> = None;
    let mut matched: Option<usize> = None;
    for (pos, job) in jobs.iter().enumerate().rev() {
        if job.expected.shard_count != meta.shard_count
            || job.expected.total_docs != meta.total_docs
            || meta.shard_index >= job.shard_count
        {
            continue;
        }
        let disagreement = config_knobs(&job.expected)
            .iter()
            .zip(config_knobs(meta))
            .find_map(|((knob, want), (_, got))| {
                (*want != got).then(|| {
                    format!("partial disagrees with job {} on {knob}: job has {want}, partial has {got}",
                        job.id)
                })
            });
        match disagreement {
            Some(message) => mismatch = Some(message),
            None => {
                matched = Some(pos);
                break;
            }
        }
    }
    let Some(pos) = matched else {
        ctx.stats.partials_rejected.inc();
        return Err(match mismatch {
            Some(message) => HttpError::new(400, "Bad Request", "config", message),
            None => HttpError::new(
                409,
                "Conflict",
                "no-job",
                format!(
                    "no train job matches this partial's shard geometry \
                     ({}/{} over {} docs)",
                    meta.shard_index, meta.shard_count, meta.total_docs
                ),
            ),
        });
    };

    let now_ms = coord_now_ms(ctx);
    let job = &mut jobs[pos];
    let index = meta.shard_index as usize;
    let key = job.board.shards()[index].key.clone();
    let path = coord.partial_path(&key);
    let existed = path.is_file();
    if existed {
        ctx.stats.partials_cached.inc();
    } else {
        atomic_write(&path, &req.body)
            .map_err(|e| HttpError::new(500, "Internal Server Error", "io", e))?;
        ctx.stats.partials_received.inc();
    }
    let newly = job.board.mark_uploaded(index, None);
    if newly && job.board.all_uploaded() && matches!(job.phase, JobPhase::Running) {
        ctx.stats
            .observe_job_phase("collect", Duration::from_millis(now_ms - job.created_ms));
        finish_job(ctx, coord, job);
    }
    Ok(Payload::Json(serde_json::json!({
        "key": key,
        "job": job.id,
        "shard_index": index,
        "cached": existed,
        "phase": job.phase.name(),
    })))
}

/// `GET /v1/partials/<key>`: serve a cached partial's bytes — the
/// pre-flight workers run before extracting anything.
fn fetch_partial(ctx: &ServerCtx, key: &str) -> Result<Payload, HttpError> {
    let coord = ctx.coord.as_ref().ok_or_else(no_coordinator_error)?;
    // Content addresses are exactly 16 lowercase hex digits; anything
    // else (and in particular anything with path separators) is not a
    // key, so this doubles as the path-traversal guard.
    if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(HttpError::new(
            404,
            "Not Found",
            "not-found",
            format!("`{key}` is not a partial cache key"),
        ));
    }
    match std::fs::read(coord.partial_path(key)) {
        Ok(bytes) => Ok(Payload::Bytes("application/octet-stream", bytes)),
        Err(_) => Err(HttpError::new(
            404,
            "Not Found",
            "not-found",
            format!("no cached partial for key {key}"),
        )),
    }
}

/// `POST /v1/leases`: hand the polling worker a shard to extract —
/// first any pending shard, then any shard whose lease expired (a
/// straggler or a dead worker). The reply carries everything the worker
/// needs: corpus location, knobs, shard coordinates, and the content
/// address to check before doing any work.
fn lease_shard(ctx: &ServerCtx, req: &Request) -> Result<Payload, HttpError> {
    let coord = ctx.coord.as_ref().ok_or_else(no_coordinator_error)?;
    let value = parse_json_body(&req.body)?;
    let worker = json_str(&value, "worker").unwrap_or("anonymous");
    let now_ms = coord_now_ms(ctx);
    let mut jobs = lock_unpoisoned(&coord.jobs);
    let mut waiting = false;
    let mut running = 0u64;
    for job in jobs.iter_mut() {
        if !matches!(job.phase, JobPhase::Running) {
            continue;
        }
        running += 1;
        match job.board.lease(now_ms, worker) {
            Lease::Assigned { index, reassigned } => {
                if reassigned {
                    job.reassignments += 1;
                    ctx.stats.reassignments.inc();
                }
                let shard = &job.board.shards()[index];
                let m = &job.expected;
                return Ok(Payload::Json(serde_json::json!({
                    "status": "assigned",
                    "job": job.id,
                    "worker": worker,
                    "shard_index": index,
                    "shard_count": job.shard_count,
                    "total_docs": job.total_docs,
                    "cache_key": shard.key,
                    "corpus_dir": job.corpus_dir,
                    "language": m.language,
                    "target": m.target,
                    "max_length": m.max_length,
                    "max_width": m.max_width,
                    "keep_prob": m.keep_prob,
                    "dataflow_contexts": m.dataflow_contexts,
                    "deadline_ms": shard.deadline_ms,
                    "reassigned": reassigned,
                })));
            }
            Lease::Wait => waiting = true,
            Lease::Complete => {}
        }
    }
    Ok(Payload::Json(if waiting {
        serde_json::json!({ "status": "wait" })
    } else {
        serde_json::json!({ "status": "idle", "active_jobs": running })
    }))
}

/// One job's status JSON (`GET /v1/train-jobs[/{id}]`). `detailed` adds
/// the per-shard state machine.
fn job_status_json(job: &CoordJob, detailed: bool) -> serde_json::Value {
    let (pending, assigned, uploaded, merged) = job.board.phase_counts();
    let mut status = serde_json::json!({
        "id": job.id,
        "phase": job.phase.name(),
        "language": job.language.name(),
        "corpus_dir": job.corpus_dir,
        "out": job.out,
        "shard_count": job.shard_count,
        "total_docs": job.total_docs,
        "cached": job.cached_at_creation,
        "reassignments": job.reassignments,
        "shards_pending": pending,
        "shards_assigned": assigned,
        "shards_uploaded": uploaded,
        "shards_merged": merged,
    });
    if let serde_json::Value::Object(map) = &mut status {
        if let JobPhase::Failed(error) = &job.phase {
            map.insert("error".to_owned(), serde_json::Value::String(error.clone()));
        }
        if detailed {
            let shards: Vec<serde_json::Value> = job
                .board
                .shards()
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    serde_json::json!({
                        "index": i,
                        "key": s.key,
                        "phase": s.phase.name(),
                        "source": s.source.name(),
                        "worker": s.worker.clone().unwrap_or_default(),
                        "attempts": s.attempts,
                    })
                })
                .collect();
            map.insert("shards".to_owned(), serde_json::Value::Array(shards));
        }
    }
    status
}

/// Routes `GET /v1/train-jobs/<id>[/model]`.
fn get_train_job(ctx: &ServerCtx, path: &str) -> Result<Payload, HttpError> {
    let coord = ctx.coord.as_ref().ok_or_else(no_coordinator_error)?;
    let rest = path.strip_prefix("/v1/train-jobs/").unwrap_or_default();
    let (id_part, want_model) = match rest.strip_suffix("/model") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let not_found = || {
        HttpError::new(
            404,
            "Not Found",
            "not-found",
            format!("no train job `{id_part}`"),
        )
    };
    let id: u64 = id_part.parse().map_err(|_| not_found())?;
    let jobs = lock_unpoisoned(&coord.jobs);
    let job = jobs.iter().find(|j| j.id == id).ok_or_else(not_found)?;
    if !want_model {
        return Ok(Payload::Json(job_status_json(job, true)));
    }
    if !matches!(job.phase, JobPhase::Done) {
        return Err(HttpError::new(
            409,
            "Conflict",
            "not-ready",
            format!(
                "job {id} is {}; the model exists once it is done",
                job.phase.name()
            ),
        ));
    }
    let bytes = std::fs::read(&job.out).map_err(|e| {
        HttpError::new(
            500,
            "Internal Server Error",
            "io",
            format!("{}: {e}", job.out),
        )
    })?;
    Ok(Payload::Bytes("application/json", bytes))
}

/// Maps a request path to its canonical v1 endpoint, flagging the
/// pre-versioning aliases (they answer, but with `Deprecation: true`
/// and `Sunset` headers). Resource ids collapse to `{…}` placeholders
/// and unknown paths come back as `("other", false)`, so the
/// request-counter label set stays bounded however clients probe.
fn canonical_endpoint(path: &str) -> (&'static str, bool) {
    match path {
        "/v1/predict" => ("/v1/predict", false),
        "/predict" => ("/v1/predict", true),
        "/v1/predict_batch" => ("/v1/predict_batch", false),
        "/predict_batch" => ("/v1/predict_batch", true),
        "/v1/models" => ("/v1/models", false),
        "/v1/stats" => ("/v1/stats", false),
        "/stats" => ("/v1/stats", true),
        "/v1/health" => ("/v1/health", false),
        "/health" => ("/v1/health", true),
        "/v1/metrics" => ("/v1/metrics", false),
        "/metrics" => ("/v1/metrics", true),
        "/v1/partials" => ("/v1/partials", false),
        "/v1/train-jobs" => ("/v1/train-jobs", false),
        "/v1/leases" => ("/v1/leases", false),
        p if p.starts_with("/v1/models/") => ("/v1/models/{version}", false),
        p if p.starts_with("/v1/partials/") => ("/v1/partials/{key}", false),
        p if p.starts_with("/v1/train-jobs/") && p.ends_with("/model") => {
            ("/v1/train-jobs/{id}/model", false)
        }
        p if p.starts_with("/v1/train-jobs/") => ("/v1/train-jobs/{id}", false),
        _ => ("other", false),
    }
}

/// Routes one request (already canonicalised to its v1 endpoint).
fn route(ctx: &ServerCtx, endpoint: &'static str, req: &Request) -> Result<Payload, HttpError> {
    let stats = &ctx.stats;
    match (req.method.as_str(), endpoint) {
        ("POST", "/v1/predict") => {
            let t = Instant::now();
            if ctx.models.active().is_none() {
                return Err(no_model_error());
            }
            let value = parse_json_body(&req.body)?;
            let source = value
                .get("source")
                .and_then(|s| s.as_str())
                .ok_or_else(|| {
                    HttpError::bad_request(
                        "expected a JSON object with a string `source` field".to_owned(),
                    )
                })?;
            // Inference runs on the batcher, not here: the job enters the
            // admission queue (bounded — the 429 path is the backpressure
            // contract) and this worker blocks until its micro-batch
            // completes.
            let reply = match ctx.queue.submit(source.to_owned()) {
                Ok(rx) => rx.recv().map_err(|_| HttpError::internal())?,
                Err(SubmitError::Full) => {
                    stats.rejected.inc();
                    return Err(HttpError::overloaded(ctx.queue.cap));
                }
                Err(SubmitError::Closed) => {
                    return Err(HttpError::new(
                        503,
                        "Service Unavailable",
                        "shutting-down",
                        "server is shutting down".to_owned(),
                    ));
                }
            };
            let predictions = reply.result.map_err(|e| {
                HttpError::new(422, "Unprocessable Entity", e.code(), e.to_string())
            })?;
            stats.predictions.add(predictions.len() as u64);
            stats.record_latency(t.elapsed());
            Ok(Payload::Json(serde_json::json!({
                "model_version": reply.model_version,
                "predictions": predictions_to_json(&predictions),
            })))
        }
        ("POST", "/v1/predict_batch") => {
            let t = Instant::now();
            let value = parse_json_body(&req.body)?;
            let sources = value
                .get("sources")
                .and_then(|s| s.as_array())
                .ok_or_else(|| {
                    HttpError::bad_request(
                        "expected a JSON object with a `sources` array".to_owned(),
                    )
                })?;
            // A client-assembled batch is already a batch: it runs
            // directly against the active model instead of being split
            // through the admission queue.
            let entry = ctx.models.active().ok_or_else(no_model_error)?;
            let mut results = Vec::with_capacity(sources.len());
            for source in sources {
                let Some(source) = source.as_str() else {
                    return Err(HttpError::bad_request(
                        "`sources` must hold strings".to_owned(),
                    ));
                };
                // Per-source failures are reported in place so one bad
                // program does not void the rest of the batch; they carry
                // the same stable `code` as top-level error bodies.
                let result = entry.model.predict(source);
                entry.record(&result);
                results.push(match result {
                    Ok(predictions) => {
                        stats.predictions.add(predictions.len() as u64);
                        serde_json::json!({ "predictions": predictions_to_json(&predictions) })
                    }
                    Err(e) => serde_json::json!({
                        "code": e.code(),
                        "error": e.to_string(),
                    }),
                });
            }
            stats.record_latency(t.elapsed());
            Ok(Payload::Json(serde_json::json!({
                "model_version": entry.version,
                "results": serde_json::Value::Array(results),
            })))
        }
        ("POST", "/v1/models") => {
            // The body is either a model JSON in the `pigeon train
            // --out` format or the raw bytes of a compiled `.pgnc`
            // artifact; `Pigeon::load` sniffs the magic. Loading
            // validates weight tables (and, for artifacts, every
            // section checksum and bound) against the shipped
            // vocabularies, so a truncated or corrupted upload is a
            // 400 with the load error's stable code, not a swapped-in
            // broken model.
            let format = if crate::crf::artifact::is_artifact(&req.body) {
                "artifact"
            } else {
                "json"
            };
            let model = validated_upload(&req.body, Pigeon::load)?;
            let entry = ctx.models.install(model, "api");
            stats.model_swaps.inc();
            Ok(Payload::Json(serde_json::json!({
                "version": entry.version,
                "language": entry.language,
                "format": format,
                "active": true,
            })))
        }
        ("GET", "/v1/models") => {
            let (active_version, versions) = ctx.models.snapshot();
            let list: Vec<serde_json::Value> = versions
                .iter()
                .map(|m| {
                    serde_json::json!({
                        "version": m.version,
                        "language": m.language,
                        "origin": m.origin.as_str(),
                        "active": Some(m.version) == active_version,
                    })
                })
                .collect();
            // `active_version` renders as the bare integer when a model
            // is loaded (`"active_version":2`) and `null` on a
            // model-less coordinator.
            Ok(Payload::Json(serde_json::json!({
                "active_version": active_version,
                "models": serde_json::Value::Array(list),
            })))
        }
        ("GET", "/v1/models/{version}") => {
            let id = req.path.strip_prefix("/v1/models/").unwrap_or_default();
            let not_found = || {
                HttpError::new(
                    404,
                    "Not Found",
                    "not-found",
                    format!("no model version `{id}`"),
                )
            };
            let version: u64 = id.parse().map_err(|_| not_found())?;
            let (active_version, _) = ctx.models.snapshot();
            let m = ctx.models.get(version).ok_or_else(not_found)?;
            Ok(Payload::Json(serde_json::json!({
                "version": m.version,
                "language": m.language,
                "origin": m.origin.as_str(),
                "active": Some(m.version) == active_version,
                "predict_requests": m.predict_requests.load(Ordering::Relaxed),
                "predictions": m.predictions.load(Ordering::Relaxed),
                "errors": m.errors.load(Ordering::Relaxed),
            })))
        }
        ("POST", "/v1/partials") => ingest_partial(ctx, req),
        ("GET", "/v1/partials/{key}") => fetch_partial(
            ctx,
            req.path.strip_prefix("/v1/partials/").unwrap_or_default(),
        ),
        ("POST", "/v1/train-jobs") => create_train_job(ctx, req),
        ("GET", "/v1/train-jobs") => {
            let coord = ctx.coord.as_ref().ok_or_else(no_coordinator_error)?;
            let jobs = lock_unpoisoned(&coord.jobs);
            let list: Vec<serde_json::Value> =
                jobs.iter().map(|j| job_status_json(j, false)).collect();
            Ok(Payload::Json(serde_json::json!({
                "jobs": serde_json::Value::Array(list),
            })))
        }
        ("GET", "/v1/train-jobs/{id}") | ("GET", "/v1/train-jobs/{id}/model") => {
            get_train_job(ctx, &req.path)
        }
        ("POST", "/v1/leases") => lease_shard(ctx, req),
        ("GET", "/v1/stats") => Ok(Payload::Json(
            stats.to_json(ctx.started.elapsed(), &ctx.models),
        )),
        ("GET", "/v1/health") => Ok(Payload::Json(serde_json::json!({ "status": "ok" }))),
        ("GET", "/v1/metrics") => Ok(Payload::Metrics(stats.render_metrics())),
        ("POST", _) if req.path == "/v1/_chaos/poison" && chaos_enabled() => {
            // Fault injection for the poisoned-lock regression test:
            // panic while holding the latency reservoir. This request
            // answers 500 (via catch_unwind); every later request must
            // still succeed — that is the bug this guards against.
            let _guard = lock_unpoisoned(&stats.latency_sample);
            panic!("chaos: poisoning the latency reservoir");
        }
        _ => Err(HttpError::new(
            404,
            "Not Found",
            "not-found",
            format!("no route for {} {}", req.method, req.path),
        )),
    }
}

fn handle_connection(stream: TcpStream, ctx: &ServerCtx, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    ctx.stats.connections.inc();
    let mut reader = BufReader::new(&stream);
    let mut served = 0usize;
    loop {
        let (endpoint, deprecated, close_after, result) =
            match read_request(&mut reader, cfg.max_request_bytes) {
                // Clean end of a keep-alive conversation (peer closed, or
                // the idle gap timed out with no new request started):
                // close silently, no response on the wire.
                Ok(None) => break,
                Ok(Some(req)) => {
                    ctx.stats.requests.inc();
                    let (endpoint, deprecated) = canonical_endpoint(&req.path);
                    let close = !cfg.keep_alive
                        || req.wants_close
                        || served + 1 >= cfg.max_conn_requests.max(1);
                    // A panicking handler answers 500 and the worker (and
                    // its connection) live on.
                    let result =
                        std::panic::catch_unwind(AssertUnwindSafe(|| route(ctx, endpoint, &req)))
                            .unwrap_or_else(|_| Err(HttpError::internal()));
                    (endpoint, deprecated, close, result)
                }
                // A malformed or mid-request-stalled read leaves the
                // stream framing unknown: answer, then always close.
                Err(e) => {
                    ctx.stats.requests.inc();
                    ("other", false, true, Err(e))
                }
            };
        let connection = if close_after { "close" } else { "keep-alive" };
        if deprecated {
            ctx.stats.deprecated_requests.inc();
        }
        let (head, body) = match result {
            Ok(Payload::Json(body)) => {
                ctx.stats.record_http(endpoint, 200);
                let body = serde_json::to_string(&with_api(body))
                    .unwrap_or_else(|_| INTERNAL_ERROR_BODY.to_owned())
                    .into_bytes();
                let head = render_head(
                    200,
                    "OK",
                    "application/json",
                    deprecated,
                    connection,
                    None,
                    body.len(),
                );
                (head, body)
            }
            Ok(Payload::Metrics(text)) => {
                ctx.stats.record_http(endpoint, 200);
                let body = text.into_bytes();
                let head = render_head(
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    deprecated,
                    connection,
                    None,
                    body.len(),
                );
                (head, body)
            }
            Ok(Payload::Bytes(content_type, body)) => {
                ctx.stats.record_http(endpoint, 200);
                let head = render_head(
                    200,
                    "OK",
                    content_type,
                    deprecated,
                    connection,
                    None,
                    body.len(),
                );
                (head, body)
            }
            Err(e) => {
                ctx.stats.errors.inc();
                ctx.stats.record_http(endpoint, e.status);
                let body = error_body(e.code, &e.message).into_bytes();
                let head = render_head(
                    e.status,
                    e.reason,
                    "application/json",
                    deprecated,
                    connection,
                    e.retry_after,
                    body.len(),
                );
                (head, body)
            }
        };
        if (&stream)
            .write_all(head.as_bytes())
            .and_then(|()| (&stream).write_all(&body))
            .is_err()
        {
            break;
        }
        let _ = (&stream).flush();
        served += 1;
        if close_after {
            break;
        }
    }
}

/// A bound-but-not-yet-serving server: the listener exists (so the
/// ephemeral port is known) but no thread is accepting. Lets embedders
/// — the serving benchmark in particular — learn the address before
/// handing the thread to [`BoundServer::run`].
pub struct BoundServer {
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServeConfig,
}

/// Binds the configured address without serving yet.
///
/// # Errors
///
/// Returns a message when the listen address cannot be bound.
pub fn bind(cfg: &ServeConfig) -> Result<BoundServer, String> {
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))
        .map_err(|e| format!("cannot bind {}:{}: {e}", cfg.host, cfg.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll listener: {e}"))?;
    Ok(BoundServer {
        listener,
        addr,
        cfg: cfg.clone(),
    })
}

/// Asks a running [`BoundServer::run`] loop in this process to shut
/// down, exactly as SIGINT would.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Runs the server until SIGINT/SIGTERM or the idle timeout.
///
/// Prints one `listening on http://HOST:PORT` line (with the resolved
/// ephemeral port, when `port` was 0) before accepting traffic, and a
/// final request-count summary after a clean shutdown.
///
/// # Errors
///
/// Returns a message when the listen address cannot be bound.
pub fn serve(model: Pigeon, cfg: &ServeConfig) -> Result<(), String> {
    bind(cfg)?.run(Some(model))
}

/// Runs a model-less coordinator: the distributed-training surface
/// (`/v1/train-jobs`, `/v1/partials`, `/v1/leases`) without an initial
/// model. Predict routes answer a coded 409 until a train job finishes
/// (the merged model becomes the active version) or one is POSTed.
///
/// # Errors
///
/// Returns a message when `cache_dir` is unset or cannot be created, or
/// the listen address cannot be bound.
pub fn coordinate(cfg: &ServeConfig) -> Result<(), String> {
    if cfg.cache_dir.is_none() {
        return Err("pigeon coordinate requires --cache-dir".to_owned());
    }
    bind(cfg)?.run(None)
}

impl BoundServer {
    /// The bound address (with the resolved port when `port` was 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until SIGINT/SIGTERM, [`request_shutdown`], or the idle
    /// timeout. `model: None` starts in coordinator mode.
    ///
    /// # Errors
    ///
    /// Returns a message when the partial cache directory cannot be
    /// created.
    pub fn run(self, model: Option<Pigeon>) -> Result<(), String> {
        let BoundServer {
            listener,
            addr,
            cfg,
        } = self;
        let cfg = &cfg;
        let infer_jobs = pigeon_eval::effective_jobs(cfg.workers);
        // Connection workers are I/O-bound (they park in read_line between
        // keep-alive requests), so the pool gets a floor: with keep-alive, a
        // single parked connection would otherwise pin the only worker on a
        // 1-core host and starve new clients for a whole read timeout.
        let workers = infer_jobs.max(4);
        SHUTDOWN.store(false, Ordering::SeqCst);
        install_shutdown_handler();

        let coord = match &cfg.cache_dir {
            Some(dir) => Some(CoordState::new(dir, cfg.lease_timeout)?),
            None => None,
        };
        let mode = if model.is_some() {
            "serve"
        } else {
            "coordinate"
        };
        let stats = Stats::new();
        let queue = AdmissionQueue::new(cfg.queue_cap, Arc::clone(&stats.queue_depth));
        let ctx = ServerCtx {
            models: ModelRegistry::new(model, "startup"),
            queue,
            stats,
            started: Instant::now(),
            infer_jobs,
            coord,
        };
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let cache_note = match &cfg.cache_dir {
            Some(dir) => format!(", cache-dir {dir}"),
            None => String::new(),
        };
        match ctx.models.active() {
            Some(entry) => println!(
                "pigeon {mode}: {} model, listening on http://{addr} ({workers} worker{}, \
                 keep-alive {}, batch-max {}, queue-cap {}{cache_note})",
                entry.language,
                if workers == 1 { "" } else { "s" },
                if cfg.keep_alive { "on" } else { "off" },
                cfg.batch_max,
                cfg.queue_cap,
            ),
            None => println!(
                "pigeon {mode}: no model, listening on http://{addr} ({workers} worker{}, \
                 keep-alive {}{cache_note})",
                if workers == 1 { "" } else { "s" },
                if cfg.keep_alive { "on" } else { "off" },
            ),
        }

        std::thread::scope(|scope| {
            let ctx = &ctx;
            let batcher = scope.spawn(move || run_batcher(ctx, cfg));
            let worker_handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = Arc::clone(&rx);
                    scope.spawn(move || loop {
                        // Holding the lock only for the recv keeps workers
                        // draining the queue independently; recovering from
                        // poisoning keeps the pool alive even if a sibling
                        // panicked while holding it.
                        let stream = lock_unpoisoned(&rx).recv();
                        match stream {
                            Ok(stream) => handle_connection(stream, ctx, cfg),
                            Err(_) => break, // accept loop hung up: shutdown
                        }
                    })
                })
                .collect();

            let mut last_activity = Instant::now();
            loop {
                if SHUTDOWN.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(idle) = cfg.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        break;
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        last_activity = Instant::now();
                        // The listener polls; connections block (with the
                        // read timeout) so workers do not spin.
                        let _ = stream.set_nonblocking(false);
                        // Responses go out as two writes (head, body);
                        // without TCP_NODELAY, Nagle holds the second
                        // segment for the peer's delayed ACK (~40 ms) on
                        // every keep-alive round trip.
                        let _ = stream.set_nodelay(true);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        eprintln!("pigeon serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            // Dropping the sender ends every connection worker's recv loop;
            // join them first (their in-flight predicts still need the
            // batcher), then close the queue so the batcher drains and
            // exits. The scope would join everything anyway — the explicit
            // order is what guarantees no request is dropped mid-shutdown.
            drop(tx);
            for handle in worker_handles {
                let _ = handle.join();
            }
            ctx.queue.close();
            let _ = batcher.join();
        });

        println!(
            "pigeon {mode}: shut down after {} requests ({} errors, {} predictions) in {:.1}s",
            ctx.stats.requests.get(),
            ctx.stats.errors.get(),
            ctx.stats.predictions.get(),
            ctx.started.elapsed().as_secs_f64(),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_percentiles_are_exact_below_capacity() {
        let mut r = Reservoir::default();
        for v in 1..=100u64 {
            r.offer(v);
        }
        assert_eq!(r.percentiles([0.50, 0.95, 0.99]), [50, 95, 99]);
        assert_eq!(r.percentiles([1.0]), [100]);
    }

    #[test]
    fn reservoir_memory_stays_bounded() {
        let mut r = Reservoir::default();
        for v in 0..10 * Reservoir::CAPACITY as u64 {
            r.offer(v);
        }
        assert_eq!(r.samples.len(), Reservoir::CAPACITY);
        assert_eq!(r.seen, 10 * Reservoir::CAPACITY as u64);
    }

    #[test]
    fn reservoir_sample_tracks_the_distribution() {
        // Offer 0..20_000; a uniform sample's median should land near
        // 10_000. A sampler that only kept a prefix would sit at ~512.
        let mut r = Reservoir::default();
        for v in 0..20_000u64 {
            r.offer(v);
        }
        let [p50] = r.percentiles([0.50]);
        assert!(
            (5_000..15_000).contains(&p50),
            "median {p50} far from 10_000"
        );
    }

    #[test]
    fn empty_reservoir_reports_zeros() {
        let r = Reservoir::default();
        assert_eq!(r.percentiles([0.50, 0.99]), [0, 0]);
    }

    /// Regression: a panic while holding the latency reservoir used to
    /// poison the mutex, after which **every** request panicked in
    /// `.expect("latency sample lock")` — one bad request became a
    /// denial of service. Recording and reading stats must survive a
    /// poisoned lock.
    #[test]
    fn stats_survive_a_poisoned_latency_reservoir() {
        let stats = Stats::new();
        // Poison the lock: a thread panics while holding the guard.
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = stats.latency_sample.lock().unwrap();
                    panic!("injected panic while holding the reservoir");
                })
                .join()
        });
        assert!(result.is_err(), "the injected panic must propagate");
        assert!(
            stats.latency_sample.lock().is_err(),
            "the lock must actually be poisoned for this test to bite"
        );
        // Both access sites recover: recording…
        stats.record_latency(Duration::from_micros(1500));
        stats.record_latency(Duration::from_micros(2500));
        // …and reading percentiles for /v1/stats.
        let models = ModelRegistry::new_for_tests();
        let json = stats.to_json(Duration::from_secs(1), &models);
        let rendered = serde_json::to_string(&json).unwrap();
        assert!(
            rendered.contains("\"latency_micros_p50\":"),
            "stats JSON still renders after poisoning: {rendered}"
        );
        assert_eq!(stats.latency.count(), 2);
    }

    /// Same recovery contract for the admission queue's mutex: a panic
    /// inside a submit or drain must not wedge the batcher.
    #[test]
    fn admission_queue_survives_a_poisoned_state_lock() {
        let queue = AdmissionQueue::new(4, Arc::new(Gauge::new()));
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = queue.state.lock().unwrap();
                    panic!("injected panic while holding the queue");
                })
                .join()
        });
        assert!(result.is_err());
        let rx = queue.submit("function f(a) {}".to_owned());
        assert!(rx.is_ok(), "submit must recover from the poisoned lock");
        let batch = queue.next_batch(8, Duration::ZERO).expect("one batch");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].source, "function f(a) {}");
    }

    #[test]
    fn admission_queue_rejects_past_capacity_and_drains_in_order() {
        let depth = Arc::new(Gauge::new());
        let queue = AdmissionQueue::new(2, Arc::clone(&depth));
        assert!(queue.submit("a".to_owned()).is_ok());
        assert!(queue.submit("b".to_owned()).is_ok());
        assert_eq!(depth.get(), 2);
        match queue.submit("c".to_owned()) {
            Err(SubmitError::Full) => {}
            _ => panic!("third submit must hit the 429 path"),
        }
        let batch = queue.next_batch(8, Duration::ZERO).expect("batch");
        assert_eq!(
            batch.iter().map(|j| j.source.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(depth.get(), 0);
        queue.close();
        assert!(queue.next_batch(8, Duration::ZERO).is_none());
        match queue.submit("d".to_owned()) {
            Err(SubmitError::Closed) => {}
            _ => panic!("closed queue must refuse new work"),
        }
    }

    #[test]
    fn next_batch_caps_at_batch_max() {
        let queue = AdmissionQueue::new(16, Arc::new(Gauge::new()));
        for i in 0..5 {
            queue.submit(format!("src{i}")).unwrap();
        }
        let batch = queue.next_batch(3, Duration::ZERO).expect("batch");
        assert_eq!(batch.len(), 3);
        let rest = queue.next_batch(3, Duration::ZERO).expect("batch");
        assert_eq!(rest.len(), 2);
    }

    impl ModelRegistry {
        /// A registry around a minimal trained model, for unit tests.
        fn new_for_tests() -> ModelRegistry {
            use crate::PigeonConfig;
            use pigeon_corpus::Language;
            let model = Pigeon::train_variable_namer(
                Language::JavaScript,
                &["function f(a) { return a; }"],
                &PigeonConfig::default(),
            )
            .expect("trains");
            ModelRegistry::new(Some(model), "test")
        }
    }

    #[test]
    fn model_registry_swaps_atomically_and_keeps_old_versions() {
        let registry = ModelRegistry::new_for_tests();
        let v1 = registry.active().expect("startup model is active");
        assert_eq!(v1.version, 1);
        assert_eq!(v1.origin, "test");
        let second = Pigeon::train_variable_namer(
            pigeon_corpus::Language::JavaScript,
            &["function g(x) { send(x); }"],
            &crate::PigeonConfig::default(),
        )
        .expect("trains");
        let v2 = registry.install(second, "api");
        assert_eq!(v2.version, 2);
        assert_eq!(registry.active().expect("active").version, 2);
        // The old handle stays usable after the swap — this is what
        // keeps in-flight batches alive through a hot swap.
        assert!(v1.model.predict("function h(y) { return y; }").is_ok());
        let (active, versions) = registry.snapshot();
        assert_eq!(active, Some(2));
        assert_eq!(
            versions.iter().map(|m| m.version).collect::<Vec<_>>(),
            [1, 2]
        );
    }
}
