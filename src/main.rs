//! The `pigeon` command-line tool: extract AST paths, generate corpora,
//! train name predictors, and query them — the workflow of the paper's
//! PIGEON tool as a CLI.
//!
//! ```text
//! pigeon paths    --language js FILE              # print path-contexts
//! pigeon generate --language js --files N DIR     # write a corpus
//! pigeon train    --language js --out model.json FILE...
//! pigeon compile  model.json model.pgnc           # compiled binary artifact
//! pigeon predict  --model model.json FILE         # suggest names
//! pigeon serve    --model model.json --port 7470  # HTTP prediction server
//! pigeon experiment --language js [--files N]     # quick accuracy run
//! pigeon audit    --language js PATH...           # static-analysis audit
//! ```

use pigeon::analysis::{audit_sources, lint_artifact, lint_crf, AuditConfig, Severity, SourceUnit};
use pigeon::core::{extract, parallel_map_indexed, Abstraction, ExtractionConfig};
use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::artifact::{container_kind, is_artifact, Quant, KIND_CHECKPOINT, KIND_PARTIAL};
use pigeon::crf::checkpoint::{decode_checkpoint, encode_checkpoint};
use pigeon::crf::TrainControl;
use pigeon::distrib::{language_ext, run_worker, WorkerOptions};
use pigeon::eval::partial::{decode_partial, verify_doc_stats};
use pigeon::eval::{run_name_experiment, ElementClass, NameExperiment};
use pigeon::serve::{coordinate, serve, ServeConfig};
use pigeon::{Pigeon, PigeonConfig, TrainRun};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("paths") => cmd_paths(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("coordinate") => cmd_coordinate(&args[1..]),
        Some("work") => cmd_work(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        // `audit` owns its exit code: 0 clean, 2 when findings reach the
        // `--deny` level, 1 (below) for usage/IO errors.
        Some("audit") => {
            return match cmd_audit(&args[1..]) {
                Ok(code) => code,
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `pigeon help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
pigeon — a general path-based representation for predicting program properties

USAGE:
  pigeon paths      --language LANG [--max-length N] [--max-width N]
                    [--abstraction LEVEL] FILE
  pigeon generate   --language LANG [--files N] [--seed N] [--jobs N] DIR
  pigeon train      --language LANG --out MODEL.json [--task vars|methods]
                    [--max-length N] [--max-width N] [--jobs N]
                    [--keep-prob P] [--dataflow-contexts BOOL]
                    [--trace-out FILE] [--timings BOOL]
                    [--shard I/N --emit-partial OUT.part]
                    [--checkpoint-every N --checkpoint-dir D] [--resume D]
                    [--update MODEL --add DIR]
                    [--synthetic N | FILE...]
  pigeon merge      --out MODEL[.json|.pgnc] [--quantize f32|f16|i8]
                    PART.part...
  pigeon compile    [--quantize f32|f16|i8] MODEL.json OUT.pgnc
  pigeon predict    --model MODEL[.json|.pgnc] [--trace-out FILE]
                    [--timings BOOL] FILE
  pigeon serve      --model MODEL[.json|.pgnc] [--host ADDR] [--port N] [--jobs N]
                    [--max-request-bytes N] [--read-timeout-ms N]
                    [--idle-timeout SECS] [--keep-alive BOOL]
                    [--max-conn-requests N] [--batch-max N]
                    [--batch-wait-ms N] [--queue-cap N]
                    [--cache-dir DIR] [--lease-timeout-ms N]
  pigeon coordinate --cache-dir DIR [--host ADDR] [--port N]
                    [--lease-timeout-ms N] [--idle-timeout SECS]
                    [--max-request-bytes N] [--read-timeout-ms N]
                    [--keep-alive BOOL] [--max-conn-requests N]
  pigeon work       --coordinator URL [--worker NAME] [--poll-ms N]
                    [--throttle-ms N] [--jobs N] [--exit-when-idle BOOL]
  pigeon experiment --language LANG [--files N] [--task vars|methods]
                    [--jobs N] [--max-length N] [--max-width N]
                    [--dataflow-contexts BOOL]
                    [--trace-out FILE] [--timings BOOL]
  pigeon audit      [--language LANG PATH...] [--model MODEL[.json|.pgnc]]
                    [--format text|json] [--deny info|warning|error]
                    [--jobs N] [--near-dups true|false]
                    [--list-codes true]

Flags take `--name value` or `--name=value`; a flag a subcommand does
not know is an error, never silently ignored. `pigeon <command> --help`
prints that command's flag table with one line of help per flag.

LANG: js | java | python | csharp
LEVEL: full | no-arrows | forget-order | first-top-last | first-last | top | no-path

DEFAULTS:
  --max-length  7 for `paths` (the paper's Table 2 JavaScript setting),
                4 for `train` (tuned for the small synthetic corpora)
  --max-width   3
  --jobs        1 (serial; 0 = all cores). Workers parallelise per-file
                parse + path extraction, the CRF's statistics pass, and
                held-out evaluation; the trained model is byte-identical
                for any value.
  --keep-prob   1.0 (keep every path-context; lower values downsample
                training contexts, §5.5 of the paper)
  --dataflow-contexts  false. When true, `train`/`experiment` also
                extract edge-typed data-flow path-contexts: last-write
                (`lw:`) and last-use (`lu:`) edges from the data-flow
                engine, connected by AST paths and fed to the CRF next
                to the syntactic paths. The flag is stored in the model
                (JSON, .pgnc and partials), so `predict`/`serve` extract
                the same features automatically; with it off, every
                output is byte-identical to builds without the flag.

DISTRIBUTED & INCREMENTAL TRAINING:
  --shard I/N       run extraction + statistics over the I-th of N
                    deterministic corpus slices only (0-based), writing
                    a partial statistics file with --emit-partial; give
                    every worker the SAME corpus (same FILEs or the same
                    --synthetic N). `pigeon merge` combines the partials
                    and finishes training, byte-identical to one
                    single-process `pigeon train` for any shard count.
  --checkpoint-every N  snapshot SGD state to --checkpoint-dir every N
                    epochs; Ctrl-C also writes a final checkpoint before
                    exiting. Resume with --resume DIR against the same
                    corpus and flags: the final model is identical to an
                    uninterrupted run.
  --update MODEL --add DIR  fold the new documents in DIR into an
                    existing JSON model without re-extracting the
                    original corpus (approximate: the base model's
                    truncated count tables seed the statistics).
                    Compiled .pgnc models cannot be updated — update the
                    JSON model and recompile.

MULTI-BOX DISTRIBUTED TRAINING:
  `pigeon coordinate --cache-dir DIR` runs a model-less coordinator.
  POST a job to /v1/train-jobs ({\"corpus_dir\", \"language\", \"out\",
  \"shard_count\", knobs…}); `pigeon work --coordinator URL` workers
  poll /v1/leases for shard assignments, extract their slice of the
  (shared-filesystem) corpus, and upload partials to /v1/partials.
  Partials are content-addressed by (training config, shard coords,
  corpus bytes): a worker checks GET /v1/partials/<key> before doing
  any work, so re-runs and restarts only re-extract shards whose
  inputs actually changed. Shards whose lease expires (straggler or
  dead worker) are reassigned with capped exponential backoff. Once
  coverage is exact the coordinator merges and writes `out` —
  byte-identical to one single-process `pigeon train` — and serves it
  as the active model. `pigeon serve --cache-dir DIR` arms the same
  surface next to an already-loaded model.

COMPILE:
  Freezes a JSON model into the compiled binary artifact (`.pgnc`):
  magic + checksummed sections holding the CSR-packed inference tables,
  loaded by `predict`/`serve`/`audit` with bulk array reads — no JSON
  parsing, no recompilation — for near-instant replica cold start.
  Every `--model` flag accepts either format (sniffed by magic), and
  `POST /v1/models` hot-swaps artifact bytes directly.
  --quantize    f32 (default, byte-exact weights), f16 (half the
                weight bytes), i8 (quarter, one scale per path).
                Quantized models are decision-identical to the f32
                reference in all released tests; verify any model with
                `pigeon audit --model OUT.pgnc`.

AUDIT:
  Static analysis over sources and trained models. PATHs are source
  files or directories (directories are walked for the language's
  extension, sorted by name). Checks: AST well-formedness (codes ast-*),
  scope/binding cross-check (scope-*), data-flow lints (use-before-def:
  a read no definition can reach; dead-store: a written value that can
  never be read; write-write-shadow: a store overwritten before any
  read; unused-binding: a variable that is never read), corpus
  duplication and near-duplication (corpus-*, split-leak), and model
  sanity (model-*) when --model is given. The data-flow lints run on
  per-function control-flow graphs with fixed-point reaching-definition
  and liveness analyses; findings are deterministic and byte-identical
  for any --jobs value. `--list-codes true` prints the full code
  catalog (text or --format json) and exits. --model also accepts partial statistics files
  and SGD checkpoints (kind sniffed from the container): partials get a
  full decode plus a count-map cross-check against their stored
  instances (partial-*), checkpoints a full state validation
  (checkpoint-*).
  --format      text (default) or json (schema pigeon-audit/1)
  --deny        fail when any diagnostic is at or above this severity
                (default: error)
  --jobs        0 = all cores; output is byte-identical for any value
  --near-dups   false skips the O(files²) MinHash near-duplicate scan
  Exit status: 0 clean, 2 denied findings, 1 usage or I/O error.

OBSERVABILITY:
  --trace-out FILE  write a Chrome trace-event JSON timeline of the
                    run's pipeline spans (open in chrome://tracing or
                    Perfetto)
  --timings BOOL    print a per-phase wall-time table to stderr
  PIGEON_TELEMETRY  set to 0/off/false to disable all telemetry
                    collection (counters, spans, /metrics)

SERVE (v1 API; every JSON response carries \"api\": \"pigeon/1\"):
  POST /v1/predict       {\"source\": \"<program>\"}        → predictions
  POST /v1/predict_batch {\"sources\": [\"<program>\", …]}  → per-source results
  POST /v1/models        <model JSON or .pgnc artifact bytes> — load +
                         hot-swap the active model (format sniffed)
  GET  /v1/models        list loaded model versions
  GET  /v1/models/<v>    one version's detail + per-version counters
  POST /v1/train-jobs    start a distributed train job (coordinator)
  GET  /v1/train-jobs    list jobs; /v1/train-jobs/<id> adds per-shard
                         states; /v1/train-jobs/<id>/model the result
  POST /v1/leases        worker shard-assignment poll
  POST /v1/partials      upload one .pgnc training partial
  GET  /v1/partials/<k>  fetch a cached partial by content address
  GET  /v1/stats         request/latency/throughput counters, per-model
                         version slices (JSON)
  GET  /v1/health        liveness probe
  GET  /v1/metrics       Prometheus text exposition
  Unversioned paths (/predict, /stats, …) still answer, with
  `Deprecation: true` + `Sunset` headers. Error bodies carry a stable
  `code`. The full route contract lives in API.md.
  Connections are HTTP/1.1 keep-alive; /v1/predict requests coalesce
  into micro-batches through a bounded admission queue (full queue →
  429 with Retry-After).
  --port        7470 (0 = ephemeral, printed on startup)
  --jobs        0 = one worker per core
  --idle-timeout  0 = serve until SIGINT/SIGTERM
  --keep-alive  true; false closes after every response
  --max-conn-requests  1000 requests served per connection before close
  --batch-max   16, largest micro-batch handed to predict_batch
  --batch-wait-ms  2, how long the batcher waits for companion requests
  --queue-cap   256 queued predicts before the server answers 429
";

/// A parsed `--name value` flag list.
type Flags = Vec<(String, String)>;

/// Minimal flag parser: returns (flags, positionals). Accepts both
/// `--name value` and `--name=value`; a flag may not swallow the next
/// flag as its value (`--out --language js` is an error, not a flag
/// named `out` with the value `--language`).
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if let Some((name, value)) = name.split_once('=') {
                flags.push((name.to_owned(), value.to_owned()));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                if value.starts_with("--") {
                    return Err(format!(
                        "flag --{name} needs a value, but got flag `{value}` \
                         (use --{name}=VALUE if the value really starts with --)"
                    ));
                }
                flags.push((name.to_owned(), value.clone()));
                i += 2;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((flags, positional))
}

/// One flag a subcommand accepts: `(name, one-line help)`. Each command
/// declares a single table, and that table drives both validation
/// ([`check_flags`]) and the generated `pigeon <command> --help` output
/// ([`print_command_help`]) — the help can never drift from what the
/// command actually accepts.
type FlagSpec = (&'static str, &'static str);

/// Rejects flags the subcommand does not understand: a typo like
/// `--max-legnth` must be an error, not a silently applied default.
fn check_flags(command: &str, flags: &Flags, allowed: &[FlagSpec]) -> Result<(), String> {
    for (name, _) in flags {
        if !allowed.iter().any(|(a, _)| a == name) {
            let allowed_list: Vec<String> = allowed.iter().map(|(a, _)| format!("--{a}")).collect();
            return Err(format!(
                "unknown flag --{name} for `pigeon {command}` (allowed: {})",
                allowed_list.join(", ")
            ));
        }
    }
    Ok(())
}

/// `--help`/`-h` anywhere in a subcommand's arguments. Checked before
/// [`parse_flags`] runs: `--help` takes no value, which the parser
/// would otherwise reject.
fn help_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// Renders a command's help from the same flag table `check_flags`
/// validates against.
fn print_command_help(command: &str, summary: &str, positional: &str, allowed: &[FlagSpec]) {
    let width = allowed.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    println!("pigeon {command} — {summary}");
    println!();
    println!("USAGE:");
    let trailer = if positional.is_empty() {
        String::new()
    } else {
        format!(" {positional}")
    };
    println!("  pigeon {command} [FLAGS]{trailer}");
    if !allowed.is_empty() {
        println!();
        println!("FLAGS:");
        for (name, help) in allowed {
            println!("  --{name:<width$}  {help}");
        }
    }
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn required_language(flags: &[(String, String)]) -> Result<Language, String> {
    let name = flag(flags, "language").ok_or("--language is required")?;
    Language::from_name(name).ok_or_else(|| format!("unknown language `{name}`"))
}

fn parse_usize(flags: &[(String, String)], name: &str, default: usize) -> Result<usize, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

fn parse_f64(flags: &[(String, String)], name: &str, default: f64) -> Result<f64, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

fn parse_bool(flags: &[(String, String)], name: &str, default: bool) -> Result<bool, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        Some(v) => Err(format!("--{name} expects true or false, got `{v}`")),
    }
}

/// The shared `--trace-out FILE` / `--timings BOOL` observability flags.
/// Parse before the instrumented work runs (trace recording must be
/// armed up front), then call [`Observability::finish`] once it is done.
struct Observability {
    trace_out: Option<String>,
    timings: bool,
}

impl Observability {
    fn from_flags(flags: &Flags) -> Result<Self, String> {
        let trace_out = flag(flags, "trace-out").map(str::to_owned);
        let timings = parse_bool(flags, "timings", false)?;
        if trace_out.is_some() {
            pigeon::telemetry::set_tracing(true);
        }
        Ok(Observability { trace_out, timings })
    }

    fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, pigeon::telemetry::trace_json())
                .map_err(|e| format!("{path}: {e}"))?;
        }
        if self.timings {
            eprint!("{}", pigeon::telemetry::phase_summary());
        }
        Ok(())
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{path}: {e}"))
}

/// Loads a model from disk in either format: compiled `.pgnc` artifact
/// (sniffed by magic) or JSON.
fn load_model(path: &str) -> Result<Pigeon, String> {
    Pigeon::load(&read_bytes(path)?).map_err(|e| format!("{path}: {e}"))
}

const PATHS_FLAGS: &[FlagSpec] = &[
    ("language", "source language: js | java | python | csharp"),
    (
        "max-length",
        "longest AST path kept (default 7, the paper's Table 2 setting)",
    ),
    ("max-width", "widest AST path kept (default 3)"),
    (
        "abstraction",
        "path abstraction level: full | no-arrows | forget-order | first-top-last | \
         first-last | top | no-path",
    ),
];

fn cmd_paths(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "paths",
            "print a file's AST path-contexts",
            "FILE",
            PATHS_FLAGS,
        );
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("paths", &flags, PATHS_FLAGS)?;
    let language = required_language(&flags)?;
    let [file] = positional.as_slice() else {
        return Err("expected exactly one FILE".into());
    };
    let max_length = parse_usize(&flags, "max-length", 7)?;
    let max_width = parse_usize(&flags, "max-width", 3)?;
    let abstraction = match flag(&flags, "abstraction") {
        None => Abstraction::Full,
        Some(name) => {
            Abstraction::from_name(name).ok_or_else(|| format!("unknown abstraction `{name}`"))?
        }
    };
    let source = read_file(file)?;
    let ast = language.parse(&source)?;
    let contexts = extract(&ast, &ExtractionConfig::with_limits(max_length, max_width));
    println!(
        "{} path-contexts (max_length {max_length}, max_width {max_width}, α = {abstraction}):",
        contexts.len()
    );
    for ctx in &contexts {
        println!(
            "⟨{}, {}, {}⟩",
            ctx.start,
            abstraction.apply(&ctx.path),
            ctx.end
        );
    }
    Ok(())
}

const GENERATE_FLAGS: &[FlagSpec] = &[
    ("language", "source language: js | java | python | csharp"),
    ("files", "number of files to generate (default 100)"),
    ("seed", "corpus generator seed (default 0x914700D5)"),
    (
        "jobs",
        "verification worker threads; 0 = all cores (default 1)",
    ),
];

fn cmd_generate(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "generate",
            "write a synthetic training corpus",
            "DIR",
            GENERATE_FLAGS,
        );
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("generate", &flags, GENERATE_FLAGS)?;
    let language = required_language(&flags)?;
    let [dir] = positional.as_slice() else {
        return Err("expected exactly one output DIR".into());
    };
    let files = parse_usize(&flags, "files", 100)?;
    let seed = parse_usize(&flags, "seed", 0x9147_00D5)? as u64;
    let jobs = parse_usize(&flags, "jobs", 1)?;
    let corpus = generate(
        language,
        &CorpusConfig::default().with_files(files).with_seed(seed),
    );
    let ext = language_ext(language);
    // Round-trip every document through the matching parser and the
    // well-formedness + scope checks before anything touches disk: a
    // generator bug must fail the run loudly, not poison a corpus.
    let verdicts = parallel_map_indexed(&corpus.docs, jobs, |i, doc| {
        let name = format!("doc{i:05}.{ext}");
        let ast = language
            .parse(&doc.source)
            .map_err(|e| format!("{name}: generated source fails to re-parse: {e}"))?;
        ast.check_invariants().map_err(|e| format!("{name}: {e}"))?;
        let errors: Vec<String> = pigeon::analysis::audit_ast(language, &name, &ast)
            .into_iter()
            .filter(|d| d.severity >= Severity::Warning)
            .map(|d| d.render_text())
            .collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{name}: generated source fails the well-formedness audit: {}",
                errors.join("; ")
            ))
        }
    });
    if let Some(failure) = verdicts.into_iter().find_map(Result::err) {
        return Err(failure);
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    for (i, doc) in corpus.docs.iter().enumerate() {
        let path = Path::new(dir).join(format!("doc{i:05}.{ext}"));
        std::fs::write(&path, &doc.source).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let stats = corpus.stats();
    println!(
        "wrote {} files ({:.1} KB, {} functions) to {dir}",
        stats.files,
        stats.bytes as f64 / 1024.0,
        stats.functions
    );
    Ok(())
}

fn train_config(flags: &[(String, String)]) -> Result<PigeonConfig, String> {
    // Default length 4 (the facade's training default, tuned for the
    // synthetic corpora) — deliberately shorter than `pigeon paths`'
    // default of 7, which shows the paper's untuned Table 2 setting.
    // The builder owns the validation (`keep_prob` must be a probability
    // in (0, 1], limits must be non-zero, …).
    PigeonConfig::builder()
        .limits(
            parse_usize(flags, "max-length", 4)?,
            parse_usize(flags, "max-width", 3)?,
        )
        .jobs(parse_usize(flags, "jobs", 1)?)
        .keep_prob(parse_f64(flags, "keep-prob", 1.0)?)
        .dataflow_contexts(parse_bool(flags, "dataflow-contexts", false)?)
        .build()
        .map_err(|e| e.to_string())
}

/// Maps a `--task` value to the prediction target.
fn parse_task(task: &str) -> Result<ElementClass, String> {
    match task {
        "vars" => Ok(ElementClass::Variable),
        "methods" => Ok(ElementClass::Method),
        other => Err(format!("unknown task `{other}` (vars|methods)")),
    }
}

/// Parses `--shard I/N` (0-based index, total count).
fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let bad = || format!("--shard expects I/N (e.g. 0/4), got `{spec}`");
    let (i, n) = spec.split_once('/').ok_or_else(bad)?;
    let index: usize = i.parse().map_err(|_| bad())?;
    let count: usize = n.parse().map_err(|_| bad())?;
    if count == 0 || index >= count {
        return Err(format!(
            "--shard index {index} out of range {count} (indices are 0-based)"
        ));
    }
    Ok((index, count))
}

/// Lists a directory's sources for `language`, sorted by name — the
/// corpus walk `pigeon train --add DIR` runs.
fn read_dir_sources(language: Language, dir: &str) -> Result<Vec<String>, String> {
    let ext = language_ext(language);
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == ext))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{dir}: no .{ext} files to add"));
    }
    files
        .iter()
        .map(|p| read_file(&p.display().to_string()))
        .collect()
}

/// Set by the SIGINT handler `pigeon train` installs when checkpointing
/// is on; the SGD loop polls it between instances.
static TRAIN_INTERRUPT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_train_interrupt_handler() {
    extern "C" fn on_signal(_signum: i32) {
        TRAIN_INTERRUPT.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // Provided by libc, which std already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_train_interrupt_handler() {}

/// The checkpoint file inside `--checkpoint-dir` / `--resume` DIR.
fn checkpoint_path(dir: &str) -> std::path::PathBuf {
    Path::new(dir).join("checkpoint.pgnc")
}

const TRAIN_FLAGS: &[FlagSpec] = &[
    ("language", "source language: js | java | python | csharp"),
    ("out", "where to write the trained model (MODEL.json)"),
    ("task", "prediction target: vars (default) | methods"),
    ("max-length", "longest AST path kept (default 4)"),
    ("max-width", "widest AST path kept (default 3)"),
    (
        "jobs",
        "worker threads; 0 = all cores (default 1; output is identical for any value)",
    ),
    (
        "keep-prob",
        "path-context keep probability in (0, 1] (default 1.0)",
    ),
    (
        "dataflow-contexts",
        "also extract edge-typed data-flow path-contexts (default false)",
    ),
    ("synthetic", "train on N generated files instead of FILEs"),
    (
        "shard",
        "run only the I-th of N corpus slices (I/N); requires --emit-partial",
    ),
    (
        "emit-partial",
        "where the shard's partial statistics go (OUT.pgnc)",
    ),
    (
        "checkpoint-every",
        "snapshot SGD state every N epochs (requires --checkpoint-dir)",
    ),
    (
        "checkpoint-dir",
        "directory holding the training checkpoint",
    ),
    (
        "resume",
        "resume from a checkpoint directory (same corpus and flags)",
    ),
    (
        "update",
        "fold new documents into this existing JSON model (requires --add)",
    ),
    ("add", "directory of new documents for --update"),
    (
        "trace-out",
        "write a Chrome trace-event JSON timeline to FILE",
    ),
    (
        "timings",
        "print a per-phase wall-time table to stderr (true|false)",
    ),
];

fn cmd_train(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "train",
            "train a name-prediction model",
            "[FILE...]",
            TRAIN_FLAGS,
        );
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("train", &flags, TRAIN_FLAGS)?;
    // A shard worker writes only its partial; every other mode writes a
    // model and therefore needs --out.
    let model_out = flag(&flags, "out");
    let require_out = || model_out.ok_or("--out is required");
    let observability = Observability::from_flags(&flags)?;

    // Incremental update: no extraction over the original corpus.
    if let Some(model_path) = flag(&flags, "update") {
        let out = require_out()?;
        let add_dir = flag(&flags, "add").ok_or("--update requires --add NEW_DOCS_DIR")?;
        for conflict in [
            "shard",
            "emit-partial",
            "checkpoint-every",
            "resume",
            "synthetic",
        ] {
            if flag(&flags, conflict).is_some() {
                return Err(format!("--update cannot be combined with --{conflict}"));
            }
        }
        let base = load_model(model_path)?;
        let sources = read_dir_sources(base.language(), add_dir)?;
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let updated = base.update(&refs).map_err(|e| e.to_string())?;
        let json = updated.to_json().map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
        observability.finish()?;
        println!(
            "folded {} new files from {add_dir} into {model_path}; model saved to {out}",
            refs.len()
        );
        return Ok(());
    }
    if flag(&flags, "add").is_some() {
        return Err("--add requires --update MODEL".into());
    }

    let language = required_language(&flags)?;
    let target = parse_task(flag(&flags, "task").unwrap_or("vars"))?;
    let config = train_config(&flags)?;

    let sources: Vec<String> = if let Some(n) = flag(&flags, "synthetic") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--synthetic expects a number, got `{n}`"))?;
        generate(language, &CorpusConfig::default().with_files(n))
            .docs
            .into_iter()
            .map(|d| d.source)
            .collect()
    } else if positional.is_empty() {
        return Err("provide training FILEs or --synthetic N".into());
    } else {
        positional
            .iter()
            .map(|p| read_file(p))
            .collect::<Result<_, _>>()?
    };
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();

    // Shard worker: extraction + statistics over a corpus slice only.
    if let Some(spec) = flag(&flags, "shard") {
        let emit =
            flag(&flags, "emit-partial").ok_or("--shard requires --emit-partial OUT.part")?;
        for conflict in ["checkpoint-every", "checkpoint-dir", "resume"] {
            if flag(&flags, conflict).is_some() {
                return Err(format!("--shard cannot be combined with --{conflict}"));
            }
        }
        let (index, count) = parse_shard(spec)?;
        let bytes = Pigeon::build_training_partial(language, target, &refs, index, count, &config)
            .map_err(|e| e.to_string())?;
        std::fs::write(emit, &bytes).map_err(|e| format!("{emit}: {e}"))?;
        observability.finish()?;
        println!(
            "shard {index}/{count}: partial statistics for {} of {} files saved to {emit} \
             ({} bytes); combine with `pigeon merge`",
            pigeon::eval::shard_range(refs.len(), index, count).len(),
            refs.len(),
            bytes.len()
        );
        return Ok(());
    }
    if flag(&flags, "emit-partial").is_some() {
        return Err("--emit-partial requires --shard I/N".into());
    }

    let checkpoint_every = parse_usize(&flags, "checkpoint-every", 0)?;
    let checkpoint_dir = flag(&flags, "checkpoint-dir");
    let resume_dir = flag(&flags, "resume");
    if checkpoint_every > 0 && checkpoint_dir.is_none() {
        return Err("--checkpoint-every requires --checkpoint-dir DIR".into());
    }

    let out = require_out()?;

    // Plain training: no checkpoint machinery in the loop at all.
    if checkpoint_every == 0 && checkpoint_dir.is_none() && resume_dir.is_none() {
        let model = match target {
            ElementClass::Variable => Pigeon::train_variable_namer(language, &refs, &config),
            _ => Pigeon::train_method_namer(language, &refs, &config),
        }
        .map_err(|e| e.to_string())?;
        let json = model.to_json().map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
        observability.finish()?;
        println!("trained on {} files; model saved to {out}", refs.len());
        return Ok(());
    }

    // Checkpointed / resumed training.
    let resume = match resume_dir {
        None => None,
        Some(dir) => {
            let path = checkpoint_path(dir);
            let bytes = read_bytes(&path.display().to_string())?;
            let state =
                decode_checkpoint(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "resuming from {} (epoch {}/{}, instance {})",
                path.display(),
                state.epoch(),
                state.total_epochs(),
                state.pos()
            );
            Some(state)
        }
    };
    let save_dir = checkpoint_dir.or(resume_dir);
    let mut save_error: Option<String> = None;
    let save = |state: &pigeon::crf::TrainState, error: &mut Option<String>| {
        let dir = save_dir.expect("checkpointing paths require a directory");
        let path = checkpoint_path(dir);
        let result = std::fs::create_dir_all(dir)
            .map_err(|e| format!("{dir}: {e}"))
            .and_then(|()| {
                std::fs::write(&path, encode_checkpoint(state))
                    .map_err(|e| format!("{}: {e}", path.display()))
            });
        if let Err(e) = result {
            // Keep training; a full disk must not kill the run, but the
            // user needs to know resume is not covered up to here.
            eprintln!("warning: checkpoint not saved: {e}");
            *error = Some(e);
        } else {
            *error = None;
        }
    };
    if save_dir.is_some() {
        install_train_interrupt_handler();
    }
    let mut on_checkpoint = |state: &pigeon::crf::TrainState| save(state, &mut save_error);
    let interrupt = || TRAIN_INTERRUPT.load(Ordering::SeqCst);
    let control = TrainControl {
        resume,
        checkpoint_every,
        on_checkpoint: Some(&mut on_checkpoint),
        interrupt: Some(&interrupt),
    };
    let run = Pigeon::train_namer_resumable(language, target, &refs, &config, control)
        .map_err(|e| e.to_string())?;
    match run {
        TrainRun::Completed(model) => {
            let json = model.to_json().map_err(|e| e.to_string())?;
            std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
            // A stale snapshot would silently resume a finished run.
            if let Some(dir) = save_dir {
                let _ = std::fs::remove_file(checkpoint_path(dir));
            }
            observability.finish()?;
            println!("trained on {} files; model saved to {out}", refs.len());
            Ok(())
        }
        TrainRun::Interrupted(state) => {
            let dir = save_dir
                .ok_or("interrupted, but no --checkpoint-dir or --resume directory to save to")?;
            let mut error = None;
            save(&state, &mut error);
            if let Some(e) = error {
                return Err(format!("interrupted, and the final checkpoint failed: {e}"));
            }
            observability.finish()?;
            println!(
                "interrupted at epoch {}/{} (instance {}); checkpoint saved to {} — \
                 resume with `pigeon train --resume {dir}` and the same corpus and flags",
                state.epoch(),
                state.total_epochs(),
                state.pos(),
                checkpoint_path(dir).display()
            );
            Ok(())
        }
    }
}

const MERGE_FLAGS: &[FlagSpec] = &[
    (
        "out",
        "where to write the finished model (MODEL.json or MODEL.pgnc)",
    ),
    (
        "quantize",
        "artifact weight quantization: f32 (default) | f16 | i8",
    ),
    (
        "trace-out",
        "write a Chrome trace-event JSON timeline to FILE",
    ),
    (
        "timings",
        "print a per-phase wall-time table to stderr (true|false)",
    ),
];

fn cmd_merge(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "merge",
            "combine shard partials into a finished model",
            "PART.pgnc...",
            MERGE_FLAGS,
        );
        return Ok(());
    }
    // `-o` was the original short form for the merge output; it still
    // works for one release while every command standardises on --out.
    let args: Vec<String> = args
        .iter()
        .map(|a| {
            if a == "-o" {
                eprintln!("warning: `pigeon merge -o` is deprecated; use --out");
                "--out".into()
            } else {
                a.clone()
            }
        })
        .collect();
    let (flags, positional) = parse_flags(&args)?;
    check_flags("merge", &flags, MERGE_FLAGS)?;
    let out = flag(&flags, "out").ok_or("--out is required (MODEL.json or MODEL.pgnc)")?;
    if positional.is_empty() {
        return Err(
            "provide partial files (written by `pigeon train --shard I/N --emit-partial`)".into(),
        );
    }
    let quant = match flag(&flags, "quantize") {
        None => Quant::F32,
        Some(name) => {
            Quant::from_name(name).ok_or_else(|| format!("unknown quantization `{name}`"))?
        }
    };
    let observability = Observability::from_flags(&flags)?;
    let parts: Vec<Vec<u8>> = positional
        .iter()
        .map(|p| read_bytes(p))
        .collect::<Result<_, _>>()?;
    let model = Pigeon::from_partials(&parts).map_err(|e| e.to_string())?;
    if out.ends_with(".pgnc") {
        let bytes = model.to_artifact(quant).map_err(|e| e.to_string())?;
        std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    } else {
        let json = model.to_json().map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
    }
    observability.finish()?;
    println!(
        "merged {} partials; finished model saved to {out}",
        parts.len()
    );
    Ok(())
}

const COMPILE_FLAGS: &[FlagSpec] = &[
    ("out", "where to write the compiled artifact (OUT.pgnc)"),
    ("quantize", "weight quantization: f32 (default) | f16 | i8"),
];

fn cmd_compile(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "compile",
            "freeze a model into the compiled binary artifact",
            "MODEL.json",
            COMPILE_FLAGS,
        );
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("compile", &flags, COMPILE_FLAGS)?;
    // The standard spelling is `--out OUT.pgnc MODEL.json`; the original
    // two-positional form still works for one release.
    let (input, output) = match (flag(&flags, "out"), positional.as_slice()) {
        (Some(out), [input]) => (input.as_str(), out),
        (None, [input, output]) => {
            eprintln!(
                "warning: `pigeon compile MODEL OUT` with a positional output is \
                 deprecated; use --out OUT.pgnc"
            );
            (input.as_str(), output.as_str())
        }
        (Some(_), rest) => {
            return Err(format!(
                "--out takes exactly one MODEL positional, got {}",
                rest.len()
            ));
        }
        (None, _) => return Err("expected `pigeon compile --out OUT.pgnc MODEL.json`".into()),
    };
    let quant = match flag(&flags, "quantize") {
        None => Quant::F32,
        Some(name) => {
            Quant::from_name(name).ok_or_else(|| format!("unknown quantization `{name}`"))?
        }
    };
    // Load through the sniffing path so recompiling an artifact (e.g.
    // to change quantization) works just like compiling JSON.
    let model = load_model(input)?;
    let bytes = model.to_artifact(quant).map_err(|e| e.to_string())?;
    std::fs::write(output, &bytes).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "compiled {input} → {output} ({} bytes, {} quantization)",
        bytes.len(),
        quant.name()
    );
    Ok(())
}

const PREDICT_FLAGS: &[FlagSpec] = &[
    (
        "model",
        "trained model to load, JSON or compiled .pgnc (sniffed by magic)",
    ),
    (
        "trace-out",
        "write a Chrome trace-event JSON timeline to FILE",
    ),
    (
        "timings",
        "print a per-phase wall-time table to stderr (true|false)",
    ),
];

fn cmd_predict(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "predict",
            "suggest names for a file's elements",
            "FILE",
            PREDICT_FLAGS,
        );
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("predict", &flags, PREDICT_FLAGS)?;
    let model_path = flag(&flags, "model").ok_or("--model is required")?;
    let [file] = positional.as_slice() else {
        return Err("expected exactly one FILE".into());
    };
    let observability = Observability::from_flags(&flags)?;
    let model = load_model(model_path)?;
    let source = read_file(file)?;
    let predictions = model.predict(&source).map_err(|e| e.to_string())?;
    observability.finish()?;
    if predictions.is_empty() {
        println!("no predictable elements found");
        return Ok(());
    }
    for p in predictions {
        let top: Vec<&str> = p
            .candidates
            .iter()
            .take(5)
            .map(|(n, _)| n.as_str())
            .collect();
        println!(
            "{:<16} → {:<16} (top: {})",
            p.current_name,
            p.predicted_name,
            top.join(", ")
        );
    }
    Ok(())
}

const SERVE_FLAGS: &[FlagSpec] = &[
    (
        "model",
        "trained model to serve, JSON or compiled .pgnc (sniffed by magic)",
    ),
    ("host", "interface to bind (default 127.0.0.1)"),
    (
        "port",
        "port to bind; 0 = ephemeral, printed on startup (default 7470)",
    ),
    ("jobs", "worker threads; 0 = one per core"),
    ("max-request-bytes", "largest accepted request body"),
    ("read-timeout-ms", "per-connection socket read timeout"),
    (
        "idle-timeout",
        "exit after SECS without a request; 0 = serve forever",
    ),
    (
        "keep-alive",
        "honor HTTP/1.1 persistent connections (default true)",
    ),
    (
        "max-conn-requests",
        "requests served per connection before close (default 1000)",
    ),
    (
        "batch-max",
        "largest micro-batch handed to predict_batch (default 16)",
    ),
    (
        "batch-wait-ms",
        "how long the batcher waits for companion requests (default 2)",
    ),
    (
        "queue-cap",
        "queued predicts before the server answers 429 (default 256)",
    ),
    (
        "cache-dir",
        "partial cache directory; arms the distributed-training routes",
    ),
    (
        "lease-timeout-ms",
        "base shard-lease duration before reassignment (default 60000)",
    ),
];

/// Builds a [`ServeConfig`] from the flag set `serve` and `coordinate`
/// share — the two commands differ only in whether a model is loaded.
fn serve_config(flags: &Flags) -> Result<ServeConfig, String> {
    let defaults = ServeConfig::default();
    let port = parse_usize(flags, "port", defaults.port as usize)?;
    let port =
        u16::try_from(port).map_err(|_| format!("--port expects 0..=65535, got `{port}`"))?;
    let idle_secs = parse_usize(flags, "idle-timeout", 0)?;
    Ok(ServeConfig {
        host: flag(flags, "host").unwrap_or(&defaults.host).to_owned(),
        port,
        workers: parse_usize(flags, "jobs", defaults.workers)?,
        max_request_bytes: parse_usize(flags, "max-request-bytes", defaults.max_request_bytes)?,
        read_timeout: Duration::from_millis(parse_usize(
            flags,
            "read-timeout-ms",
            defaults.read_timeout.as_millis() as usize,
        )? as u64),
        idle_timeout: (idle_secs > 0).then(|| Duration::from_secs(idle_secs as u64)),
        keep_alive: parse_bool(flags, "keep-alive", defaults.keep_alive)?,
        max_conn_requests: parse_usize(flags, "max-conn-requests", defaults.max_conn_requests)?,
        batch_max: parse_usize(flags, "batch-max", defaults.batch_max)?,
        batch_wait: Duration::from_millis(parse_usize(
            flags,
            "batch-wait-ms",
            defaults.batch_wait.as_millis() as usize,
        )? as u64),
        queue_cap: parse_usize(flags, "queue-cap", defaults.queue_cap)?,
        cache_dir: flag(flags, "cache-dir").map(str::to_owned),
        lease_timeout: Duration::from_millis(parse_usize(
            flags,
            "lease-timeout-ms",
            defaults.lease_timeout.as_millis() as usize,
        )? as u64),
    })
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help("serve", "HTTP prediction server (v1 API)", "", SERVE_FLAGS);
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("serve", &flags, SERVE_FLAGS)?;
    if !positional.is_empty() {
        return Err(format!(
            "serve takes no positional arguments, got `{}`",
            positional[0]
        ));
    }
    let model_path = flag(&flags, "model").ok_or("--model is required")?;
    let model = load_model(model_path)?;
    serve(model, &serve_config(&flags)?)
}

const COORDINATE_FLAGS: &[FlagSpec] = &[
    (
        "cache-dir",
        "content-addressed partial cache directory (required)",
    ),
    ("host", "interface to bind (default 127.0.0.1)"),
    (
        "port",
        "port to bind; 0 = ephemeral, printed on startup (default 7470)",
    ),
    (
        "lease-timeout-ms",
        "base shard-lease duration before reassignment (default 60000)",
    ),
    (
        "idle-timeout",
        "exit after SECS without a request; 0 = serve forever",
    ),
    (
        "max-request-bytes",
        "largest accepted partial upload (default 64 MiB)",
    ),
    ("read-timeout-ms", "per-connection socket read timeout"),
    (
        "keep-alive",
        "honor HTTP/1.1 persistent connections (default true)",
    ),
    (
        "max-conn-requests",
        "requests served per connection before close (default 1000)",
    ),
];

fn cmd_coordinate(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "coordinate",
            "model-less distributed-training coordinator",
            "",
            COORDINATE_FLAGS,
        );
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("coordinate", &flags, COORDINATE_FLAGS)?;
    if !positional.is_empty() {
        return Err(format!(
            "coordinate takes no positional arguments, got `{}`",
            positional[0]
        ));
    }
    if flag(&flags, "cache-dir").is_none() {
        return Err("--cache-dir is required (the content-addressed partial cache)".into());
    }
    let mut config = serve_config(&flags)?;
    // Partial uploads are far larger than predict bodies; give the
    // coordinator a roomier default body bound.
    if flag(&flags, "max-request-bytes").is_none() {
        config.max_request_bytes = 64 << 20;
    }
    coordinate(&config)
}

const WORK_FLAGS: &[FlagSpec] = &[
    (
        "coordinator",
        "coordinator base URL, e.g. http://127.0.0.1:7470 (required)",
    ),
    (
        "worker",
        "worker name reported on leases (default worker-<pid>)",
    ),
    (
        "poll-ms",
        "delay between lease polls while waiting (default 500)",
    ),
    (
        "throttle-ms",
        "artificial delay before each upload (straggler injection; default 0)",
    ),
    ("jobs", "extraction worker threads; 0 = all cores"),
    (
        "exit-when-idle",
        "exit once the coordinator has no work (default true)",
    ),
];

fn cmd_work(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help("work", "distributed-training worker loop", "", WORK_FLAGS);
        return Ok(());
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("work", &flags, WORK_FLAGS)?;
    if !positional.is_empty() {
        return Err(format!(
            "work takes no positional arguments, got `{}`",
            positional[0]
        ));
    }
    let coordinator = flag(&flags, "coordinator")
        .ok_or("--coordinator is required (e.g. http://127.0.0.1:7470)")?;
    let options = WorkerOptions {
        coordinator: coordinator.to_owned(),
        name: flag(&flags, "worker")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("worker-{}", std::process::id())),
        poll: Duration::from_millis(parse_usize(&flags, "poll-ms", 500)? as u64),
        throttle: Duration::from_millis(parse_usize(&flags, "throttle-ms", 0)? as u64),
        jobs: parse_usize(&flags, "jobs", 0)?,
        exit_when_idle: parse_bool(&flags, "exit-when-idle", true)?,
    };
    run_worker(&options)
}

const EXPERIMENT_FLAGS: &[FlagSpec] = &[
    ("language", "source language: js | java | python | csharp"),
    ("files", "synthetic corpus size (default 400)"),
    ("task", "prediction target: vars (default) | methods"),
    ("jobs", "worker threads; 0 = all cores (default 1)"),
    (
        "max-length",
        "override the per-language tuned path length limit",
    ),
    (
        "max-width",
        "override the per-language tuned path width limit",
    ),
    (
        "dataflow-contexts",
        "also extract edge-typed data-flow path-contexts (default false)",
    ),
    (
        "trace-out",
        "write a Chrome trace-event JSON timeline to FILE",
    ),
    (
        "timings",
        "print a per-phase wall-time table to stderr (true|false)",
    ),
];

fn cmd_experiment(args: &[String]) -> Result<(), String> {
    if help_requested(args) {
        print_command_help(
            "experiment",
            "train + evaluate on a synthetic corpus",
            "",
            EXPERIMENT_FLAGS,
        );
        return Ok(());
    }
    let (flags, _) = parse_flags(args)?;
    check_flags("experiment", &flags, EXPERIMENT_FLAGS)?;
    let language = required_language(&flags)?;
    let files = parse_usize(&flags, "files", 400)?;
    let task = flag(&flags, "task").unwrap_or("vars");
    let mut exp = match task {
        "vars" => NameExperiment::var_names(language),
        "methods" => NameExperiment::method_names(language),
        other => return Err(format!("unknown task `{other}` (vars|methods)")),
    };
    exp.corpus = exp.corpus.with_files(files);
    exp.jobs = parse_usize(&flags, "jobs", 1)?;
    // Override the per-language tuned limits only when asked — that is
    // how the equal-context-budget comparison (data-flow paths vs
    // longer AST paths) is run.
    let max_length = parse_usize(&flags, "max-length", exp.extraction.max_length)?;
    let max_width = parse_usize(&flags, "max-width", exp.extraction.max_width)?;
    if (max_length, max_width) != (exp.extraction.max_length, exp.extraction.max_width) {
        let semi = exp.extraction.semi_paths;
        exp.extraction = ExtractionConfig::with_limits(max_length, max_width).semi_paths(semi);
    }
    if parse_bool(&flags, "dataflow-contexts", false)? {
        exp = exp.with_dataflow(pigeon::dataflow_edge_features);
    }
    let observability = Observability::from_flags(&flags)?;
    let out = run_name_experiment(&exp);
    observability.finish()?;
    println!(
        "{language} {task}: accuracy {:.1}%  top-{} {:.1}%  F1 {:.1}  ({} predictions, {} features, trained in {:.1}s)",
        100.0 * out.accuracy,
        exp.top_k,
        100.0 * out.topk_accuracy,
        100.0 * out.f1,
        out.n_test,
        out.n_features,
        out.train_secs,
    );
    Ok(())
}

/// Prints the stable diagnostic-code catalog (`pigeon audit
/// --list-codes true`). The JSON form carries the same `pigeon-audit/1`
/// schema tag as audit reports and is byte-stable: the catalog is
/// sorted by code and the serde shim's object keys are ordered.
fn print_code_catalog(format: &str) {
    let catalog = pigeon::analysis::code_catalog();
    if format == "json" {
        let codes: Vec<serde_json::Value> = catalog
            .iter()
            .map(|&(code, description)| {
                serde_json::json!({ "code": code, "description": description })
            })
            .collect();
        let value = serde_json::json!({
            "schema": "pigeon-audit/1",
            "codes": serde_json::Value::Array(codes),
        });
        println!(
            "{}",
            serde_json::to_string(&value).expect("code catalog serializes")
        );
    } else {
        let width = catalog.iter().map(|&(c, _)| c.len()).max().unwrap_or(0);
        for (code, description) in catalog {
            println!("{code:width$}  {description}");
        }
    }
}

/// Expands `paths` into audit units: files are taken as-is, directories
/// are walked (non-recursively) for the language's extension, sorted by
/// name so the report is stable.
fn collect_audit_units(language: Language, paths: &[String]) -> Result<Vec<SourceUnit>, String> {
    let ext = language_ext(language);
    let mut units = Vec::new();
    for path in paths {
        let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
        if meta.is_dir() {
            let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("{path}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == ext))
                .collect();
            files.sort();
            for file in files {
                let name = file.display().to_string();
                units.push(SourceUnit {
                    source: read_file(&name)?,
                    name,
                });
            }
        } else {
            units.push(SourceUnit {
                name: path.clone(),
                source: read_file(path)?,
            });
        }
    }
    Ok(units)
}

const AUDIT_FLAGS: &[FlagSpec] = &[
    (
        "language",
        "source language for PATHs: js | java | python | csharp",
    ),
    (
        "model",
        "model, partial or checkpoint to audit (kind sniffed from the container)",
    ),
    (
        "format",
        "report format: text (default) | json (schema pigeon-audit/1)",
    ),
    (
        "deny",
        "fail (exit 2) at or above this severity: info | warning | error (default)",
    ),
    (
        "jobs",
        "worker threads; 0 = all cores (output is byte-identical for any value)",
    ),
    (
        "near-dups",
        "run the O(files²) MinHash near-duplicate scan (default true)",
    ),
    (
        "list-codes",
        "print the diagnostic-code catalog and exit (true)",
    ),
];

fn cmd_audit(args: &[String]) -> Result<ExitCode, String> {
    if help_requested(args) {
        print_command_help(
            "audit",
            "static-analysis audit over sources and models",
            "[PATH...]",
            AUDIT_FLAGS,
        );
        return Ok(ExitCode::SUCCESS);
    }
    let (flags, positional) = parse_flags(args)?;
    check_flags("audit", &flags, AUDIT_FLAGS)?;
    let format = flag(&flags, "format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("--format expects text or json, got `{format}`"));
    }
    if parse_bool(&flags, "list-codes", false)? {
        print_code_catalog(format);
        return Ok(ExitCode::SUCCESS);
    }
    let deny = match flag(&flags, "deny") {
        None => Severity::Error,
        Some(name) => Severity::from_name(name)
            .ok_or_else(|| format!("--deny expects info, warning or error, got `{name}`"))?,
    };
    let jobs = parse_usize(&flags, "jobs", 0)?;
    let near_dups = match flag(&flags, "near-dups") {
        None | Some("true") => true,
        Some("false") => false,
        Some(v) => return Err(format!("--near-dups expects true or false, got `{v}`")),
    };
    let model_path = flag(&flags, "model");
    if positional.is_empty() && model_path.is_none() {
        return Err("provide source PATHs (with --language) and/or --model MODEL.json".into());
    }

    let mut report = pigeon::analysis::Report::default();
    if !positional.is_empty() {
        let language = required_language(&flags)?;
        let units = collect_audit_units(language, &positional)?;
        report = audit_sources(
            language,
            &units,
            &AuditConfig {
                jobs,
                near_dups,
                ..AuditConfig::default()
            },
        );
    }
    if let Some(path) = model_path {
        report.units_audited += 1;
        let bytes = read_bytes(path)?;
        if container_kind(&bytes) == Some(KIND_PARTIAL) {
            // Partial statistics file: full container + content decode,
            // then cross-check each document's stored count maps
            // against its instance.
            match decode_partial(&bytes) {
                Err(e) => report.diagnostics.push(pigeon::analysis::Diagnostic::new(
                    "partial-load",
                    Severity::Error,
                    path,
                    e,
                )),
                Ok(partial) => {
                    for doc in &partial.docs {
                        if let Err(e) = verify_doc_stats(doc) {
                            report.diagnostics.push(pigeon::analysis::Diagnostic::new(
                                "partial-stats",
                                Severity::Error,
                                path,
                                e,
                            ));
                        }
                    }
                    report.diagnostics.push(pigeon::analysis::Diagnostic::new(
                        "partial-info",
                        Severity::Info,
                        path,
                        format!(
                            "shard {}/{} with {} of {} documents; statistics cross-check ran",
                            partial.meta.shard_index,
                            partial.meta.shard_count,
                            partial.docs.len(),
                            partial.meta.total_docs
                        ),
                    ));
                }
            }
        } else if container_kind(&bytes) == Some(KIND_CHECKPOINT) {
            // SGD checkpoint: the decoder validates the container, the
            // shuffle permutation, weight/sum sort order and finiteness.
            match decode_checkpoint(&bytes) {
                Err(e) => report.diagnostics.push(pigeon::analysis::Diagnostic::new(
                    "checkpoint-load",
                    Severity::Error,
                    path,
                    e,
                )),
                Ok(state) => report.diagnostics.push(pigeon::analysis::Diagnostic::new(
                    "checkpoint-info",
                    Severity::Info,
                    path,
                    format!(
                        "valid checkpoint at epoch {}/{} (instance {})",
                        state.epoch(),
                        state.total_epochs(),
                        state.pos()
                    ),
                )),
            }
        } else if is_artifact(&bytes) {
            // Compiled artifact: the decoder enforces container
            // integrity (magic, checksums, section bounds, id ranges);
            // lint_artifact surfaces violations as diagnostics and
            // runs the usual model-health lints on a clean decode.
            report.diagnostics.extend(lint_artifact(path, &bytes));
        } else {
            match String::from_utf8(bytes)
                .map_err(|e| e.to_string())
                .and_then(|json| Pigeon::from_json(&json).map_err(|e| e.to_string()))
            {
                Err(e) => report.diagnostics.push(pigeon::analysis::Diagnostic::new(
                    "model-load",
                    Severity::Error,
                    path,
                    e,
                )),
                Ok(model) => {
                    let language = model.language();
                    report.diagnostics.extend(
                        lint_crf(
                            path,
                            model.crf_model(),
                            model.vocabs().features.len(),
                            model.vocabs().labels.len(),
                        )
                        .into_iter()
                        .map(|d| d.with_language(language)),
                    );
                }
            }
        }
    }

    match format {
        "json" => println!("{}", report.render_json()),
        _ => print!("{}", report.render_text()),
    }
    Ok(if report.denied_count(deny) > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_splits_flags_and_positionals() {
        let (flags, pos) = parse_flags(&args(&["--language", "js", "a.js", "b.js"])).unwrap();
        assert_eq!(flags, [("language".to_owned(), "js".to_owned())]);
        assert_eq!(pos, ["a.js", "b.js"]);
    }

    #[test]
    fn parse_flags_accepts_equals_syntax() {
        let (flags, pos) = parse_flags(&args(&["--jobs=4", "--keep-prob=0.5", "f.js"])).unwrap();
        assert_eq!(
            flags,
            [
                ("jobs".to_owned(), "4".to_owned()),
                ("keep-prob".to_owned(), "0.5".to_owned()),
            ]
        );
        assert_eq!(pos, ["f.js"]);
    }

    #[test]
    fn parse_flags_equals_value_may_start_with_dashes() {
        let (flags, _) = parse_flags(&args(&["--out=--weird.json"])).unwrap();
        assert_eq!(flags, [("out".to_owned(), "--weird.json".to_owned())]);
    }

    #[test]
    fn parse_flags_rejects_flag_shaped_value() {
        let err = parse_flags(&args(&["--out", "--language", "js"])).unwrap_err();
        assert!(err.contains("--out needs a value"), "{err}");
        assert!(err.contains("--language"), "{err}");
    }

    #[test]
    fn parse_flags_rejects_trailing_flag() {
        let err = parse_flags(&args(&["--language", "js", "--out"])).unwrap_err();
        assert!(err.contains("--out needs a value"), "{err}");
    }

    #[test]
    fn train_config_validates_keep_prob() {
        let flags = vec![("keep-prob".to_owned(), "1.5".to_owned())];
        let err = train_config(&flags).unwrap_err();
        assert!(err.contains("keep_prob"), "{err}");
        assert!(err.contains("(0, 1]"), "{err}");
    }

    #[test]
    fn train_config_rejects_zero_max_length() {
        let flags = vec![("max-length".to_owned(), "0".to_owned())];
        let err = train_config(&flags).unwrap_err();
        assert!(err.contains("max_length"), "{err}");
    }

    #[test]
    fn parse_bool_accepts_true_false_only() {
        assert!(parse_bool(&[], "timings", false).is_ok_and(|b| !b));
        let flags = vec![("timings".to_owned(), "true".to_owned())];
        assert!(parse_bool(&flags, "timings", false).unwrap());
        let flags = vec![("timings".to_owned(), "yes".to_owned())];
        assert!(parse_bool(&flags, "timings", false).is_err());
    }

    #[test]
    fn last_occurrence_of_a_flag_wins() {
        let (flags, _) = parse_flags(&args(&["--jobs", "2", "--jobs", "8"])).unwrap();
        assert_eq!(flag(&flags, "jobs"), Some("8"));
    }
}
