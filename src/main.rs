//! The `pigeon` command-line tool: extract AST paths, generate corpora,
//! train name predictors, and query them — the workflow of the paper's
//! PIGEON tool as a CLI.
//!
//! ```text
//! pigeon paths    --language js FILE              # print path-contexts
//! pigeon generate --language js --files N DIR     # write a corpus
//! pigeon train    --language js --out model.json FILE...
//! pigeon predict  --model model.json FILE         # suggest names
//! pigeon experiment --language js [--files N]     # quick accuracy run
//! ```

use pigeon::core::{extract, Abstraction, ExtractionConfig};
use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::eval::{run_name_experiment, NameExperiment};
use pigeon::{Pigeon, PigeonConfig};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("paths") => cmd_paths(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `pigeon help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
pigeon — a general path-based representation for predicting program properties

USAGE:
  pigeon paths      --language LANG [--max-length N] [--max-width N]
                    [--abstraction LEVEL] FILE
  pigeon generate   --language LANG [--files N] [--seed N] DIR
  pigeon train      --language LANG --out MODEL.json [--task vars|methods]
                    [--synthetic N | FILE...]
  pigeon predict    --model MODEL.json FILE
  pigeon experiment --language LANG [--files N] [--task vars|methods]

LANG: js | java | python | csharp
LEVEL: full | no-arrows | forget-order | first-top-last | first-last | top | no-path
";

/// A parsed `--name value` flag list.
type Flags = Vec<(String, String)>;

/// Minimal flag parser: returns (flags, positionals).
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_owned(), value.clone()));
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn required_language(flags: &[(String, String)]) -> Result<Language, String> {
    let name = flag(flags, "language").ok_or("--language is required")?;
    Language::from_name(name).ok_or_else(|| format!("unknown language `{name}`"))
}

fn parse_usize(flags: &[(String, String)], name: &str, default: usize) -> Result<usize, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_paths(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let language = required_language(&flags)?;
    let [file] = positional.as_slice() else {
        return Err("expected exactly one FILE".into());
    };
    let max_length = parse_usize(&flags, "max-length", 7)?;
    let max_width = parse_usize(&flags, "max-width", 3)?;
    let abstraction = match flag(&flags, "abstraction") {
        None => Abstraction::Full,
        Some(name) => Abstraction::from_name(name)
            .ok_or_else(|| format!("unknown abstraction `{name}`"))?,
    };
    let source = read_file(file)?;
    let ast = language.parse(&source)?;
    let contexts = extract(&ast, &ExtractionConfig::with_limits(max_length, max_width));
    println!(
        "{} path-contexts (max_length {max_length}, max_width {max_width}, α = {abstraction}):",
        contexts.len()
    );
    for ctx in &contexts {
        println!(
            "⟨{}, {}, {}⟩",
            ctx.start,
            abstraction.apply(&ctx.path),
            ctx.end
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let language = required_language(&flags)?;
    let [dir] = positional.as_slice() else {
        return Err("expected exactly one output DIR".into());
    };
    let files = parse_usize(&flags, "files", 100)?;
    let seed = parse_usize(&flags, "seed", 0x9147_00D5)? as u64;
    let corpus = generate(
        language,
        &CorpusConfig::default().with_files(files).with_seed(seed),
    );
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let ext = match language {
        Language::JavaScript => "js",
        Language::Java => "java",
        Language::Python => "py",
        Language::CSharp => "cs",
    };
    for (i, doc) in corpus.docs.iter().enumerate() {
        let path = Path::new(dir).join(format!("doc{i:05}.{ext}"));
        std::fs::write(&path, &doc.source).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let stats = corpus.stats();
    println!(
        "wrote {} files ({:.1} KB, {} functions) to {dir}",
        stats.files,
        stats.bytes as f64 / 1024.0,
        stats.functions
    );
    Ok(())
}

fn train_config(flags: &[(String, String)]) -> Result<PigeonConfig, String> {
    let mut config = PigeonConfig::default();
    config.extraction.max_length = parse_usize(flags, "max-length", 4)?;
    config.extraction.max_width = parse_usize(flags, "max-width", 3)?;
    Ok(config)
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let language = required_language(&flags)?;
    let out = flag(&flags, "out").ok_or("--out is required")?;
    let task = flag(&flags, "task").unwrap_or("vars");
    let config = train_config(&flags)?;

    let sources: Vec<String> = if let Some(n) = flag(&flags, "synthetic") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--synthetic expects a number, got `{n}`"))?;
        generate(language, &CorpusConfig::default().with_files(n))
            .docs
            .into_iter()
            .map(|d| d.source)
            .collect()
    } else if positional.is_empty() {
        return Err("provide training FILEs or --synthetic N".into());
    } else {
        positional
            .iter()
            .map(|p| read_file(p))
            .collect::<Result<_, _>>()?
    };
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let model = match task {
        "vars" => Pigeon::train_variable_namer(language, &refs, &config),
        "methods" => Pigeon::train_method_namer(language, &refs, &config),
        other => return Err(format!("unknown task `{other}` (vars|methods)")),
    }
    .map_err(|e| e.to_string())?;
    let json = model.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
    println!("trained on {} files; model saved to {out}", refs.len());
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let model_path = flag(&flags, "model").ok_or("--model is required")?;
    let [file] = positional.as_slice() else {
        return Err("expected exactly one FILE".into());
    };
    let model = Pigeon::from_json(&read_file(model_path)?).map_err(|e| e.to_string())?;
    let source = read_file(file)?;
    let predictions = model.predict(&source).map_err(|e| e.to_string())?;
    if predictions.is_empty() {
        println!("no predictable elements found");
        return Ok(());
    }
    for p in predictions {
        let top: Vec<&str> = p
            .candidates
            .iter()
            .take(5)
            .map(|(n, _)| n.as_str())
            .collect();
        println!(
            "{:<16} → {:<16} (top: {})",
            p.current_name,
            p.predicted_name,
            top.join(", ")
        );
    }
    Ok(())
}

fn cmd_experiment(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let language = required_language(&flags)?;
    let files = parse_usize(&flags, "files", 400)?;
    let task = flag(&flags, "task").unwrap_or("vars");
    let mut exp = match task {
        "vars" => NameExperiment::var_names(language),
        "methods" => NameExperiment::method_names(language),
        other => return Err(format!("unknown task `{other}` (vars|methods)")),
    };
    exp.corpus = exp.corpus.with_files(files);
    let out = run_name_experiment(&exp);
    println!(
        "{language} {task}: accuracy {:.1}%  top-{} {:.1}%  F1 {:.1}  ({} predictions, {} features, trained in {:.1}s)",
        100.0 * out.accuracy,
        exp.top_k,
        100.0 * out.topk_accuracy,
        100.0 * out.f1,
        out.n_test,
        out.n_features,
        out.train_secs,
    );
    Ok(())
}
