//! Offline stand-in for the `serde_json` crate: a compact JSON printer
//! and a recursive-descent parser over the shim `serde` data model.
//!
//! Output mirrors real `serde_json` compact form: no whitespace,
//! object keys in `BTreeMap` (sorted) order, floats printed with Rust's
//! shortest round-trip formatting, non-finite floats as `null`.

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reads a typed value back out of a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match the expected shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors the real
/// `serde_json` signature so call sites propagate errors identically.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses a JSON document into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    T::from_value(&value)
}

/// Builds a [`Value`] with JSON-like syntax: `json!({"k": v, ...})`,
/// `json!([a, b])`, `json!(null)` or `json!(expr)` for any
/// `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$elem)),*])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $(map.insert(($key).to_string(), $crate::to_value(&$val));)*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) if v.is_finite() => {
            // Rust's `{}` prints the shortest string that parses back to
            // the same f64, so the value round-trips exactly.
            let _ = write!(out, "{v}");
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::custom(format!("{message} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("lone surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid surrogate pair"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the source.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.error("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2,3],"b":{"c":"x","d":false},"e":null}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nwith \"quotes\" \\ tabs\t and unicode \u{263A}";
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escape_parses() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456.789, -0.25] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
        for f in [0.1f32, 2.0 / 3.0, 1.5e-30] {
            let json = to_string(&f).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn tuples_serialise_as_arrays() {
        let entry = (1u32, 2u32, 3u32, 0.5f32);
        let json = to_string(&vec![entry]).unwrap();
        assert_eq!(json, "[[1,2,3,0.5]]");
        let back: Vec<(u32, u32, u32, f32)> = from_str(&json).unwrap();
        assert_eq!(back, vec![entry]);
    }

    #[test]
    fn malformed_input_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "nul",
            "01x",
            "[1] junk",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({
            "name": "pigeon",
            "count": 3usize,
            "ok": true,
            "items": vec!["a".to_string(), "b".to_string()],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"count":3,"items":["a","b"],"name":"pigeon","ok":true}"#
        );
    }
}
