//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors this minimal replacement. It is JSON-only: instead of
//! serde's visitor architecture, [`Serialize`] converts a value into
//! the [`Value`] tree and [`Deserialize`] reads one back out. The
//! companion `serde_json` shim supplies the text encoding.
//!
//! There is no derive macro (that would need a proc-macro crate, which
//! is just more vendored code to maintain); the two structs in this
//! workspace that previously derived the traits implement them by hand.

use std::collections::BTreeMap;
use std::fmt;

/// The JSON data model: every serialisable value maps into this tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// JSON object storage. A `BTreeMap` keeps key order deterministic
/// (sorted), like the default `serde_json` configuration.
pub type Map = BTreeMap<String, Value>;

/// A JSON number, kept in the widest lossless representation seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// Anything with a fractional part or beyond 64-bit integer range.
    Float(f64),
}

impl Value {
    /// Looks up `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content, when `self` is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, when `self` is a JSON boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// The element list, when `self` is a JSON array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, when `self` is a JSON object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable lookup of `key` when `self` is an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(map) => map.get_mut(key),
            _ => None,
        }
    }

    /// The mutable element list, when `self` is a JSON array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The mutable key/value map, when `self` is a JSON object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Serialisation / deserialisation failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error carrying `message`.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Builds the [`Value`] tree for `self`.
    fn to_value(&self) -> Value;
}

/// Conversion out of the JSON data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 widening is exact, so the round trip back through
        // `as f32` in `Deserialize` recovers the original bits.
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($len:literal: $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array"))?;
                if items.len() != $len {
                    return Err(Error::custom(concat!(
                        "expected array of length ",
                        stringify!($len)
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_serde_tuple!(1: A.0);
impl_serde_tuple!(2: A.0, B.1);
impl_serde_tuple!(3: A.0, B.1, C.2);
impl_serde_tuple!(4: A.0, B.1, C.2, D.3);
impl_serde_tuple!(5: A.0, B.1, C.2, D.3, E.4);
impl_serde_tuple!(6: A.0, B.1, C.2, D.3, E.4, F.5);
