//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`] — over a
//! simple wall-clock harness: warm up, pick an iteration count that
//! makes one sample take a measurable slice of time, collect
//! `sample_size` samples, report min/median/mean per iteration.
//! No statistical regression analysis, plots or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` should balance setup cost against batch size.
/// The shim always runs one setup per measured call, so the variants
/// only exist for signature compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    MediumInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    /// Optional substring filter taken from the command line, matching
    /// `cargo bench -- <filter>` behaviour.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`] or [`Bencher::iter_batched`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &mut bencher.samples);
        self
    }
}

/// Prints a criterion-style one-line summary from per-iteration times.
fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}] (min median mean, {} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures on behalf of one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

/// Per-sample time budget: long enough to swamp timer overhead, short
/// enough that a full group finishes in seconds.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

impl Bencher {
    /// Measures `routine` repeatedly and records per-iteration times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find how many iterations fill the
        // per-sample budget.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < SAMPLE_BUDGET {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / calibration_iters as f64;
        let iters_per_sample = (SAMPLE_BUDGET.as_nanos() as f64 / per_iter).max(1.0) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Like [`Bencher::iter`], but re-creates the routine's input with
    /// `setup` outside the timed region of every call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate (timing only the routine, never the setup).
        let mut spent = Duration::ZERO;
        let mut calibration_iters = 0u64;
        while spent < SAMPLE_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            calibration_iters += 1;
        }
        let per_iter = spent.as_nanos() as f64 / calibration_iters as f64;
        let iters_per_sample = (SAMPLE_BUDGET.as_nanos() as f64 / per_iter).max(1.0) as u64;
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                sample += t.elapsed();
            }
            self.samples
                .push(sample.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target, ...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
