//! Test-loop configuration and failure plumbing.

use std::fmt;

/// The generator driving all strategies.
pub type TestRng = rand::SmallRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (from `prop_assert*` or an explicit `fail`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias for [`TestCaseError::fail`], mirroring real proptest's
    /// `Reject`/`Fail` split without modelling rejection.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Seeds the per-test generator from the test's name, so every run of
/// a given test sees the same case stream (reproducible CI) while
/// different tests see different streams.
pub fn rng_for_test(name: &str) -> TestRng {
    use rand::SeedableRng;
    // FNV-1a over the name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}
