//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the subset of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! integer-range and regex-string strategies, [`collection::vec`],
//! `any`, `Just`, `prop_oneof!`, the `proptest!` test macro and the
//! `prop_assert*` family.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! the generated input as-is via `Debug`), and case generation streams
//! from a seed derived from the test name, so runs are deterministic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface the workspace's tests rely on.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `pat in strategy` argument is
/// regenerated for every case; the body runs once per case and fails
/// the test on panic or on a `prop_assert*` failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                let outcome = {
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let mut run =
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body;
                            Ok(())
                        };
                    run()
                };
                if let Err(e) = outcome {
                    panic!("proptest case {case}/{} failed: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current proptest case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Picks uniformly among the listed strategies (all must yield the
/// same value type). Weighted variants are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
