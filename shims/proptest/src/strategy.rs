//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange, Standard};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (for dependent inputs, e.g. an index into a sized
    /// collection).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// The full-domain strategy for simple types: `any::<u64>()` etc.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// String literals act as regex-shaped generators, e.g.
/// `"[a-z]{1,6}"`. The supported subset is what this workspace's tests
/// use: literal characters, `\n`/`\t`/`\r`/`\\` escapes, character
/// classes with ranges, `.`, and the `{n}`/`{m,n}`/`*`/`+`/`?`
/// quantifiers.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_regex(self, rng)
    }
}

/// One unit of a pattern: the set of characters it can produce.
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are width-1 ranges.
    Class(Vec<(char, char)>),
}

impl Atom {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut n = rng.gen_range(0..total);
                for &(a, b) in ranges {
                    let width = b as u32 - a as u32 + 1;
                    if n < width {
                        return char::from_u32(a as u32 + n)
                            .expect("class ranges hold valid chars");
                    }
                    n -= width;
                }
                unreachable!("index within total width")
            }
        }
    }
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
    match chars.next().expect("dangling escape in pattern") {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        c => c,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let c = match chars.next().expect("unterminated character class") {
            ']' => break,
            '\\' => parse_escape(chars),
            c => c,
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            let hi = match chars.next().expect("unterminated range") {
                '\\' => parse_escape(chars),
                c => c,
            };
            assert!(c <= hi, "reversed range in character class");
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
    Atom::Class(ranges)
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, "")) => {
                    let lo = lo.parse().expect("bad quantifier");
                    (lo, lo + 8)
                }
                Some((lo, hi)) => (
                    lo.parse().expect("bad quantifier"),
                    hi.parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => parse_class(&mut chars),
            '\\' => Atom::Literal(parse_escape(&mut chars)),
            '.' => Atom::Class(vec![(' ', '~')]),
            c => Atom::Literal(c),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(atom.pick(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_strings_match_shape() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        for _ in 0..200 {
            let s = "[ -~\\n\\t]{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn oneof_covers_every_alternative() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0..n, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }
}
