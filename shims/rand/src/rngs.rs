//! Concrete generators. The real rand 0.8 maps `SmallRng` to
//! xoshiro256++ on 64-bit targets; so do we.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The raw xoshiro256++ state, for exact save/restore (checkpoints).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`Self::state`].
    /// The restored generator continues the exact same stream.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion, as recommended by the xoshiro
        // authors (and used by rand's seed_from_u64).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}
