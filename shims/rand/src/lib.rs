//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal implementation of the subset of the
//! rand 0.8 API it uses: [`rngs::SmallRng`] (xoshiro256++ seeded by
//! SplitMix64, like the real `SmallRng` on 64-bit targets),
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom::shuffle`].
//!
//! Statistical quality matters here (corpora, CRF shuffling and SGNS
//! noise sampling all flow through it), so the generator is a real PRNG,
//! not a toy LCG. Streams are deterministic under a seed but are not
//! guaranteed to match the real `rand` crate bit for bit.

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// The low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution: uniform
    /// over the full domain for integers, uniform in `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into generator state (via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits, uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. The single blanket impl per
/// range shape (mirroring real rand) is what lets
/// `6 + rng.gen_range(0..2)` infer the literals' integer type from the
/// surrounding expression.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly sampleable over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// Multiply-shift bounded sampling: uniform in `[0, span)`.
/// Bias is at most `span / 2^64`, far below anything observable here.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                // Two's-complement trick: the unsigned distance is the
                // same for signed and unsigned element types.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded(rng, span + 1) as $t)
                } else {
                    lo.wrapping_add(bounded(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle leaving order intact is ~impossible"
        );
    }
}
