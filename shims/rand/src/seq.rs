//! Sequence helpers: the `SliceRandom::shuffle` subset.

use crate::{Rng, RngCore, SampleRange};

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a reference to one uniformly-chosen element, or `None`
    /// when the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
