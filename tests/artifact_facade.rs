//! The compiled binary artifact through the facade: `to_artifact` /
//! `from_artifact` / `load` sniffing, decision identity (quantized
//! included), and the hardened error path on corrupted bytes.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::artifact::{is_artifact, Quant};
use pigeon::{ErrorKind, Pigeon, PigeonConfig};

fn trained_namer() -> Pigeon {
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(60),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default()).unwrap()
}

const QUERY: &str = "function f() { var d = false; while (!d) { if (go()) { d = true; } } }";

fn assert_same_predictions(a: &Pigeon, b: &Pigeon) {
    let pa = a.predict(QUERY).unwrap();
    let pb = b.predict(QUERY).unwrap();
    assert!(!pa.is_empty());
    assert_eq!(pa.len(), pb.len());
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.current_name, y.current_name);
        assert_eq!(x.predicted_name, y.predicted_name);
        assert_eq!(x.candidates.len(), y.candidates.len());
        for ((nx, _), (ny, _)) in x.candidates.iter().zip(&y.candidates) {
            assert_eq!(nx, ny);
        }
    }
}

#[test]
fn artifact_round_trips_through_the_facade() {
    let namer = trained_namer();
    let bytes = namer.to_artifact(Quant::F32).unwrap();
    assert!(is_artifact(&bytes));
    let restored = Pigeon::from_artifact(&bytes).unwrap();
    assert_eq!(restored.language(), Language::JavaScript);
    assert_same_predictions(&namer, &restored);
    // Re-encoding the artifact-backed model reproduces the bytes.
    assert_eq!(restored.to_artifact(Quant::F32).unwrap(), bytes);
    // F32 predictions carry identical scores, not just identical names.
    let pa = namer.predict(QUERY).unwrap();
    let pb = restored.predict(QUERY).unwrap();
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.candidates, y.candidates);
    }
}

#[test]
fn quantized_artifacts_keep_decisions() {
    let namer = trained_namer();
    let reference = namer.predict(QUERY).unwrap();
    assert!(!reference.is_empty());
    for quant in [Quant::F16, Quant::I8] {
        let restored = Pigeon::from_artifact(&namer.to_artifact(quant).unwrap()).unwrap();
        // Quantization may swap near-tied candidates deep in the top-k
        // list; the decision — the predicted name — must never move.
        let quantized = restored.predict(QUERY).unwrap();
        assert_eq!(reference.len(), quantized.len());
        for (r, q) in reference.iter().zip(&quantized) {
            assert_eq!(r.current_name, q.current_name);
            assert_eq!(r.predicted_name, q.predicted_name, "{quant:?}");
        }
    }
}

#[test]
fn load_sniffs_both_formats() {
    let namer = trained_namer();
    let from_json = Pigeon::load(namer.to_json().unwrap().as_bytes()).unwrap();
    assert_same_predictions(&namer, &from_json);
    let from_artifact = Pigeon::load(&namer.to_artifact(Quant::F32).unwrap()).unwrap();
    assert_same_predictions(&namer, &from_artifact);
}

#[test]
fn corrupted_artifacts_are_coded_model_format_errors() {
    let namer = trained_namer();
    let bytes = namer.to_artifact(Quant::F32).unwrap();
    // Truncations at a spread of cut points, plus one flipped byte in
    // every 97-byte stride: always an error, never a panic.
    for len in [4, 8, 31, 32, 64, bytes.len() / 2, bytes.len() - 1] {
        let err = Pigeon::load(&bytes[..len]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ModelFormat, "cut at {len}: {err}");
    }
    for i in (4..bytes.len()).step_by(97) {
        let mut tampered = bytes.clone();
        tampered[i] ^= 0x20;
        let err = Pigeon::load(&tampered).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ModelFormat, "flip at {i}: {err}");
    }
}

#[test]
fn binary_junk_is_neither_format() {
    let err = Pigeon::load(&[0xfe, 0xed, 0xfa, 0xce, 0x00]).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ModelFormat);
    assert!(err.to_string().contains("neither"), "unexpected: {err}");
}

#[test]
fn artifact_backed_facade_refuses_json_serialisation() {
    let namer = trained_namer();
    let restored = Pigeon::from_artifact(&namer.to_artifact(Quant::F32).unwrap()).unwrap();
    let err = restored.to_json().unwrap_err();
    assert!(err.to_string().contains("artifact"), "unexpected: {err}");
}

#[test]
fn non_finite_json_weights_are_rejected_with_a_stable_code() {
    // JSON `1e999` parses as +inf without a syntax error; validation
    // must still refuse to load the poisoned weight table.
    let poisoned = r#"{"language":"js","target":"variables","abstraction":"full",
        "max_length":7,"max_width":3,"semi_paths":true,"top_k":5,
        "labels":["a","b"],"features":["f0"],
        "model":"{\"pair_weights\":[[0,0,1,1e999]],\"unary_weights\":[],\"label_counts\":[1,1],\"candidates\":[],\"global_candidates\":[0],\"max_candidates\":4,\"max_passes\":4}"}"#;
    let err = Pigeon::from_json(poisoned).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ModelFormat);
    assert!(
        err.to_string().contains("model-nonfinite-weight"),
        "unexpected: {err}"
    );
}
