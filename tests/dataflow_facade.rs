//! Integration tests for the `dataflow_contexts` knob: feature
//! extraction, serialisation in all three model formats, and the
//! byte-identity guarantee when the knob is off.

use pigeon::core::{Abstraction, ExtractionConfig};
use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::{dataflow_edge_features, Pigeon, PigeonConfig};

fn sources(language: Language, files: usize) -> Vec<String> {
    generate(language, &CorpusConfig::default().with_files(files))
        .docs
        .into_iter()
        .map(|d| d.source)
        .collect()
}

fn train(language: Language, sources: &[String], config: &PigeonConfig) -> Pigeon {
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    Pigeon::train_variable_namer(language, &refs, config).expect("training corpus parses")
}

#[test]
fn dataflow_edge_features_carry_both_edge_kinds() {
    let source = "function f(a) { var b = a + 1; b = b * 2; return b; }";
    let ast = pigeon::js::parse(source).expect("parses");
    let features = dataflow_edge_features(
        Language::JavaScript,
        &ast,
        &ExtractionConfig::with_limits(4, 3),
        Abstraction::Full,
    );
    assert!(
        features.iter().any(|f| f.feature.starts_with("lw:")),
        "expected a last-write feature: {features:?}"
    );
    assert!(
        features.iter().any(|f| f.feature.starts_with("lu:")),
        "expected a last-use feature: {features:?}"
    );
    // Every flow feature connects two distinct leaves of the tree.
    for f in &features {
        assert_ne!(f.a, f.b, "self-edges are never extracted: {f:?}");
    }
}

/// The knob defaults to off, and off means *really* off: the trained
/// model is byte-identical to one trained before the knob existed — no
/// `lw:`/`lu:` features in the vocabulary, no `dataflow_contexts` key
/// in the JSON, nothing extra in the artifact meta section.
#[test]
fn knob_off_training_and_serialisation_are_byte_identical_to_default() {
    let corpus = sources(Language::JavaScript, 80);
    let default = train(Language::JavaScript, &corpus, &PigeonConfig::default());
    let explicit_off = train(
        Language::JavaScript,
        &corpus,
        &PigeonConfig::builder()
            .dataflow_contexts(false)
            .build()
            .unwrap(),
    );
    let default_json = default.to_json().unwrap();
    assert_eq!(default_json, explicit_off.to_json().unwrap());
    assert!(!default_json.contains("dataflow_contexts"));
    assert!(!default_json.contains("\"lw:"));
    assert_eq!(
        default
            .to_artifact(pigeon::crf::artifact::Quant::F32)
            .unwrap(),
        explicit_off
            .to_artifact(pigeon::crf::artifact::Quant::F32)
            .unwrap()
    );
}

#[test]
fn knob_on_features_reach_the_vocabulary_and_survive_both_formats() {
    let corpus = sources(Language::JavaScript, 80);
    let config = PigeonConfig::builder()
        .dataflow_contexts(true)
        .build()
        .unwrap();
    let namer = train(Language::JavaScript, &corpus, &config);
    let has = |prefix: &str| {
        namer
            .vocabs()
            .features
            .iter()
            .any(|(_, s)| s.starts_with(prefix))
    };
    assert!(has("lw:"), "last-write features must be interned");
    assert!(has("lu:"), "last-use features must be interned");

    let query = "function f(a) { var b = a + 1; b = b * 2; return b; }";
    let expected = format!("{:?}", namer.predict(query).unwrap());

    let json = namer.to_json().unwrap();
    assert!(json.contains("\"dataflow_contexts\":true"));
    let from_json = Pigeon::from_json(&json).unwrap();
    assert_eq!(format!("{:?}", from_json.predict(query).unwrap()), expected);
    // The restored model keeps extracting flow features (otherwise its
    // lw:/lu: weights would silently go unused).
    assert_eq!(from_json.to_json().unwrap(), json);

    let artifact = namer
        .to_artifact(pigeon::crf::artifact::Quant::F32)
        .unwrap();
    let from_artifact = Pigeon::load(&artifact).unwrap();
    assert_eq!(
        format!("{:?}", from_artifact.predict(query).unwrap()),
        expected
    );
}

/// Sharded training with the knob on merges to the same model as a
/// single-process run, and refuses to merge partials that disagree on
/// the knob (mixed statistics would be silently wrong).
#[test]
fn sharded_training_carries_the_knob_and_rejects_mixed_partials() {
    use pigeon::eval::ElementClass;

    let corpus = sources(Language::JavaScript, 60);
    let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
    let config = PigeonConfig::builder()
        .dataflow_contexts(true)
        .build()
        .unwrap();

    let parts: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            Pigeon::build_training_partial(
                Language::JavaScript,
                ElementClass::Variable,
                &refs,
                i,
                2,
                &config,
            )
            .unwrap()
        })
        .collect();
    let merged = Pigeon::from_partials(&parts).unwrap();
    let single = train(Language::JavaScript, &corpus, &config);
    assert_eq!(merged.to_json().unwrap(), single.to_json().unwrap());

    let off = PigeonConfig::builder()
        .dataflow_contexts(false)
        .build()
        .unwrap();
    let mixed = vec![
        parts[0].clone(),
        Pigeon::build_training_partial(
            Language::JavaScript,
            ElementClass::Variable,
            &refs,
            1,
            2,
            &off,
        )
        .unwrap(),
    ];
    let err = Pigeon::from_partials(&mixed).unwrap_err();
    assert!(
        err.to_string().contains("dataflow_contexts"),
        "the error must name the knob: {err}"
    );
}

/// The flow analyses fan out with the rest of extraction; the trained
/// model must stay byte-identical for any worker count.
#[test]
fn knob_on_training_is_jobs_invariant() {
    let corpus = sources(Language::Python, 60);
    let baseline = train(
        Language::Python,
        &corpus,
        &PigeonConfig::builder()
            .dataflow_contexts(true)
            .jobs(1)
            .build()
            .unwrap(),
    );
    for jobs in [0, 3] {
        let model = train(
            Language::Python,
            &corpus,
            &PigeonConfig::builder()
                .dataflow_contexts(true)
                .jobs(jobs)
                .build()
                .unwrap(),
        );
        assert_eq!(
            model.to_json().unwrap(),
            baseline.to_json().unwrap(),
            "jobs={jobs}"
        );
    }
}
