//! Model persistence and run-to-run determinism of the full pipeline.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::CrfModel;
use pigeon::eval::{run_name_experiment, NameExperiment};
use pigeon::{Pigeon, PigeonConfig};

#[test]
fn crf_model_round_trips_through_json_via_facade_training() {
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(60),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let namer =
        Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default())
            .unwrap();

    let query = "function f() { var d = false; while (!d) { if (go()) { d = true; } } }";
    let before = namer.predict(query).unwrap();
    assert!(!before.is_empty());
    // The facade's model serialises and restores byte-identically.
    let json = {
        // Re-train to obtain a raw model with the same data for the
        // serialisation check (the facade owns its model privately).
        let mut vocabs = pigeon::eval::Vocabs::new();
        let mut instances = Vec::new();
        for s in &sources {
            let ast = Language::JavaScript.parse(s).unwrap();
            let feats = pigeon::eval::extract_edge_features(
                Language::JavaScript,
                &ast,
                pigeon::eval::Representation::AstPaths(pigeon::core::Abstraction::Full),
                &pigeon::core::ExtractionConfig::with_limits(4, 3),
            );
            let g = pigeon::eval::build_name_graph(
                Language::JavaScript,
                &ast,
                pigeon::eval::ElementClass::Variable,
                &feats,
                &mut vocabs,
                true,
            );
            instances.push(g.instance);
        }
        let model = pigeon::crf::train(
            &instances,
            vocabs.labels.len() as u32,
            &pigeon::crf::CrfConfig::default(),
        );
        let json = model.to_json().unwrap();
        let restored = CrfModel::from_json(&json).unwrap();
        for inst in instances.iter().take(10) {
            assert_eq!(model.predict(inst), restored.predict(inst));
        }
        json
    };
    assert!(json.len() > 100);
}

#[test]
fn facade_round_trips_config_and_predictions_through_json() {
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(60),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let config = PigeonConfig {
        extraction: pigeon::core::ExtractionConfig::with_limits(5, 2),
        top_k: 3,
        ..PigeonConfig::default()
    };
    let namer = Pigeon::train_variable_namer(Language::JavaScript, &sources, &config).unwrap();

    let json = namer.to_json().unwrap();
    let restored = Pigeon::from_json(&json).unwrap();
    assert_eq!(restored.language(), Language::JavaScript);
    // Config fields survive: serialising the restored predictor again
    // must reproduce the same document.
    assert_eq!(restored.to_json().unwrap(), json);

    // And it predicts identically, scores included.
    let query = "function f() { var d = false; while (!d) { if (go()) { d = true; } } }";
    let before = namer.predict(query).unwrap();
    let after = restored.predict(query).unwrap();
    assert!(!before.is_empty());
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.current_name, a.current_name);
        assert_eq!(b.predicted_name, a.predicted_name);
        assert_eq!(b.candidates, a.candidates);
    }
}

#[test]
fn parallel_training_matches_serial_byte_for_byte() {
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(60),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let serial = Pigeon::train_variable_namer(
        Language::JavaScript,
        &sources,
        &PigeonConfig {
            jobs: 1,
            ..PigeonConfig::default()
        },
    )
    .unwrap();
    let parallel = Pigeon::train_variable_namer(
        Language::JavaScript,
        &sources,
        &PigeonConfig {
            jobs: 4,
            ..PigeonConfig::default()
        },
    )
    .unwrap();
    assert_eq!(serial.to_json().unwrap(), parallel.to_json().unwrap());
}

#[test]
fn downsampled_facade_training_is_reproducible_and_shrinks_features() {
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(60),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let sampled = PigeonConfig {
        keep_prob: 0.5,
        ..PigeonConfig::default()
    };
    let a = Pigeon::train_variable_namer(Language::JavaScript, &sources, &sampled).unwrap();
    let b = Pigeon::train_variable_namer(Language::JavaScript, &sources, &sampled).unwrap();
    // The sampling seed is fixed, so downsampled runs are reproducible.
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    // And sampling at 0.5 genuinely drops contexts relative to keeping all.
    let full =
        Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default())
            .unwrap();
    assert!(a.to_json().unwrap().len() < full.to_json().unwrap().len());
}

#[test]
fn parallel_experiment_matches_serial() {
    let base = NameExperiment {
        corpus: CorpusConfig::default().with_files(80),
        ..NameExperiment::var_names(Language::JavaScript)
    };
    let serial = run_name_experiment(&base);
    let parallel = run_name_experiment(&NameExperiment {
        jobs: 4,
        ..base.clone()
    });
    assert_eq!(serial.accuracy, parallel.accuracy);
    assert_eq!(serial.topk_accuracy, parallel.topk_accuracy);
    assert_eq!(serial.f1, parallel.f1);
    assert_eq!(serial.n_test, parallel.n_test);
    assert_eq!(serial.n_features, parallel.n_features);
    assert_eq!(serial.n_labels, parallel.n_labels);
}

#[test]
fn end_to_end_runs_are_deterministic() {
    let exp = NameExperiment {
        corpus: CorpusConfig::default().with_files(80),
        ..NameExperiment::var_names(Language::Python)
    };
    let a = run_name_experiment(&exp);
    let b = run_name_experiment(&exp);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.n_test, b.n_test);
    assert_eq!(a.n_features, b.n_features);
}

#[test]
fn different_seeds_give_different_corpora_but_similar_accuracy() {
    let base = NameExperiment {
        corpus: CorpusConfig::default().with_files(200),
        ..NameExperiment::var_names(Language::JavaScript)
    };
    let a = run_name_experiment(&base);
    let b = run_name_experiment(&NameExperiment {
        corpus: base.corpus.with_seed(0xDEADBEEF),
        ..base.clone()
    });
    assert!(
        (a.accuracy - b.accuracy).abs() < 0.12,
        "seed variance too large: {:.3} vs {:.3}",
        a.accuracy,
        b.accuracy
    );
}
