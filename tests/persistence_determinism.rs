//! Model persistence and run-to-run determinism of the full pipeline.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::CrfModel;
use pigeon::eval::{run_name_experiment, NameExperiment};
use pigeon::{Pigeon, PigeonConfig};

#[test]
fn crf_model_round_trips_through_json_via_facade_training() {
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(60),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let namer = Pigeon::train_variable_namer(
        Language::JavaScript,
        &sources,
        &PigeonConfig::default(),
    )
    .unwrap();

    let query = "function f() { var d = false; while (!d) { if (go()) { d = true; } } }";
    let before = namer.predict(query).unwrap();
    assert!(!before.is_empty());
    // The facade's model serialises and restores byte-identically.
    let json = {
        // Re-train to obtain a raw model with the same data for the
        // serialisation check (the facade owns its model privately).
        let mut vocabs = pigeon::eval::Vocabs::new();
        let mut instances = Vec::new();
        for s in &sources {
            let ast = Language::JavaScript.parse(s).unwrap();
            let feats = pigeon::eval::extract_edge_features(
                Language::JavaScript,
                &ast,
                pigeon::eval::Representation::AstPaths(pigeon::core::Abstraction::Full),
                &pigeon::core::ExtractionConfig::with_limits(4, 3),
            );
            let g = pigeon::eval::build_name_graph(
                Language::JavaScript,
                &ast,
                pigeon::eval::ElementClass::Variable,
                &feats,
                &mut vocabs,
                true,
            );
            instances.push(g.instance);
        }
        let model = pigeon::crf::train(
            &instances,
            vocabs.labels.len() as u32,
            &pigeon::crf::CrfConfig::default(),
        );
        let json = model.to_json().unwrap();
        let restored = CrfModel::from_json(&json).unwrap();
        for inst in instances.iter().take(10) {
            assert_eq!(model.predict(inst), restored.predict(inst));
        }
        json
    };
    assert!(json.len() > 100);
}

#[test]
fn end_to_end_runs_are_deterministic() {
    let exp = NameExperiment {
        corpus: CorpusConfig::default().with_files(80),
        ..NameExperiment::var_names(Language::Python)
    };
    let a = run_name_experiment(&exp);
    let b = run_name_experiment(&exp);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.n_test, b.n_test);
    assert_eq!(a.n_features, b.n_features);
}

#[test]
fn different_seeds_give_different_corpora_but_similar_accuracy() {
    let base = NameExperiment {
        corpus: CorpusConfig::default().with_files(200),
        ..NameExperiment::var_names(Language::JavaScript)
    };
    let a = run_name_experiment(&base);
    let b = run_name_experiment(&NameExperiment {
        corpus: base.corpus.with_seed(0xDEADBEEF),
        ..base.clone()
    });
    assert!(
        (a.accuracy - b.accuracy).abs() < 0.12,
        "seed variance too large: {:.3} vs {:.3}",
        a.accuracy,
        b.accuracy
    );
}
