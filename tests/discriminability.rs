//! The paper's Fig. 3 discriminability argument, end to end: two
//! programs that single-statement relation extractors (UnuglifyJS-style)
//! cannot tell apart are distinguishable by AST paths.

use pigeon::core::Abstraction;
use pigeon::core::ExtractionConfig;
use pigeon::corpus::Language;
use pigeon::eval::{extract_edge_features, Representation};
use std::collections::BTreeSet;

const FIG3A: &str =
    "var d = false; while (!d) { doSomething(); if (someCondition()) { d = true; } }";
const FIG3B: &str = "someCondition(); doSomething(); var d = false; d = true;";

fn feature_multiset(src: &str, rep: Representation) -> BTreeSet<String> {
    let ast = pigeon::js::parse(src).unwrap();
    extract_edge_features(
        Language::JavaScript,
        &ast,
        rep,
        &ExtractionConfig::with_limits(8, 4),
    )
    .into_iter()
    .map(|e| {
        format!(
            "{} [{}] {}",
            ast.value(e.a).unwrap(),
            e.feature,
            ast.value(e.b).unwrap()
        )
    })
    .collect()
}

#[test]
fn relations_cannot_distinguish_fig3() {
    let a = feature_multiset(FIG3A, Representation::Relations);
    let b = feature_multiset(FIG3B, Representation::Relations);
    assert_eq!(a, b, "single-statement relations must coincide on Fig. 3");
}

#[test]
fn ast_paths_distinguish_fig3() {
    let a = feature_multiset(FIG3A, Representation::AstPaths(Abstraction::Full));
    let b = feature_multiset(FIG3B, Representation::AstPaths(Abstraction::Full));
    assert_ne!(a, b, "AST paths must separate Fig. 3a from Fig. 3b");
    // Specifically, only the looping program has the While-crossing path.
    assert!(a.iter().any(|f| f.contains("While")));
    assert!(!b.iter().any(|f| f.contains("While")));
}

#[test]
fn even_coarse_abstractions_distinguish_fig3() {
    // forget-order keeps the bag of kinds, which still contains While.
    let a = feature_multiset(FIG3A, Representation::AstPaths(Abstraction::ForgetOrder));
    let b = feature_multiset(FIG3B, Representation::AstPaths(Abstraction::ForgetOrder));
    assert_ne!(a, b);
}

#[test]
fn no_path_abstraction_loses_fig3_interior_but_keeps_endpoints() {
    // With no paths at all, only the endpoint identities remain; both
    // programs have the same identifier bag, so the two become equal.
    let a = feature_multiset(FIG3A, Representation::AstPaths(Abstraction::NoPath));
    let b = feature_multiset(FIG3B, Representation::AstPaths(Abstraction::NoPath));
    assert_eq!(a, b, "the no-path bag of identifiers coincides on Fig. 3");
}
