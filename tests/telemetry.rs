//! Integration tests for the telemetry layer against the real training
//! pipeline: jobs-invariance of the Prometheus exposition and
//! well-nestedness of the exported Chrome trace.
//!
//! Both tests drive the process-global registry, so they serialise on a
//! shared lock and pin the clock to a deterministic [`ManualClock`].

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::telemetry;
use pigeon::telemetry::ManualClock;
use pigeon::{Pigeon, PigeonConfig};
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

fn sources() -> Vec<String> {
    generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(12),
    )
    .docs
    .into_iter()
    .map(|d| d.source)
    .collect()
}

/// Trains one small model with the given worker count and returns the
/// full `/metrics` exposition it produced.
fn train_metrics(sources: &[String], jobs: usize) -> String {
    // A frozen clock makes every span duration zero, so the exposition
    // depends only on event *counts* — which must not depend on `jobs`.
    telemetry::set_clock(Arc::new(ManualClock::frozen(0)));
    telemetry::reset();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig::builder().jobs(jobs).build().expect("valid");
    Pigeon::train_variable_namer(Language::JavaScript, &refs, &config).expect("trains");
    telemetry::render_prometheus()
}

#[test]
fn metrics_are_byte_identical_for_any_jobs() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let sources = sources();
    let serial = train_metrics(&sources, 1);
    let parallel = train_metrics(&sources, 4);
    assert_eq!(
        serial, parallel,
        "metrics must not depend on the worker count"
    );
    for family in [
        "pigeon_documents_extracted_total",
        "pigeon_paths_extracted_total",
        "pigeon_pool_items_total",
        "pigeon_crf_updates_total",
        "pigeon_phase_micros_bucket",
        "pigeon_phase_micros_count",
    ] {
        assert!(serial.contains(family), "missing {family} in:\n{serial}");
    }
    // Prometheus text framing: HELP/TYPE headers and a +Inf bucket.
    assert!(serial.contains("# TYPE pigeon_phase_micros histogram"));
    assert!(serial.contains("le=\"+Inf\""));
}

#[test]
fn trace_export_is_valid_json_with_well_nested_spans() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    // A stepping clock gives every event a distinct, strictly increasing
    // timestamp, so interval containment is a meaningful nesting check.
    telemetry::set_clock(Arc::new(ManualClock::stepping(0, 1)));
    telemetry::reset();
    telemetry::set_tracing(true);
    let sources = sources();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig::builder().jobs(1).build().expect("valid");
    Pigeon::train_variable_namer(Language::JavaScript, &refs, &config).expect("trains");
    telemetry::set_tracing(false);

    let json = telemetry::trace_json();
    let doc: serde_json::Value = serde_json::from_str(&json).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must record the pipeline spans");

    let field = |e: &serde_json::Value, k: &str| -> u64 {
        e.get(k).and_then(|v| v.as_u64()).expect("numeric field")
    };
    let names: Vec<&str> = events
        .iter()
        .map(|e| e.get("name").and_then(|n| n.as_str()).expect("name"))
        .collect();
    assert!(names.contains(&"train"), "{names:?}");
    assert!(names.contains(&"parse_extract"), "{names:?}");
    assert!(names.contains(&"crf_epoch"), "{names:?}");

    // Every event naming a parent must sit strictly inside some same-tid
    // event of that name: the spans form a forest, not a soup.
    for e in events {
        let Some(parent) = e.get("args").and_then(|a| a.get("parent")) else {
            continue;
        };
        let parent = parent.as_str().expect("parent name");
        let (ts, dur, tid) = (field(e, "ts"), field(e, "dur"), field(e, "tid"));
        let enclosed = events.iter().any(|p| {
            p.get("name").and_then(|n| n.as_str()) == Some(parent)
                && field(p, "tid") == tid
                && field(p, "ts") < ts
                && ts + dur <= field(p, "ts") + field(p, "dur")
        });
        assert!(
            enclosed,
            "span {:?} (ts {ts}, dur {dur}) not enclosed by its parent {parent:?}",
            e.get("name")
        );
    }
}
