//! Sharded, resumable and incremental training through the facade:
//! shard-count invariance (byte-identical models for any `--shard n`),
//! checkpoint/resume determinism, partial-file robustness, and
//! incremental corpus updates.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::artifact::Quant;
use pigeon::crf::checkpoint::{decode_checkpoint, encode_checkpoint};
use pigeon::crf::TrainControl;
use pigeon::eval::ElementClass;
use pigeon::{Pigeon, PigeonConfig, TrainRun};
use std::cell::Cell;

fn corpus_sources(files: usize, seed: u64) -> Vec<String> {
    generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(files).with_seed(seed),
    )
    .docs
    .into_iter()
    .map(|d| d.source)
    .collect()
}

fn shard_and_merge(refs: &[&str], count: usize, config: &PigeonConfig) -> Pigeon {
    let parts: Vec<Vec<u8>> = (0..count)
        .map(|i| {
            Pigeon::build_training_partial(
                Language::JavaScript,
                ElementClass::Variable,
                refs,
                i,
                count,
                config,
            )
            .unwrap()
        })
        .collect();
    Pigeon::from_partials(&parts).unwrap()
}

#[test]
fn shard_count_invariance_is_byte_identical() {
    let sources = corpus_sources(40, 0x51AD_0001);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig::default();
    let baseline = Pigeon::train_variable_namer(Language::JavaScript, &refs, &config)
        .unwrap()
        .to_json()
        .unwrap();
    for count in [1usize, 2, 4, 7] {
        let merged = shard_and_merge(&refs, count, &config).to_json().unwrap();
        assert_eq!(
            merged, baseline,
            "merge of {count} shards differs from the single-process model"
        );
    }
}

#[test]
fn sharding_is_byte_identical_under_downsampling() {
    // Downsampling consumes the per-document rng; seeds derive from the
    // global document index, so a shard worker samples exactly as the
    // full run does.
    let sources = corpus_sources(30, 0x51AD_0002);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig {
        keep_prob: 0.5,
        ..PigeonConfig::default()
    };
    let baseline = Pigeon::train_variable_namer(Language::JavaScript, &refs, &config)
        .unwrap()
        .to_json()
        .unwrap();
    for count in [1usize, 3] {
        let merged = shard_and_merge(&refs, count, &config).to_json().unwrap();
        assert_eq!(
            merged, baseline,
            "downsampled merge differs ({count} shards)"
        );
    }
}

#[test]
fn merge_rejects_partials_with_mismatched_configs_naming_the_knob() {
    let sources = corpus_sources(10, 0x51AD_0003);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let base = PigeonConfig::default();
    let wider = PigeonConfig {
        extraction: pigeon::core::ExtractionConfig::with_limits(5, 3),
        ..PigeonConfig::default()
    };
    let a = Pigeon::build_training_partial(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        0,
        2,
        &base,
    )
    .unwrap();
    let b = Pigeon::build_training_partial(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        1,
        2,
        &wider,
    )
    .unwrap();
    let err = Pigeon::from_partials(&[a, b]).unwrap_err();
    assert_eq!(err.code(), "config");
    assert!(
        err.message().contains("max_length"),
        "error must name the differing knob: {err}"
    );
}

#[test]
fn merge_rejects_incomplete_shard_sets() {
    let sources = corpus_sources(10, 0x51AD_0004);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig::default();
    let only_first = Pigeon::build_training_partial(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        0,
        3,
        &config,
    )
    .unwrap();
    let err = Pigeon::from_partials(&[only_first]).unwrap_err();
    assert_eq!(err.code(), "config");
    assert!(err.message().contains("missing"), "{err}");
}

#[test]
fn corrupt_partials_are_coded_errors_never_panics() {
    let sources = corpus_sources(8, 0x51AD_0005);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let bytes = Pigeon::build_training_partial(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        0,
        1,
        &PigeonConfig::default(),
    )
    .unwrap();
    // Truncations at every interesting boundary.
    for len in [0, 3, 16, 27, 32, 63, bytes.len() / 2, bytes.len() - 1] {
        let err = Pigeon::from_partials(&[bytes[..len].to_vec()]).unwrap_err();
        assert_eq!(err.code(), "model-format", "truncation to {len}");
    }
    // Single-byte flips anywhere must be caught (checksums cover every
    // section) and classified, not panic.
    for i in (0..bytes.len()).step_by(11) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x08;
        let err = Pigeon::from_partials(&[bad]).unwrap_err();
        assert_eq!(err.code(), "model-format", "flip at byte {i}");
    }
}

#[test]
fn interrupt_write_to_disk_and_resume_reproduces_the_model() {
    let sources = corpus_sources(25, 0x51AD_0006);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig::default();
    let baseline = Pigeon::train_variable_namer(Language::JavaScript, &refs, &config)
        .unwrap()
        .to_json()
        .unwrap();

    // Interrupt mid-run via the polled hook (the CLI's SIGINT flag
    // drives the same closure), round-trip the state through the
    // on-disk checkpoint format, then resume to completion.
    let polls = Cell::new(0u32);
    let interrupt = || {
        polls.set(polls.get() + 1);
        polls.get() > 40
    };
    let run = Pigeon::train_namer_resumable(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        &config,
        TrainControl {
            interrupt: Some(&interrupt),
            ..TrainControl::default()
        },
    )
    .unwrap();
    let state = match run {
        TrainRun::Interrupted(state) => state,
        TrainRun::Completed(_) => panic!("40 instances cannot cover 8 epochs over 25 docs"),
    };
    let file = std::env::temp_dir().join(format!("pigeon-ckpt-{}.pgnc", std::process::id()));
    std::fs::write(&file, encode_checkpoint(&state)).unwrap();
    let restored = decode_checkpoint(&std::fs::read(&file).unwrap()).unwrap();
    let _ = std::fs::remove_file(&file);

    let resumed = Pigeon::train_namer_resumable(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        &config,
        TrainControl {
            resume: Some(restored),
            ..TrainControl::default()
        },
    )
    .unwrap();
    match resumed {
        TrainRun::Completed(model) => assert_eq!(
            model.to_json().unwrap(),
            baseline,
            "resumed model differs from the uninterrupted run"
        ),
        TrainRun::Interrupted(_) => panic!("resume without an interrupt hook must complete"),
    }
}

#[test]
fn resume_rejects_a_checkpoint_from_another_corpus() {
    let sources = corpus_sources(12, 0x51AD_0007);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let config = PigeonConfig::default();
    let polls = Cell::new(0u32);
    let interrupt = || {
        polls.set(polls.get() + 1);
        polls.get() > 5
    };
    let run = Pigeon::train_namer_resumable(
        Language::JavaScript,
        ElementClass::Variable,
        &refs,
        &config,
        TrainControl {
            interrupt: Some(&interrupt),
            ..TrainControl::default()
        },
    )
    .unwrap();
    let TrainRun::Interrupted(state) = run else {
        panic!("expected an interrupt");
    };
    let other = corpus_sources(13, 0x51AD_0008);
    let other_refs: Vec<&str> = other.iter().map(String::as_str).collect();
    let err = Pigeon::train_namer_resumable(
        Language::JavaScript,
        ElementClass::Variable,
        &other_refs,
        &config,
        TrainControl {
            resume: Some(*state),
            ..TrainControl::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.code(), "config");
    assert!(err.message().contains("checkpoint"), "{err}");
}

#[test]
fn incremental_update_folds_new_documents_deterministically() {
    let base_sources = corpus_sources(30, 0x51AD_0009);
    let base_refs: Vec<&str> = base_sources.iter().map(String::as_str).collect();
    let base =
        Pigeon::train_variable_namer(Language::JavaScript, &base_refs, &PigeonConfig::default())
            .unwrap();
    let base_labels = base.vocabs().labels.len();

    let new_sources = corpus_sources(10, 0xD00D_0001);
    let new_refs: Vec<&str> = new_sources.iter().map(String::as_str).collect();
    let updated = base.update(&new_refs).unwrap();
    // New documents can only grow the vocabularies.
    assert!(updated.vocabs().labels.len() >= base_labels);
    // The update is deterministic: folding the same documents twice
    // yields the same model file.
    let again = base.update(&new_refs).unwrap();
    assert_eq!(updated.to_json().unwrap(), again.to_json().unwrap());
    // And the result still predicts on unseen programs.
    let query = "function f() { var d = false; while (!d) { if (go()) { d = true; } } }";
    assert!(!updated.predict(query).unwrap().is_empty());
}

#[test]
fn artifact_backed_models_refuse_incremental_update() {
    let sources = corpus_sources(15, 0x51AD_000A);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let trained =
        Pigeon::train_variable_namer(Language::JavaScript, &refs, &PigeonConfig::default())
            .unwrap();
    let compiled = Pigeon::load(&trained.to_artifact(Quant::F32).unwrap()).unwrap();
    let err = compiled.update(&refs[..2]).unwrap_err();
    assert_eq!(err.code(), "config");
}
