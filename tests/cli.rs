//! Integration tests for the `pigeon` CLI binary.

use std::process::Command;

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_lists_every_command() {
    let out = pigeon().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "paths",
        "generate",
        "train",
        "predict",
        "experiment",
        "serve",
    ] {
        assert!(text.contains(cmd), "help is missing `{cmd}`");
    }
}

/// Regression: flags used to be parsed permissively, so a typo like
/// `--max-legnth` was silently dropped and the default limit used
/// instead. Every subcommand must now reject flags it does not know.
#[test]
fn unknown_flags_are_rejected_not_ignored() {
    let cases: &[&[&str]] = &[
        &["paths", "--language", "js", "--max-legnth", "4", "x.js"],
        &["generate", "--language", "js", "--fils", "10", "/tmp/never"],
        &[
            "train",
            "--language",
            "js",
            "--output",
            "/tmp/never.json",
            "x.js",
        ],
        &["predict", "--model", "m.json", "--jobs", "2", "x.js"],
        &["experiment", "--language", "js", "--flies", "40"],
        &["serve", "--model", "m.json", "--prot", "8080"],
    ];
    for args in cases {
        let out = pigeon().args(*args).output().expect("runs");
        assert!(!out.status.success(), "accepted: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown flag") && err.contains("allowed:"),
            "unhelpful error for {args:?}: {err}"
        );
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = pigeon().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn paths_prints_the_fig1_path() {
    let dir = tmp_dir("paths");
    let file = dir.join("fig1.js");
    std::fs::write(&file, "while (!d) { if (someCondition()) { d = true; } }").unwrap();
    let out = pigeon()
        .args(["paths", "--language", "js"])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("⟨d, SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef, d⟩"),
        "missing headline path in:\n{text}"
    );
}

#[test]
fn generate_train_predict_round_trip() {
    let dir = tmp_dir("pipeline");
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");
    let query = dir.join("query.js");

    let out = pigeon()
        .args(["generate", "--language", "js", "--files", "120"])
        .arg(&corpus_dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut train = pigeon();
    train
        .args(["train", "--language", "js", "--out"])
        .arg(&model);
    for entry in std::fs::read_dir(&corpus_dir).unwrap() {
        train.arg(entry.unwrap().path());
    }
    let out = train.output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    std::fs::write(
        &query,
        "function f(a, b, c) { b.open('GET', a, false); b.send(c); }",
    )
    .unwrap();
    let out = pigeon()
        .args(["predict", "--model"])
        .arg(&model)
        .arg(&query)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Three parameters predicted, each with candidates.
    assert_eq!(text.lines().count(), 3, "unexpected output:\n{text}");
    assert!(text.contains("top:"));
}

#[test]
fn predict_with_missing_model_fails_cleanly() {
    let out = pigeon()
        .args(["predict", "--model", "/nonexistent/model.json", "x.js"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn train_requires_sources() {
    let out = pigeon()
        .args(["train", "--language", "js", "--out", "/tmp/never.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--synthetic"));
}
