//! Integration tests for the `pigeon` CLI binary.

use std::process::Command;

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_lists_every_command() {
    let out = pigeon().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "paths",
        "generate",
        "train",
        "compile",
        "predict",
        "experiment",
        "serve",
    ] {
        assert!(text.contains(cmd), "help is missing `{cmd}`");
    }
}

/// Regression: flags used to be parsed permissively, so a typo like
/// `--max-legnth` was silently dropped and the default limit used
/// instead. Every subcommand must now reject flags it does not know.
#[test]
fn unknown_flags_are_rejected_not_ignored() {
    let cases: &[&[&str]] = &[
        &["paths", "--language", "js", "--max-legnth", "4", "x.js"],
        &["generate", "--language", "js", "--fils", "10", "/tmp/never"],
        &[
            "train",
            "--language",
            "js",
            "--output",
            "/tmp/never.json",
            "x.js",
        ],
        &["predict", "--model", "m.json", "--jobs", "2", "x.js"],
        &["experiment", "--language", "js", "--flies", "40"],
        &["serve", "--model", "m.json", "--prot", "8080"],
    ];
    for args in cases {
        let out = pigeon().args(*args).output().expect("runs");
        assert!(!out.status.success(), "accepted: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown flag") && err.contains("allowed:"),
            "unhelpful error for {args:?}: {err}"
        );
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = pigeon().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn paths_prints_the_fig1_path() {
    let dir = tmp_dir("paths");
    let file = dir.join("fig1.js");
    std::fs::write(&file, "while (!d) { if (someCondition()) { d = true; } }").unwrap();
    let out = pigeon()
        .args(["paths", "--language", "js"])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("⟨d, SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef, d⟩"),
        "missing headline path in:\n{text}"
    );
}

#[test]
fn generate_train_predict_round_trip() {
    let dir = tmp_dir("pipeline");
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");
    let query = dir.join("query.js");

    let out = pigeon()
        .args(["generate", "--language", "js", "--files", "120"])
        .arg(&corpus_dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut train = pigeon();
    train
        .args(["train", "--language", "js", "--out"])
        .arg(&model);
    for entry in std::fs::read_dir(&corpus_dir).unwrap() {
        train.arg(entry.unwrap().path());
    }
    let out = train.output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    std::fs::write(
        &query,
        "function f(a, b, c) { b.open('GET', a, false); b.send(c); }",
    )
    .unwrap();
    let out = pigeon()
        .args(["predict", "--model"])
        .arg(&model)
        .arg(&query)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Three parameters predicted, each with candidates.
    assert_eq!(text.lines().count(), 3, "unexpected output:\n{text}");
    assert!(text.contains("top:"));
}

/// `pigeon compile` freezes a JSON model into the binary artifact;
/// `predict` and `audit` consume it interchangeably with the JSON, and
/// quantized variants keep the same decisions.
#[test]
fn compile_predict_audit_round_trip() {
    let dir = tmp_dir("compile");
    let model = dir.join("model.json");
    let artifact = dir.join("model.pgnc");
    let query = dir.join("query.js");

    let out = pigeon()
        .args(["train", "--language", "js", "--synthetic", "120", "--out"])
        .arg(&model)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pigeon()
        .args(["compile"])
        .arg(&model)
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("f32 quantization"), "{text}");
    let bytes = std::fs::read(&artifact).expect("artifact written");
    assert_eq!(&bytes[..4], b"PGNC");

    // Predictions through the artifact match the JSON model exactly.
    std::fs::write(
        &query,
        "function f(a, b, c) { b.open('GET', a, false); b.send(c); }",
    )
    .unwrap();
    let predict = |model_path: &std::path::Path| {
        let out = pigeon()
            .args(["predict", "--model"])
            .arg(model_path)
            .arg(&query)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let from_json = predict(&model);
    assert_eq!(from_json, predict(&artifact));

    // The decision column: one predicted name per element. Quantization
    // may swap near-tied candidates deep in the top-k list, but the
    // chosen name must never move.
    let decisions = |stdout: &str| -> Vec<String> {
        stdout
            .lines()
            .map(|l| {
                l.split('→')
                    .nth(1)
                    .expect("prediction line")
                    .split('(')
                    .next()
                    .expect("name column")
                    .trim()
                    .to_owned()
            })
            .collect()
    };

    // Quantized artifacts keep the decisions; recompiling an artifact
    // (format sniffed on input) is byte-identical.
    for quant in ["f16", "i8"] {
        let quantized = dir.join(format!("model-{quant}.pgnc"));
        let out = pigeon()
            .args(["compile", "--quantize", quant])
            .arg(&model)
            .arg(&quantized)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            decisions(&from_json),
            decisions(&predict(&quantized)),
            "{quant} changed decisions"
        );

        let recompiled = dir.join(format!("model-{quant}-2.pgnc"));
        let out = pigeon()
            .args(["compile", "--quantize", quant])
            .arg(&quantized)
            .arg(&recompiled)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read(&quantized).unwrap(),
            std::fs::read(&recompiled).unwrap(),
            "{quant} recompile diverged"
        );
    }

    // `audit --model` understands the binary format.
    let out = pigeon()
        .args(["audit", "--model"])
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("artifact-layout"), "{text}");
    assert!(text.contains("checksums verified"), "{text}");

    // A corrupted artifact audits to a hard error, exit code 2.
    let mut tampered = bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x10;
    let bad = dir.join("tampered.pgnc");
    std::fs::write(&bad, &tampered).unwrap();
    let out = pigeon()
        .args(["audit", "--model"])
        .arg(&bad)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("artifact-format"), "{text}");

    // Unknown quantization names are rejected up front.
    let out = pigeon()
        .args(["compile", "--quantize", "f8"])
        .arg(&model)
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown quantization"));
}

#[test]
fn predict_with_missing_model_fails_cleanly() {
    let out = pigeon()
        .args(["predict", "--model", "/nonexistent/model.json", "x.js"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn train_requires_sources() {
    let out = pigeon()
        .args(["train", "--language", "js", "--out", "/tmp/never.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--synthetic"));
}

#[test]
fn shard_merge_matches_direct_train_byte_for_byte() {
    let dir = tmp_dir("shard");
    let direct = dir.join("direct.json");
    let merged = dir.join("merged.json");

    // The synthetic corpus is deterministic for a given --language and
    // --synthetic N, so every shard worker sees the same corpus — the
    // contract `pigeon merge` documents.
    let out = pigeon()
        .args(["train", "--language", "js", "--synthetic", "60", "--out"])
        .arg(&direct)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut parts = Vec::new();
    for i in 0..3 {
        let part = dir.join(format!("stats{i}.part"));
        let out = pigeon()
            .args([
                "train",
                "--language",
                "js",
                "--synthetic",
                "60",
                "--shard",
                &format!("{i}/3"),
                "--emit-partial",
            ])
            .arg(&part)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "shard {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(&std::fs::read(&part).unwrap()[..4], b"PGNC");
        parts.push(part);
    }

    let out = pigeon()
        .args(["merge", "--out"])
        .arg(&merged)
        .args(&parts)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&merged).unwrap(),
        "merged model differs from the single-process model"
    );
}

#[test]
fn shard_flags_validate_their_combinations() {
    let out = pigeon()
        .args([
            "train",
            "--language",
            "js",
            "--synthetic",
            "10",
            "--shard",
            "0/2",
            "--out",
            "/tmp/never.json",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--emit-partial"));

    let out = pigeon()
        .args([
            "train",
            "--language",
            "js",
            "--synthetic",
            "10",
            "--shard",
            "2/2",
            "--emit-partial",
            "/tmp/never.part",
            "--out",
            "/tmp/never.json",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

#[test]
fn merge_rejects_partials_from_different_configs() {
    let dir = tmp_dir("merge-mismatch");
    let a = dir.join("a.part");
    let b = dir.join("b.part");
    for (part, max_length, shard) in [(&a, "4", "0/2"), (&b, "5", "1/2")] {
        let out = pigeon()
            .args([
                "train",
                "--language",
                "js",
                "--synthetic",
                "12",
                "--max-length",
                max_length,
                "--shard",
                shard,
                "--emit-partial",
            ])
            .arg(part)
            .args(["--out", "/tmp/unused.json"])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = pigeon()
        .args(["merge", "--out"])
        .arg(dir.join("never.json"))
        .arg(&a)
        .arg(&b)
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("max_length"), "must name the knob: {err}");
}

#[test]
fn checkpointed_training_matches_plain_training_and_cleans_up() {
    let dir = tmp_dir("ckpt");
    let plain = dir.join("plain.json");
    let checkpointed = dir.join("checkpointed.json");
    let ckdir = dir.join("checkpoints");

    let out = pigeon()
        .args(["train", "--language", "js", "--synthetic", "40", "--out"])
        .arg(&plain)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = pigeon()
        .args([
            "train",
            "--language",
            "js",
            "--synthetic",
            "40",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
        ])
        .arg(&ckdir)
        .arg("--out")
        .arg(&checkpointed)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The checkpointed path produces the identical model…
    assert_eq!(
        std::fs::read(&plain).unwrap(),
        std::fs::read(&checkpointed).unwrap()
    );
    // …and a completed run removes its snapshot so a later --resume
    // cannot silently restart a finished run.
    assert!(!ckdir.join("checkpoint.pgnc").exists());
}

#[test]
fn audit_lints_partials_and_rejects_corrupt_ones() {
    let dir = tmp_dir("audit-partial");
    let part = dir.join("stats.part");
    let out = pigeon()
        .args([
            "train",
            "--language",
            "js",
            "--synthetic",
            "12",
            "--shard",
            "0/2",
            "--emit-partial",
        ])
        .arg(&part)
        .args(["--out", "/tmp/unused.json"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pigeon()
        .args(["audit", "--model"])
        .arg(&part)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "clean partial must audit clean: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shard 0/2"), "{text}");

    // A flipped byte must be denied (exit 2), not crash.
    let mut bytes = std::fs::read(&part).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let bad = dir.join("bad.part");
    std::fs::write(&bad, &bytes).unwrap();
    let out = pigeon()
        .args(["audit", "--model"])
        .arg(&bad)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "corrupt partial must be denied");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("partial-load"), "{text}");
}

#[test]
fn update_folds_new_documents_without_the_original_corpus() {
    let dir = tmp_dir("update");
    let base = dir.join("base.json");
    let updated = dir.join("updated.json");
    let new_docs = dir.join("new");

    let out = pigeon()
        .args(["train", "--language", "js", "--synthetic", "40", "--out"])
        .arg(&base)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = pigeon()
        .args([
            "generate",
            "--language",
            "js",
            "--files",
            "8",
            "--seed",
            "424242",
        ])
        .arg(&new_docs)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pigeon()
        .args(["train", "--update"])
        .arg(&base)
        .arg("--add")
        .arg(&new_docs)
        .arg("--out")
        .arg(&updated)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("folded 8 new files"), "{text}");
    assert_ne!(
        std::fs::read(&base).unwrap(),
        std::fs::read(&updated).unwrap()
    );
    // The updated model still loads and predicts.
    let query = dir.join("q.js");
    std::fs::write(&query, "function f() { var d = 0; d = d + 1; }").unwrap();
    let out = pigeon()
        .args(["predict", "--model"])
        .arg(&updated)
        .arg(&query)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// SIGINT during `pigeon train` must write a final checkpoint and exit
/// cleanly; resuming completes to the same model as an uninterrupted
/// run. Timing-tolerant: if training finishes before the signal lands,
/// the test still asserts model equality.
#[cfg(unix)]
#[test]
fn sigint_writes_a_final_checkpoint_and_resume_completes() {
    use std::process::Stdio;

    let dir = tmp_dir("sigint");
    let baseline = dir.join("baseline.json");
    let model = dir.join("model.json");
    let ckdir = dir.join("ck");

    let out = pigeon()
        .args(["train", "--language", "js", "--synthetic", "150", "--out"])
        .arg(&baseline)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = pigeon()
        .args([
            "train",
            "--language",
            "js",
            "--synthetic",
            "150",
            "--checkpoint-dir",
        ])
        .arg(&ckdir)
        .arg("--out")
        .arg(&model)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns");
    std::thread::sleep(std::time::Duration::from_millis(400));
    let _ = std::process::Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
    let status = child.wait().expect("waits");
    assert!(status.success(), "interrupted train must exit cleanly");

    if ckdir.join("checkpoint.pgnc").exists() {
        // Interrupted mid-run: resume against the same corpus + flags.
        let out = pigeon()
            .args([
                "train",
                "--language",
                "js",
                "--synthetic",
                "150",
                "--resume",
            ])
            .arg(&ckdir)
            .arg("--out")
            .arg(&model)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&baseline).unwrap(),
        std::fs::read(&model).unwrap(),
        "kill-and-resume must reproduce the uninterrupted model"
    );
}
