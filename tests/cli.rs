//! Integration tests for the `pigeon` CLI binary.

use std::process::Command;

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_lists_every_command() {
    let out = pigeon().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "paths",
        "generate",
        "train",
        "compile",
        "predict",
        "experiment",
        "serve",
    ] {
        assert!(text.contains(cmd), "help is missing `{cmd}`");
    }
}

/// Regression: flags used to be parsed permissively, so a typo like
/// `--max-legnth` was silently dropped and the default limit used
/// instead. Every subcommand must now reject flags it does not know.
#[test]
fn unknown_flags_are_rejected_not_ignored() {
    let cases: &[&[&str]] = &[
        &["paths", "--language", "js", "--max-legnth", "4", "x.js"],
        &["generate", "--language", "js", "--fils", "10", "/tmp/never"],
        &[
            "train",
            "--language",
            "js",
            "--output",
            "/tmp/never.json",
            "x.js",
        ],
        &["predict", "--model", "m.json", "--jobs", "2", "x.js"],
        &["experiment", "--language", "js", "--flies", "40"],
        &["serve", "--model", "m.json", "--prot", "8080"],
    ];
    for args in cases {
        let out = pigeon().args(*args).output().expect("runs");
        assert!(!out.status.success(), "accepted: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown flag") && err.contains("allowed:"),
            "unhelpful error for {args:?}: {err}"
        );
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = pigeon().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn paths_prints_the_fig1_path() {
    let dir = tmp_dir("paths");
    let file = dir.join("fig1.js");
    std::fs::write(&file, "while (!d) { if (someCondition()) { d = true; } }").unwrap();
    let out = pigeon()
        .args(["paths", "--language", "js"])
        .arg(&file)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("⟨d, SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef, d⟩"),
        "missing headline path in:\n{text}"
    );
}

#[test]
fn generate_train_predict_round_trip() {
    let dir = tmp_dir("pipeline");
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");
    let query = dir.join("query.js");

    let out = pigeon()
        .args(["generate", "--language", "js", "--files", "120"])
        .arg(&corpus_dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut train = pigeon();
    train
        .args(["train", "--language", "js", "--out"])
        .arg(&model);
    for entry in std::fs::read_dir(&corpus_dir).unwrap() {
        train.arg(entry.unwrap().path());
    }
    let out = train.output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    std::fs::write(
        &query,
        "function f(a, b, c) { b.open('GET', a, false); b.send(c); }",
    )
    .unwrap();
    let out = pigeon()
        .args(["predict", "--model"])
        .arg(&model)
        .arg(&query)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Three parameters predicted, each with candidates.
    assert_eq!(text.lines().count(), 3, "unexpected output:\n{text}");
    assert!(text.contains("top:"));
}

/// `pigeon compile` freezes a JSON model into the binary artifact;
/// `predict` and `audit` consume it interchangeably with the JSON, and
/// quantized variants keep the same decisions.
#[test]
fn compile_predict_audit_round_trip() {
    let dir = tmp_dir("compile");
    let model = dir.join("model.json");
    let artifact = dir.join("model.pgnc");
    let query = dir.join("query.js");

    let out = pigeon()
        .args(["train", "--language", "js", "--synthetic", "120", "--out"])
        .arg(&model)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pigeon()
        .args(["compile"])
        .arg(&model)
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("f32 quantization"), "{text}");
    let bytes = std::fs::read(&artifact).expect("artifact written");
    assert_eq!(&bytes[..4], b"PGNC");

    // Predictions through the artifact match the JSON model exactly.
    std::fs::write(
        &query,
        "function f(a, b, c) { b.open('GET', a, false); b.send(c); }",
    )
    .unwrap();
    let predict = |model_path: &std::path::Path| {
        let out = pigeon()
            .args(["predict", "--model"])
            .arg(model_path)
            .arg(&query)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let from_json = predict(&model);
    assert_eq!(from_json, predict(&artifact));

    // The decision column: one predicted name per element. Quantization
    // may swap near-tied candidates deep in the top-k list, but the
    // chosen name must never move.
    let decisions = |stdout: &str| -> Vec<String> {
        stdout
            .lines()
            .map(|l| {
                l.split('→')
                    .nth(1)
                    .expect("prediction line")
                    .split('(')
                    .next()
                    .expect("name column")
                    .trim()
                    .to_owned()
            })
            .collect()
    };

    // Quantized artifacts keep the decisions; recompiling an artifact
    // (format sniffed on input) is byte-identical.
    for quant in ["f16", "i8"] {
        let quantized = dir.join(format!("model-{quant}.pgnc"));
        let out = pigeon()
            .args(["compile", "--quantize", quant])
            .arg(&model)
            .arg(&quantized)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            decisions(&from_json),
            decisions(&predict(&quantized)),
            "{quant} changed decisions"
        );

        let recompiled = dir.join(format!("model-{quant}-2.pgnc"));
        let out = pigeon()
            .args(["compile", "--quantize", quant])
            .arg(&quantized)
            .arg(&recompiled)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read(&quantized).unwrap(),
            std::fs::read(&recompiled).unwrap(),
            "{quant} recompile diverged"
        );
    }

    // `audit --model` understands the binary format.
    let out = pigeon()
        .args(["audit", "--model"])
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("artifact-layout"), "{text}");
    assert!(text.contains("checksums verified"), "{text}");

    // A corrupted artifact audits to a hard error, exit code 2.
    let mut tampered = bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x10;
    let bad = dir.join("tampered.pgnc");
    std::fs::write(&bad, &tampered).unwrap();
    let out = pigeon()
        .args(["audit", "--model"])
        .arg(&bad)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("artifact-format"), "{text}");

    // Unknown quantization names are rejected up front.
    let out = pigeon()
        .args(["compile", "--quantize", "f8"])
        .arg(&model)
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown quantization"));
}

#[test]
fn predict_with_missing_model_fails_cleanly() {
    let out = pigeon()
        .args(["predict", "--model", "/nonexistent/model.json", "x.js"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn train_requires_sources() {
    let out = pigeon()
        .args(["train", "--language", "js", "--out", "/tmp/never.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--synthetic"));
}
