//! End-to-end tests for `pigeon serve`: a real model served over a real
//! TCP socket, exercised with hand-rolled HTTP/1.1 requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generates a synthetic corpus and trains a variable-naming model via
/// the CLI, returning the model path.
fn train_model(dir: &Path) -> PathBuf {
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");
    let out = pigeon()
        .args(["generate", "--language", "js", "--files", "100"])
        .arg(&corpus_dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut train = pigeon();
    train
        .args(["train", "--language", "js", "--out"])
        .arg(&model);
    for entry in std::fs::read_dir(&corpus_dir).unwrap() {
        train.arg(entry.unwrap().path());
    }
    let out = train.output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    model
}

/// Spawns `pigeon serve --port 0`, reads the startup line and returns
/// the child, the bound `host:port` address, and the stdout reader
/// (kept alive so the server's final summary has somewhere to go).
fn spawn_server(model: &Path, extra: &[&str]) -> (Child, String, BufReader<ChildStdout>) {
    spawn_server_env(model, extra, &[])
}

/// [`spawn_server`] with extra environment variables on the child.
fn spawn_server_env(
    model: &Path,
    extra: &[&str],
    envs: &[(&str, &str)],
) -> (Child, String, BufReader<ChildStdout>) {
    let mut child = pigeon()
        .args(["serve", "--model"])
        .arg(model)
        .args(["--port", "0"])
        .args(extra)
        .envs(envs.iter().copied())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in startup line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr, reader)
}

/// Sends one raw HTTP request and returns `(status_code, headers, body)`.
fn http_full(addr: &str, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(request.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

/// Sends one raw HTTP request and returns `(status_code, body)`.
fn http(addr: &str, request: &str) -> (u16, String) {
    let (status, _, body) = http_full(addr, request);
    (status, body)
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Like [`post`], but with a binary request body (artifact uploads).
fn post_bytes(addr: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("writes head");
    stream.write_all(body).expect("writes body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

fn get_full(addr: &str, path: &str) -> (u16, String, String) {
    http_full(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

const QUERY: &str = r#"{"source": "function f(a, b, c) { b.open(0, a, false); b.send(c); }"}"#;

/// A client that keeps one connection open across requests, framing
/// responses by `Content-Length` (reading to EOF would block forever on
/// a keep-alive socket).
struct KeepAliveClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    addr: String,
}

impl KeepAliveClient {
    fn connect(addr: &str) -> Self {
        let writer = TcpStream::connect(addr).expect("connects");
        let reader = BufReader::new(writer.try_clone().expect("clones stream"));
        KeepAliveClient {
            writer,
            reader,
            addr: addr.to_owned(),
        }
    }

    /// Reads one framed response off the socket: `(status, headers, body)`.
    fn read_response(&mut self) -> (u16, String, String) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("reads header");
            assert!(n > 0, "peer closed mid-response; head so far: {head:?}");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                if name.eq_ignore_ascii_case("content-length") {
                    value.trim().parse().ok()
                } else {
                    None
                }
            })
            .expect("Content-Length header");
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body).expect("reads body");
        (status, head, String::from_utf8(body).expect("UTF-8 body"))
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, String, String) {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        self.writer.write_all(raw.as_bytes()).expect("writes");
        self.read_response()
    }

    fn get(&mut self, path: &str) -> (u16, String, String) {
        let raw = format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.addr);
        self.writer.write_all(raw.as_bytes()).expect("writes");
        self.read_response()
    }

    /// Like [`KeepAliveClient::get`] but asks the server to close.
    fn get_closing(&mut self, path: &str) -> (u16, String, String) {
        let raw = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        );
        self.writer.write_all(raw.as_bytes()).expect("writes");
        self.read_response()
    }

    /// Everything left on the socket until the peer closes it.
    fn drain(mut self) -> String {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).expect("drains");
        rest
    }
}

/// Extracts an integer field from a `/v1/stats` JSON body.
fn stat_u64(stats: &str, field: &str) -> u64 {
    stats
        .split(&format!("\"{field}\":"))
        .nth(1)
        .and_then(|rest| rest.split([',', '}', ']']).next())
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no numeric {field} in {stats}"))
}

/// Extracts a plain (unlabelled) sample value from a Prometheus
/// exposition.
fn metric_u64(metrics: &str, series: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no series {series} in:\n{metrics}"))
}

#[test]
fn serve_predicts_and_reports_stats() {
    let dir = tmp_dir("e2e");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60"]);

    let (status, body) = get(&addr, "/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\""));

    let (status, body) = post(&addr, "/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"predictions\""),
        "missing predictions: {body}"
    );
    // The query has three unknown parameters; each prediction carries a
    // candidate list and a top pick.
    assert_eq!(body.matches("\"predicted_name\"").count(), 3, "{body}");
    assert_eq!(body.matches("\"candidates\"").count(), 3, "{body}");

    // Batch endpoint: one good program, one broken one; the broken one
    // becomes a per-source error without failing the whole request.
    let (status, body) = post(
        &addr,
        "/predict_batch",
        r#"{"sources": ["function g(x) { return x; }", "not valid js ((("]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"results\""), "{body}");
    assert!(body.contains("\"predictions\""), "{body}");
    assert!(body.contains("\"error\""), "{body}");

    // Error routes are reported as JSON and counted.
    let (status, _) = get(&addr, "/no-such-route");
    assert_eq!(status, 404);
    let (status, body) = post(&addr, "/predict", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(&addr, "/predict", r#"{"source": "function ((("}"#);
    assert_eq!(status, 422, "{body}");

    let (status, stats) = get(&addr, "/stats");
    assert_eq!(status, 200, "{stats}");
    for field in [
        "\"requests_total\"",
        "\"errors_total\"",
        "\"predict_requests_total\"",
        "\"predictions_total\"",
        "\"latency_micros_mean\"",
        "\"latency_micros_p50\"",
        "\"latency_micros_p95\"",
        "\"latency_micros_p99\"",
        "\"latency_micros_max\"",
        "\"predictions_per_sec\"",
        "\"uptime_secs\"",
    ] {
        assert!(stats.contains(field), "missing {field} in {stats}");
    }
    // Percentiles come from real samples and are ordered: p50 ≤ p95 ≤
    // p99 ≤ max, with p50 > 0 after two timed predict requests.
    let micros = |field: &str| -> u64 {
        stats
            .split(&format!("\"{field}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no numeric {field} in {stats}"))
    };
    let (p50, p95, p99, max) = (
        micros("latency_micros_p50"),
        micros("latency_micros_p95"),
        micros("latency_micros_p99"),
        micros("latency_micros_max"),
    );
    assert!(p50 > 0, "{stats}");
    assert!(p50 <= p95 && p95 <= p99 && p99 <= max, "{stats}");

    // /predict (3 names) + the good half of /predict_batch (1 name).
    assert!(stats.contains("\"predictions_total\":4"), "{stats}");
    // 404 + bad JSON + unparseable program.
    assert!(stats.contains("\"errors_total\":3"), "{stats}");

    child.kill().expect("kills");
    let _ = child.wait();
}

#[test]
fn serve_answers_concurrent_requests() {
    let dir = tmp_dir("concurrent");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60", "--jobs", "2"]);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    for _ in 0..3 {
                        let (status, body) = post(&addr, "/predict", QUERY);
                        assert_eq!(status, 200, "{body}");
                        assert!(body.contains("\"predictions\""), "{body}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let (status, stats) = get(&addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"predict_requests_total\":12"), "{stats}");
    assert!(stats.contains("\"errors_total\":0"), "{stats}");

    child.kill().expect("kills");
    let _ = child.wait();
}

#[test]
fn serve_exits_cleanly_on_idle_timeout() {
    let dir = tmp_dir("idle");
    let model = train_model(&dir);
    let (mut child, addr, mut stdout) = spawn_server(&model, &["--idle-timeout", "1"]);
    let (status, _) = get(&addr, "/health");
    assert_eq!(status, 200);

    let deadline = Instant::now() + Duration::from_secs(30);
    let code = loop {
        if let Some(code) = child.try_wait().expect("try_wait") {
            break code;
        }
        assert!(Instant::now() < deadline, "server never idled out");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(code.success(), "idle shutdown should exit 0, got {code:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("summary");
    assert!(
        rest.contains("shut down after"),
        "missing shutdown summary: {rest:?}"
    );
}

#[test]
fn serve_rejects_oversized_requests() {
    let dir = tmp_dir("limits");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &["--idle-timeout", "60", "--max-request-bytes", "256"],
    );
    let big = format!(r#"{{"source": "{}"}}"#, "x".repeat(1024));
    let (status, body) = post(&addr, "/predict", &big);
    assert_eq!(status, 413, "{body}");
    // The server survives and keeps answering.
    let (status, _) = get(&addr, "/health");
    assert_eq!(status, 200);
    child.kill().expect("kills");
    let _ = child.wait();
}

/// Pins the v1 API contract: versioned paths, the `"api"` field on every
/// JSON body, stable machine-readable error codes, the `Deprecation`
/// header on pre-versioning aliases, and the Prometheus exposition.
#[test]
fn serve_v1_api_contract() {
    let dir = tmp_dir("v1");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60"]);

    // Every v1 JSON response carries the API version; the serde map is
    // sorted, so `"api"` renders first.
    let (status, head, body) = get_full(&addr, "/v1/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with(r#"{"api":"pigeon/1""#), "{body}");
    assert!(body.contains("\"ok\""), "{body}");
    assert!(
        !head.contains("Deprecation"),
        "v1 is not deprecated: {head}"
    );

    let (status, body) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"api\":\"pigeon/1\""), "{body}");
    assert!(body.contains("\"predictions\""), "{body}");

    let (status, body) = post(
        &addr,
        "/v1/predict_batch",
        r#"{"sources": ["function g(x) { return x; }", "not valid js ((("]}"#,
    );
    assert_eq!(status, 200, "{body}");
    // The broken source reports an inline error with a stable code.
    assert!(body.contains("\"code\":\"parse\""), "{body}");

    let (status, body) = get(&addr, "/v1/stats");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"api\":\"pigeon/1\""), "{body}");
    assert!(body.contains("\"requests_total\""), "{body}");

    // Error bodies carry machine-readable codes per kind.
    let (status, body) = post(&addr, "/v1/predict", "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad-request\""), "{body}");
    let (status, body) = post(&addr, "/v1/predict", r#"{"source": "function ((("}"#);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"code\":\"parse\""), "{body}");
    let (status, body) = get(&addr, "/no-such-route");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"code\":\"not-found\""), "{body}");

    // Pre-versioning paths still answer, flagged deprecated; their
    // bodies match the v1 schema.
    for path in ["/predict", "/stats", "/health", "/metrics"] {
        let (status, head, body) = match path {
            "/predict" => {
                let (s, h, b) = http_full(
                    &addr,
                    &format!(
                        "POST /predict HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
                         Connection: close\r\n\r\n{QUERY}",
                        QUERY.len()
                    ),
                );
                (s, h, b)
            }
            _ => get_full(&addr, path),
        };
        assert_eq!(status, 200, "{path}: {body}");
        assert!(
            head.contains("Deprecation: true"),
            "{path} must signal deprecation: {head}"
        );
        // RFC 8594: deprecated responses also announce when the alias
        // goes away.
        assert!(
            head.contains("Sunset: "),
            "{path} must carry a Sunset date: {head}"
        );
    }
    // v1 paths never carry the Sunset header.
    let (_, head, _) = get_full(&addr, "/v1/health");
    assert!(!head.contains("Sunset"), "{head}");

    // The Prometheus exposition: request counters by endpoint and
    // status, the predict latency histogram, and content-type framing.
    let (status, head, metrics) = get_full(&addr, "/v1/metrics");
    assert_eq!(status, 200, "{metrics}");
    assert!(head.contains("Content-Type: text/plain"), "{head}");
    for needle in [
        "# TYPE pigeon_http_requests_total counter",
        "pigeon_http_requests_total{endpoint=\"/v1/predict\",status=\"200\"}",
        "pigeon_http_requests_total{endpoint=\"/v1/predict\",status=\"400\"}",
        "pigeon_http_requests_total{endpoint=\"other\",status=\"404\"}",
        "# TYPE pigeon_predict_latency_micros histogram",
        "pigeon_predict_latency_micros_bucket",
        "le=\"+Inf\"",
        "pigeon_predictions_total",
        // The four deprecated-alias requests above must be counted.
        "pigeon_deprecated_requests_total 4",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    child.kill().expect("kills");
    let _ = child.wait();
}

/// HTTP/1.1 keep-alive: many requests over one socket answer
/// byte-identically to fresh-connection requests, the server advertises
/// `Connection: keep-alive`, honours `Connection: close`, and enforces
/// `--max-conn-requests` / `--keep-alive false`.
#[test]
fn serve_keep_alive_reuses_connections() {
    let dir = tmp_dir("keepalive");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60"]);

    // Baseline: one fresh connection (connection #1).
    let (status, baseline) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{baseline}");

    // Five predicts over ONE socket (connection #2); every body must be
    // byte-identical to the fresh-connection answer.
    let mut client = KeepAliveClient::connect(&addr);
    for i in 0..5 {
        let (status, head, body) = client.post("/v1/predict", QUERY);
        assert_eq!(status, 200, "request {i}: {body}");
        assert!(
            head.contains("Connection: keep-alive"),
            "request {i} must keep the connection open: {head}"
        );
        assert_eq!(
            body, baseline,
            "request {i} differs from fresh-connection run"
        );
    }
    let (status, _, stats) = client.get("/v1/stats");
    assert_eq!(status, 200);
    assert_eq!(
        stat_u64(&stats, "connections_total"),
        2,
        "6 keep-alive requests must reuse one connection: {stats}"
    );
    assert_eq!(stat_u64(&stats, "requests_total"), 7, "{stats}");

    // `Connection: close` is honoured: the response says close and the
    // server then shuts the socket (drain sees EOF, no stray bytes).
    let (status, head, _) = client.get_closing("/v1/health");
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    assert_eq!(client.drain(), "", "no bytes may follow the final response");

    child.kill().expect("kills");
    let _ = child.wait();

    // --max-conn-requests 2: the second response on a connection closes it.
    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &["--idle-timeout", "60", "--max-conn-requests", "2"],
    );
    let mut client = KeepAliveClient::connect(&addr);
    let (_, head, _) = client.get("/v1/health");
    assert!(head.contains("Connection: keep-alive"), "{head}");
    let (_, head, _) = client.get("/v1/health");
    assert!(
        head.contains("Connection: close"),
        "request cap must close: {head}"
    );
    assert_eq!(client.drain(), "");
    child.kill().expect("kills");
    let _ = child.wait();

    // --keep-alive false restores one-request-per-connection.
    let (mut child, addr, _stdout) =
        spawn_server(&model, &["--idle-timeout", "60", "--keep-alive", "false"]);
    let mut client = KeepAliveClient::connect(&addr);
    let (status, head, _) = client.get("/v1/health");
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    assert_eq!(client.drain(), "");
    child.kill().expect("kills");
    let _ = child.wait();
}

/// A read timeout **between** keep-alive requests closes the connection
/// silently (no 408 written into the idle socket); a timeout
/// **mid-request** still answers 408.
#[test]
fn serve_idle_keep_alive_timeout_closes_silently() {
    let dir = tmp_dir("idle-ka");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &["--idle-timeout", "60", "--read-timeout-ms", "300"],
    );

    // One full request, then park the connection past the read timeout:
    // the server must close with zero further bytes.
    let mut client = KeepAliveClient::connect(&addr);
    let (status, _, _) = client.get("/v1/health");
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(900));
    assert_eq!(
        client.drain(),
        "",
        "an idle keep-alive connection must close without a 408 body"
    );

    // A *partial* request that stalls is a real timeout: 408, coded.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(b"POST /v1/predict HT")
        .expect("writes partial request line");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "stalled mid-request must answer 408: {response:?}"
    );
    assert!(response.contains("\"code\":\"timeout\""), "{response}");
    assert!(response.contains("\"api\":\"pigeon/1\""), "{response}");

    // The server is still healthy afterwards.
    let (status, _) = get(&addr, "/v1/health");
    assert_eq!(status, 200);
    child.kill().expect("kills");
    let _ = child.wait();
}

/// Concurrent predicts coalesce into micro-batches: with N clients in
/// flight the admission queue hands the batcher fewer `predict_batch`
/// calls than requests, while every client still gets the byte-exact
/// single-predict answer.
#[test]
fn serve_coalesces_concurrent_predicts_into_micro_batches() {
    let dir = tmp_dir("batch");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &[
            "--idle-timeout",
            "60",
            "--jobs",
            "8",
            "--batch-wait-ms",
            "50",
        ],
    );
    let (status, baseline) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{baseline}");

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 2;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let baseline = baseline.as_str();
                scope.spawn(move || {
                    let mut client = KeepAliveClient::connect(&addr);
                    for _ in 0..ROUNDS {
                        let (status, _, body) = client.post("/v1/predict", QUERY);
                        assert_eq!(status, 200, "{body}");
                        assert_eq!(body, baseline, "batched answer must match solo answer");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let (status, metrics) = get(&addr, "/v1/metrics");
    assert_eq!(status, 200);
    let total = (CLIENTS * ROUNDS + 1) as u64; // +1 for the baseline request
    assert_eq!(
        metric_u64(&metrics, "pigeon_batch_size_sum"),
        total,
        "every queued job lands in exactly one batch"
    );
    let batches = metric_u64(&metrics, "pigeon_batch_size_count");
    assert!(
        batches <= total / 2 + 1,
        "{CLIENTS} concurrent clients must coalesce: {batches} batches for {total} requests\n{metrics}"
    );
    assert_eq!(metric_u64(&metrics, "pigeon_queue_depth"), 0);

    child.kill().expect("kills");
    let _ = child.wait();
}

/// A full admission queue answers `429` + `Retry-After` with the stable
/// code `overloaded` instead of queueing unbounded work — and the
/// rejected client can come back.
#[test]
fn serve_backpressure_returns_429_when_queue_is_full() {
    let dir = tmp_dir("backpressure");
    let model = train_model(&dir);
    // queue-cap 1 and a long companion wait: the first predict sits in
    // the queue while the batcher waits for companions, so a second
    // predict deterministically finds the queue full.
    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &[
            "--idle-timeout",
            "60",
            "--jobs",
            "4",
            "--queue-cap",
            "1",
            "--batch-wait-ms",
            "1500",
        ],
    );

    std::thread::scope(|scope| {
        let first = scope.spawn(|| post(&addr, "/v1/predict", QUERY));
        // Give the first request time to enter the queue.
        std::thread::sleep(Duration::from_millis(400));
        let (status, head, body) = http_full(
            &addr,
            &format!(
                "POST /v1/predict HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{QUERY}",
                QUERY.len()
            ),
        );
        assert_eq!(status, 429, "{body}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        assert!(body.contains("\"code\":\"overloaded\""), "{body}");
        assert!(body.contains("\"api\":\"pigeon/1\""), "{body}");
        // The queued request is unharmed by the rejection next to it.
        let (status, body) = first.join().expect("first client");
        assert_eq!(status, 200, "{body}");
    });

    // Once the queue drains, predicts are accepted again.
    let (status, body) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    let (_, stats) = get(&addr, "/v1/stats");
    assert_eq!(stat_u64(&stats, "rejected_total"), 1, "{stats}");

    child.kill().expect("kills");
    let _ = child.wait();
}

/// Hot model swap under live traffic: `POST /v1/models` activates a new
/// version with zero failed requests, old and new versions both show up
/// in the `/v1/stats` per-model slices, and `GET /v1/models` lists them.
#[test]
fn serve_hot_swaps_models_without_dropping_requests() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let dir = tmp_dir("hotswap");
    let model = train_model(&dir);
    // A second, independently trained model to swap in.
    let corpus2 = dir.join("corpus2");
    let model2 = dir.join("model2.json");
    let out = pigeon()
        .args([
            "generate",
            "--language",
            "js",
            "--files",
            "60",
            "--seed",
            "7",
        ])
        .arg(&corpus2)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let mut train = pigeon();
    train
        .args(["train", "--language", "js", "--out"])
        .arg(&model2);
    for entry in std::fs::read_dir(&corpus2).unwrap() {
        train.arg(entry.unwrap().path());
    }
    assert!(train.output().expect("runs").status.success());
    let model2_json = std::fs::read_to_string(&model2).expect("model JSON");

    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &[
            "--idle-timeout",
            "60",
            "--jobs",
            "4",
            "--max-request-bytes",
            "33554432",
        ],
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Continuous load across the swap; every single answer must be 200.
        let load: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = KeepAliveClient::connect(&addr);
                    let mut served = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let (status, _, body) = client.post("/v1/predict", QUERY);
                        assert_eq!(status, 200, "mid-swap failure: {body}");
                        served += 1;
                    }
                    served
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(300));
        let (status, body) = post(&addr, "/v1/models", &model2_json);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"version\":2"), "{body}");
        assert!(body.contains("\"active\":true"), "{body}");
        std::thread::sleep(Duration::from_millis(300));

        stop.store(true, Ordering::Relaxed);
        let served: usize = load
            .into_iter()
            .map(|h| h.join().expect("load thread"))
            .sum();
        assert!(served > 0, "load threads must have run across the swap");
    });

    // Both versions are listed; version 2 is active.
    let (status, body) = get(&addr, "/v1/models");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"active_version\":2"), "{body}");
    assert!(body.contains("\"origin\":\"startup\""), "{body}");
    assert!(body.contains("\"origin\":\"api\""), "{body}");

    // Per-model stats: both versions served traffic (the load ran on
    // either side of the swap).
    let (_, stats) = get(&addr, "/v1/stats");
    let models_json = stats.split("\"models\":").nth(1).expect("models slice");
    let mut slices = models_json.split("\"version\":").skip(1);
    let v1 = slices.next().expect("version 1 slice");
    let v2 = slices.next().expect("version 2 slice");
    assert!(
        stat_u64(v1, "predict_requests_total") > 0,
        "version 1 served traffic before the swap: {stats}"
    );
    assert!(
        stat_u64(v2, "predict_requests_total") > 0,
        "version 2 served traffic after the swap: {stats}"
    );
    let (_, metrics) = get(&addr, "/v1/metrics");
    assert_eq!(metric_u64(&metrics, "pigeon_model_swaps_total"), 1);

    // A garbage model body is refused with a coded 400 — and does NOT
    // replace the active model.
    let (status, body) = post(&addr, "/v1/models", "{not a model");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":"), "{body}");
    let (_, body) = get(&addr, "/v1/models");
    assert!(body.contains("\"active_version\":2"), "{body}");

    child.kill().expect("kills");
    let _ = child.wait();
}

/// Regression for the poisoned-lock DoS: a handler that panics while
/// holding the latency reservoir answers a contract-conformant 500, and
/// the server keeps serving predicts and stats afterwards (the poisoned
/// mutex is recovered, not propagated forever).
#[test]
fn serve_recovers_from_a_poisoning_panic() {
    let dir = tmp_dir("chaos");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) =
        spawn_server_env(&model, &["--idle-timeout", "60"], &[("PIGEON_CHAOS", "1")]);

    // Trip the chaos endpoint: it panics while holding the reservoir.
    let (status, body) = post(&addr, "/v1/_chaos/poison", "{}");
    assert_eq!(status, 500, "{body}");
    assert!(body.starts_with(r#"{"api":"pigeon/1""#), "{body}");
    assert!(body.contains("\"code\":\"internal\""), "{body}");

    // The lock is now poisoned; both access sites must keep working.
    for _ in 0..3 {
        let (status, body) = post(&addr, "/v1/predict", QUERY);
        assert_eq!(status, 200, "predict after poisoning: {body}");
    }
    let (status, stats) = get(&addr, "/v1/stats");
    assert_eq!(status, 200, "stats after poisoning: {stats}");
    assert_eq!(stat_u64(&stats, "predict_requests_total"), 3, "{stats}");
    assert!(stat_u64(&stats, "latency_micros_p50") > 0, "{stats}");

    child.kill().expect("kills");
    let _ = child.wait();

    // Without PIGEON_CHAOS=1 the endpoint does not exist.
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60"]);
    let (status, _) = post(&addr, "/v1/_chaos/poison", "{}");
    assert_eq!(status, 404);
    child.kill().expect("kills");
    let _ = child.wait();
}

/// `POST /v1/models` accepts the compiled binary artifact byte-for-byte
/// (content-sniffed by magic), swaps it in as a new active version, and
/// answers 400 with a stable code — keeping the old model — for
/// corrupted artifacts and for JSON models that smuggle non-finite
/// weights through `1e999`.
#[test]
fn serve_hot_swaps_a_binary_artifact_and_rejects_poisoned_uploads() {
    let dir = tmp_dir("artifact-swap");
    let model = train_model(&dir);
    let artifact_path = dir.join("model.pgnc");
    let out = pigeon()
        .args(["compile", "--quantize", "i8"])
        .arg(&model)
        .arg(&artifact_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let artifact = std::fs::read(&artifact_path).expect("reads artifact");
    assert_eq!(&artifact[..4], b"PGNC");

    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &["--idle-timeout", "60", "--max-request-bytes", "33554432"],
    );
    let (status, body) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"model_version\":1"), "{body}");

    // Binary hot swap: raw artifact bytes straight onto the wire.
    let (status, body) = post_bytes(&addr, "/v1/models", &artifact);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\":2"), "{body}");
    assert!(body.contains("\"format\":\"artifact\""), "{body}");
    assert!(body.contains("\"active\":true"), "{body}");
    let (status, body) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"model_version\":2"), "{body}");

    // A bit-flipped artifact is a coded 400, not a panic and not a swap.
    let mut tampered = artifact.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    let (status, body) = post_bytes(&addr, "/v1/models", &tampered);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"model-format\""), "{body}");

    // A truncated artifact likewise.
    let (status, body) = post_bytes(&addr, "/v1/models", &artifact[..64]);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"model-format\""), "{body}");

    // A JSON model whose weight table hides an infinity behind `1e999`
    // parses fine but must fail validation with the same stable code.
    let poisoned = r#"{"language":"js","target":"variables","abstraction":"full",
        "max_length":7,"max_width":3,"semi_paths":true,"top_k":5,
        "labels":["a","b"],"features":["f0"],
        "model":"{\"pair_weights\":[[0,0,1,1e999]],\"unary_weights\":[],\"label_counts\":[1,1],\"candidates\":[],\"global_candidates\":[0],\"max_candidates\":4,\"max_passes\":4}"}"#;
    let (status, body) = post(&addr, "/v1/models", poisoned);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"model-format\""), "{body}");
    assert!(body.contains("model-nonfinite-weight"), "{body}");

    // None of the rejected uploads displaced the artifact model.
    let (_, body) = get(&addr, "/v1/models");
    assert!(body.contains("\"active_version\":2"), "{body}");
    let (status, body) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"model_version\":2"), "{body}");

    child.kill().expect("kills");
    let _ = child.wait();
}

/// The deterministic metric families are byte-identical whatever
/// `--jobs` is: shard merging and serial traffic leave no thread-count
/// fingerprint in the exposition (timing families excluded, they
/// genuinely vary).
#[test]
fn serve_metrics_deterministic_families_are_jobs_invariant() {
    const FAMILIES: &[&str] = &[
        "pigeon_http_requests_total",
        "pigeon_connections_total",
        "pigeon_requests_total",
        "pigeon_request_errors_total",
        "pigeon_predictions_total",
        "pigeon_batch_size",
        "pigeon_queue_depth",
        "pigeon_queue_rejected_total",
        "pigeon_model_swaps_total",
    ];
    let dir = tmp_dir("jobs-invariant");
    let model = train_model(&dir);
    let run = |jobs: &str| -> String {
        let (mut child, addr, _stdout) =
            spawn_server(&model, &["--idle-timeout", "60", "--jobs", jobs]);
        // An identical serial request sequence on every server.
        for _ in 0..2 {
            let (status, _) = post(&addr, "/v1/predict", QUERY);
            assert_eq!(status, 200);
        }
        let (status, _) = post(&addr, "/v1/predict", "{not json");
        assert_eq!(status, 400);
        let (status, _) = get(&addr, "/no-such-route");
        assert_eq!(status, 404);
        let (status, metrics) = get(&addr, "/v1/metrics");
        assert_eq!(status, 200);
        child.kill().expect("kills");
        let _ = child.wait();
        metrics
            .lines()
            .filter(|l| FAMILIES.iter().any(|f| l.contains(f)))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(
        serial.contains("pigeon_batch_size_sum"),
        "filter must keep the batch family: {serial}"
    );
    assert_eq!(
        serial, parallel,
        "deterministic families must not depend on --jobs"
    );
}

/// Manual throughput report backing the EXPERIMENTS.md table: run with
/// `cargo test --release --test serve -- --ignored --nocapture`.
#[test]
#[ignore]
fn throughput_report() {
    use pigeon::corpus::{generate, CorpusConfig, Language};
    use pigeon::{Pigeon, PigeonConfig};

    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(400),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let (train, queries) = sources.split_at(300);
    let namer = Pigeon::train_variable_namer(Language::JavaScript, train, &PigeonConfig::default())
        .expect("trains");

    let t = Instant::now();
    let serial: usize = queries
        .iter()
        .map(|s| namer.predict(s).map(|p| p.len()).unwrap_or(0))
        .sum();
    let serial_secs = t.elapsed().as_secs_f64();
    println!(
        "serial:        {} programs, {serial} predictions in {serial_secs:.3}s \
         ({:.0} programs/s)",
        queries.len(),
        queries.len() as f64 / serial_secs
    );

    for jobs in [1usize, 4] {
        let t = Instant::now();
        let batch: usize = namer
            .predict_batch(queries, jobs)
            .into_iter()
            .map(|r| r.map(|p| p.len()).unwrap_or(0))
            .sum();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(batch, serial);
        println!(
            "batch jobs={jobs}:  {} programs in {secs:.3}s ({:.0} programs/s)",
            queries.len(),
            queries.len() as f64 / secs
        );
    }

    let dir = tmp_dir("throughput");
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, namer.to_json().expect("serialises")).unwrap();
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| serde_json::to_string(&serde_json::json!({ "source": *q })).unwrap())
        .collect();
    let (mut child, addr, _stdout) = spawn_server(&model_path, &["--idle-timeout", "60"]);

    // One connection per request (the pre-keep-alive behaviour).
    let t = Instant::now();
    for body in &bodies {
        let (status, _) = post(&addr, "/predict", body);
        assert!(status == 200 || status == 422);
    }
    let secs = t.elapsed().as_secs_f64();
    println!(
        "served close:  {} programs in {secs:.3}s ({:.0} programs/s, one conn each)",
        bodies.len(),
        bodies.len() as f64 / secs
    );

    // One keep-alive connection, serial requests.
    let mut client = KeepAliveClient::connect(&addr);
    let t = Instant::now();
    for body in &bodies {
        let (status, _, _) = client.post("/v1/predict", body);
        assert!(status == 200 || status == 422);
    }
    let secs = t.elapsed().as_secs_f64();
    println!(
        "served ka:     {} programs in {secs:.3}s ({:.0} programs/s, keep-alive serial)",
        bodies.len(),
        bodies.len() as f64 / secs
    );
    // Release the connection before the concurrent phase — a parked
    // keep-alive socket occupies a connection worker until it times out.
    drop(client);

    // Keep-alive with concurrent clients: requests coalesce into
    // micro-batches through the admission queue.
    let clients = 4usize;
    let t = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut client = KeepAliveClient::connect(&addr);
                    for body in bodies.iter().skip(c).step_by(clients) {
                        let (status, _, _) = client.post("/v1/predict", body);
                        assert!(status == 200 || status == 422);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
    });
    let secs = t.elapsed().as_secs_f64();
    println!(
        "served ka+mb:  {} programs in {secs:.3}s ({:.0} programs/s, {clients} keep-alive clients)",
        bodies.len(),
        bodies.len() as f64 / secs
    );
    let (_, metrics) = get(&addr, "/v1/metrics");
    println!(
        "micro-batches: {} batches for {} batched jobs",
        metric_u64(&metrics, "pigeon_batch_size_count"),
        metric_u64(&metrics, "pigeon_batch_size_sum"),
    );
    child.kill().expect("kills");
    let _ = child.wait();
}
