//! End-to-end tests for `pigeon serve`: a real model served over a real
//! TCP socket, exercised with hand-rolled HTTP/1.1 requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generates a synthetic corpus and trains a variable-naming model via
/// the CLI, returning the model path.
fn train_model(dir: &Path) -> PathBuf {
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");
    let out = pigeon()
        .args(["generate", "--language", "js", "--files", "100"])
        .arg(&corpus_dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut train = pigeon();
    train
        .args(["train", "--language", "js", "--out"])
        .arg(&model);
    for entry in std::fs::read_dir(&corpus_dir).unwrap() {
        train.arg(entry.unwrap().path());
    }
    let out = train.output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    model
}

/// Spawns `pigeon serve --port 0`, reads the startup line and returns
/// the child, the bound `host:port` address, and the stdout reader
/// (kept alive so the server's final summary has somewhere to go).
fn spawn_server(model: &Path, extra: &[&str]) -> (Child, String, BufReader<ChildStdout>) {
    let mut child = pigeon()
        .args(["serve", "--model"])
        .arg(model)
        .args(["--port", "0"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in startup line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr, reader)
}

/// Sends one raw HTTP request and returns `(status_code, headers, body)`.
fn http_full(addr: &str, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(request.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

/// Sends one raw HTTP request and returns `(status_code, body)`.
fn http(addr: &str, request: &str) -> (u16, String) {
    let (status, _, body) = http_full(addr, request);
    (status, body)
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

fn get_full(addr: &str, path: &str) -> (u16, String, String) {
    http_full(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

const QUERY: &str = r#"{"source": "function f(a, b, c) { b.open(0, a, false); b.send(c); }"}"#;

#[test]
fn serve_predicts_and_reports_stats() {
    let dir = tmp_dir("e2e");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60"]);

    let (status, body) = get(&addr, "/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\""));

    let (status, body) = post(&addr, "/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"predictions\""),
        "missing predictions: {body}"
    );
    // The query has three unknown parameters; each prediction carries a
    // candidate list and a top pick.
    assert_eq!(body.matches("\"predicted_name\"").count(), 3, "{body}");
    assert_eq!(body.matches("\"candidates\"").count(), 3, "{body}");

    // Batch endpoint: one good program, one broken one; the broken one
    // becomes a per-source error without failing the whole request.
    let (status, body) = post(
        &addr,
        "/predict_batch",
        r#"{"sources": ["function g(x) { return x; }", "not valid js ((("]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"results\""), "{body}");
    assert!(body.contains("\"predictions\""), "{body}");
    assert!(body.contains("\"error\""), "{body}");

    // Error routes are reported as JSON and counted.
    let (status, _) = get(&addr, "/no-such-route");
    assert_eq!(status, 404);
    let (status, body) = post(&addr, "/predict", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(&addr, "/predict", r#"{"source": "function ((("}"#);
    assert_eq!(status, 422, "{body}");

    let (status, stats) = get(&addr, "/stats");
    assert_eq!(status, 200, "{stats}");
    for field in [
        "\"requests_total\"",
        "\"errors_total\"",
        "\"predict_requests_total\"",
        "\"predictions_total\"",
        "\"latency_micros_mean\"",
        "\"latency_micros_p50\"",
        "\"latency_micros_p95\"",
        "\"latency_micros_p99\"",
        "\"latency_micros_max\"",
        "\"predictions_per_sec\"",
        "\"uptime_secs\"",
    ] {
        assert!(stats.contains(field), "missing {field} in {stats}");
    }
    // Percentiles come from real samples and are ordered: p50 ≤ p95 ≤
    // p99 ≤ max, with p50 > 0 after two timed predict requests.
    let micros = |field: &str| -> u64 {
        stats
            .split(&format!("\"{field}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no numeric {field} in {stats}"))
    };
    let (p50, p95, p99, max) = (
        micros("latency_micros_p50"),
        micros("latency_micros_p95"),
        micros("latency_micros_p99"),
        micros("latency_micros_max"),
    );
    assert!(p50 > 0, "{stats}");
    assert!(p50 <= p95 && p95 <= p99 && p99 <= max, "{stats}");

    // /predict (3 names) + the good half of /predict_batch (1 name).
    assert!(stats.contains("\"predictions_total\":4"), "{stats}");
    // 404 + bad JSON + unparseable program.
    assert!(stats.contains("\"errors_total\":3"), "{stats}");

    child.kill().expect("kills");
    let _ = child.wait();
}

#[test]
fn serve_answers_concurrent_requests() {
    let dir = tmp_dir("concurrent");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60", "--jobs", "2"]);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    for _ in 0..3 {
                        let (status, body) = post(&addr, "/predict", QUERY);
                        assert_eq!(status, 200, "{body}");
                        assert!(body.contains("\"predictions\""), "{body}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let (status, stats) = get(&addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"predict_requests_total\":12"), "{stats}");
    assert!(stats.contains("\"errors_total\":0"), "{stats}");

    child.kill().expect("kills");
    let _ = child.wait();
}

#[test]
fn serve_exits_cleanly_on_idle_timeout() {
    let dir = tmp_dir("idle");
    let model = train_model(&dir);
    let (mut child, addr, mut stdout) = spawn_server(&model, &["--idle-timeout", "1"]);
    let (status, _) = get(&addr, "/health");
    assert_eq!(status, 200);

    let deadline = Instant::now() + Duration::from_secs(30);
    let code = loop {
        if let Some(code) = child.try_wait().expect("try_wait") {
            break code;
        }
        assert!(Instant::now() < deadline, "server never idled out");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(code.success(), "idle shutdown should exit 0, got {code:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("summary");
    assert!(
        rest.contains("shut down after"),
        "missing shutdown summary: {rest:?}"
    );
}

#[test]
fn serve_rejects_oversized_requests() {
    let dir = tmp_dir("limits");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(
        &model,
        &["--idle-timeout", "60", "--max-request-bytes", "256"],
    );
    let big = format!(r#"{{"source": "{}"}}"#, "x".repeat(1024));
    let (status, body) = post(&addr, "/predict", &big);
    assert_eq!(status, 413, "{body}");
    // The server survives and keeps answering.
    let (status, _) = get(&addr, "/health");
    assert_eq!(status, 200);
    child.kill().expect("kills");
    let _ = child.wait();
}

/// Pins the v1 API contract: versioned paths, the `"api"` field on every
/// JSON body, stable machine-readable error codes, the `Deprecation`
/// header on pre-versioning aliases, and the Prometheus exposition.
#[test]
fn serve_v1_api_contract() {
    let dir = tmp_dir("v1");
    let model = train_model(&dir);
    let (mut child, addr, _stdout) = spawn_server(&model, &["--idle-timeout", "60"]);

    // Every v1 JSON response carries the API version; the serde map is
    // sorted, so `"api"` renders first.
    let (status, head, body) = get_full(&addr, "/v1/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with(r#"{"api":"pigeon/1""#), "{body}");
    assert!(body.contains("\"ok\""), "{body}");
    assert!(
        !head.contains("Deprecation"),
        "v1 is not deprecated: {head}"
    );

    let (status, body) = post(&addr, "/v1/predict", QUERY);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"api\":\"pigeon/1\""), "{body}");
    assert!(body.contains("\"predictions\""), "{body}");

    let (status, body) = post(
        &addr,
        "/v1/predict_batch",
        r#"{"sources": ["function g(x) { return x; }", "not valid js ((("]}"#,
    );
    assert_eq!(status, 200, "{body}");
    // The broken source reports an inline error with a stable code.
    assert!(body.contains("\"code\":\"parse\""), "{body}");

    let (status, body) = get(&addr, "/v1/stats");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"api\":\"pigeon/1\""), "{body}");
    assert!(body.contains("\"requests_total\""), "{body}");

    // Error bodies carry machine-readable codes per kind.
    let (status, body) = post(&addr, "/v1/predict", "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad-request\""), "{body}");
    let (status, body) = post(&addr, "/v1/predict", r#"{"source": "function ((("}"#);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"code\":\"parse\""), "{body}");
    let (status, body) = get(&addr, "/no-such-route");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"code\":\"not-found\""), "{body}");

    // Pre-versioning paths still answer, flagged deprecated; their
    // bodies match the v1 schema.
    for path in ["/predict", "/stats", "/health", "/metrics"] {
        let (status, head, body) = match path {
            "/predict" => {
                let (s, h, b) = http_full(
                    &addr,
                    &format!(
                        "POST /predict HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
                         Connection: close\r\n\r\n{QUERY}",
                        QUERY.len()
                    ),
                );
                (s, h, b)
            }
            _ => get_full(&addr, path),
        };
        assert_eq!(status, 200, "{path}: {body}");
        assert!(
            head.contains("Deprecation: true"),
            "{path} must signal deprecation: {head}"
        );
    }

    // The Prometheus exposition: request counters by endpoint and
    // status, the predict latency histogram, and content-type framing.
    let (status, head, metrics) = get_full(&addr, "/v1/metrics");
    assert_eq!(status, 200, "{metrics}");
    assert!(head.contains("Content-Type: text/plain"), "{head}");
    for needle in [
        "# TYPE pigeon_http_requests_total counter",
        "pigeon_http_requests_total{endpoint=\"/v1/predict\",status=\"200\"}",
        "pigeon_http_requests_total{endpoint=\"/v1/predict\",status=\"400\"}",
        "pigeon_http_requests_total{endpoint=\"other\",status=\"404\"}",
        "# TYPE pigeon_predict_latency_micros histogram",
        "pigeon_predict_latency_micros_bucket",
        "le=\"+Inf\"",
        "pigeon_predictions_total",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    child.kill().expect("kills");
    let _ = child.wait();
}

/// Manual throughput report backing the EXPERIMENTS.md table: run with
/// `cargo test --release --test serve -- --ignored --nocapture`.
#[test]
#[ignore]
fn throughput_report() {
    use pigeon::corpus::{generate, CorpusConfig, Language};
    use pigeon::{Pigeon, PigeonConfig};

    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(400),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let (train, queries) = sources.split_at(300);
    let namer = Pigeon::train_variable_namer(Language::JavaScript, train, &PigeonConfig::default())
        .expect("trains");

    let t = Instant::now();
    let serial: usize = queries
        .iter()
        .map(|s| namer.predict(s).map(|p| p.len()).unwrap_or(0))
        .sum();
    let serial_secs = t.elapsed().as_secs_f64();
    println!(
        "serial:        {} programs, {serial} predictions in {serial_secs:.3}s \
         ({:.0} programs/s)",
        queries.len(),
        queries.len() as f64 / serial_secs
    );

    for jobs in [1usize, 4] {
        let t = Instant::now();
        let batch: usize = namer
            .predict_batch(queries, jobs)
            .into_iter()
            .map(|r| r.map(|p| p.len()).unwrap_or(0))
            .sum();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(batch, serial);
        println!(
            "batch jobs={jobs}:  {} programs in {secs:.3}s ({:.0} programs/s)",
            queries.len(),
            queries.len() as f64 / secs
        );
    }

    let dir = tmp_dir("throughput");
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, namer.to_json().expect("serialises")).unwrap();
    let (mut child, addr, _stdout) = spawn_server(&model_path, &["--idle-timeout", "60"]);
    let t = Instant::now();
    for q in queries {
        let body = serde_json::to_string(&serde_json::json!({ "source": *q })).unwrap();
        let (status, _) = post(&addr, "/predict", &body);
        assert!(status == 200 || status == 422);
    }
    let secs = t.elapsed().as_secs_f64();
    println!(
        "served:        {} programs in {secs:.3}s ({:.0} programs/s, one conn each)",
        queries.len(),
        queries.len() as f64 / secs
    );
    child.kill().expect("kills");
    let _ = child.wait();
}
