//! Integration tests for the `Pigeon` facade: persistence and behaviour
//! parity with the experiment drivers.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::{Pigeon, PigeonConfig};

fn trained_namer(language: Language, files: usize) -> Pigeon {
    let corpus = generate(language, &CorpusConfig::default().with_files(files));
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    Pigeon::train_variable_namer(language, &sources, &PigeonConfig::default())
        .expect("training corpus parses")
}

#[test]
fn facade_json_round_trip_preserves_predictions() {
    let namer = trained_namer(Language::JavaScript, 150);
    let json = namer.to_json().expect("serialises");
    let restored = Pigeon::from_json(&json).expect("deserialises");
    assert_eq!(restored.language(), Language::JavaScript);

    for query in [
        "function f() { var d = false; while (!d) { if (go()) { d = true; } } }",
        "function g(xs) { var n = 0; for (var x of xs) { n += x; } return n; }",
        "function h(a, b, c) { b.open('GET', a, false); b.send(c); }",
    ] {
        let before = namer.predict(query).expect("parses");
        let after = restored.predict(query).expect("parses");
        assert_eq!(before.len(), after.len());
        for (x, y) in before.iter().zip(&after) {
            assert_eq!(x.current_name, y.current_name);
            assert_eq!(x.predicted_name, y.predicted_name);
            let xc: Vec<&String> = x.candidates.iter().map(|(n, _)| n).collect();
            let yc: Vec<&String> = y.candidates.iter().map(|(n, _)| n).collect();
            assert_eq!(xc, yc);
        }
    }
}

#[test]
fn facade_rejects_garbage_model_files() {
    assert!(Pigeon::from_json("{}").is_err());
    assert!(Pigeon::from_json("not json at all").is_err());
    assert!(Pigeon::from_json(r#"{"language": "klingon"}"#).is_err());
}

/// A model whose weight tables reference ids beyond the stored
/// vocabularies must be rejected with a named mismatch, not loaded (it
/// would panic or silently mispredict later).
#[test]
fn facade_rejects_model_with_out_of_range_ids() {
    let namer = trained_namer(Language::JavaScript, 60);
    let json = namer.to_json().expect("serialises");

    // Truncate the feature vocabulary: every id the weight tables
    // mention past the cut is now dangling.
    let truncated = {
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let features = v
            .get_mut("features")
            .and_then(|x| x.as_array_mut())
            .expect("feature vocab array");
        assert!(features.len() > 1, "test needs a non-trivial vocabulary");
        features.truncate(1);
        serde_json::to_string(&v).unwrap()
    };
    let err = Pigeon::from_json(&truncated).expect_err("must reject");
    let msg = err.to_string();
    assert!(
        msg.contains("feature") && msg.contains("vocabulary"),
        "error should name the mismatched table: {msg}"
    );

    // Same for labels: the label-count table no longer lines up.
    let truncated = {
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let labels = v
            .get_mut("labels")
            .and_then(|x| x.as_array_mut())
            .expect("label vocab array");
        labels.truncate(1);
        serde_json::to_string(&v).unwrap()
    };
    let err = Pigeon::from_json(&truncated).expect_err("must reject");
    assert!(err.to_string().contains("label"), "{err}");
}

/// `predict_batch` is a parallel fan-out over `predict`: for every jobs
/// count the results must be identical to the sequential loop, in
/// source order.
#[test]
fn predict_batch_matches_sequential_predict_exactly() {
    let namer = trained_namer(Language::JavaScript, 120);
    let sources = [
        "function f() { var d = false; while (!d) { if (go()) { d = true; } } }",
        "function { syntax error",
        "function g(xs) { var n = 0; for (var x of xs) { n += x; } return n; }",
        "function h(a, b, c) { b.open(0, a, false); b.send(c); }",
    ];
    let sequential: Vec<String> = sources
        .iter()
        .map(|s| format!("{:?}", namer.predict(s)))
        .collect();
    for jobs in [1usize, 4] {
        let batched: Vec<String> = namer
            .predict_batch(&sources, jobs)
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(batched, sequential, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn facade_surfaces_parse_errors() {
    let namer = trained_namer(Language::JavaScript, 40);
    let err = namer.predict("function { syntax error").unwrap_err();
    assert!(err.to_string().contains("parse error"));
}

#[test]
fn method_namer_targets_methods_not_variables() {
    let corpus = generate(Language::Python, &CorpusConfig::default().with_files(150));
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let namer =
        Pigeon::train_method_namer(Language::Python, &sources, &PigeonConfig::default()).unwrap();
    let query = "def m(xs, t):\n    c = 0\n    for x in xs:\n        if x == t:\n            \
                 c += 1\n    return c\n";
    let predictions = namer.predict(query).unwrap();
    assert_eq!(predictions.len(), 1, "only the function name is unknown");
    assert_eq!(predictions[0].current_name, "m");
}

#[test]
fn config_builder_matches_default_and_validates() {
    use pigeon::ErrorKind;

    // A builder with no overrides reproduces `PigeonConfig::default()`,
    // so existing `Default` users lose nothing by migrating.
    let built = PigeonConfig::builder().build().expect("defaults are valid");
    let default = PigeonConfig::default();
    assert_eq!(built.extraction.max_length, default.extraction.max_length);
    assert_eq!(built.extraction.max_width, default.extraction.max_width);
    assert_eq!(built.top_k, default.top_k);
    assert_eq!(built.jobs, default.jobs);
    assert_eq!(built.keep_prob, default.keep_prob);

    for (config, needle) in [
        (PigeonConfig::builder().limits(0, 3).build(), "max_length"),
        (PigeonConfig::builder().keep_prob(0.0).build(), "keep_prob"),
        (PigeonConfig::builder().keep_prob(1.5).build(), "keep_prob"),
        (
            PigeonConfig::builder().keep_prob(f64::NAN).build(),
            "keep_prob",
        ),
        (PigeonConfig::builder().top_k(0).build(), "top_k"),
    ] {
        let err = config.expect_err(needle);
        assert_eq!(err.kind(), ErrorKind::Config, "{err}");
        assert_eq!(err.code(), "config");
        assert!(err.to_string().contains(needle), "{err}");
    }
}

#[test]
fn errors_carry_stable_machine_readable_codes() {
    use pigeon::ErrorKind;

    let namer = trained_namer(Language::JavaScript, 40);
    let err = namer.predict("function { syntax error").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Parse);
    assert_eq!(err.code(), "parse");

    let err = Pigeon::from_json("{\"not\": \"a model\"}").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ModelFormat);
    assert_eq!(err.code(), "model-format");

    // Codes are part of the serve wire format; they must never drift.
    assert_eq!(ErrorKind::Config.code(), "config");
    assert_eq!(ErrorKind::Io.code(), "io");
    assert_eq!(ErrorKind::Internal.code(), "internal");
}
