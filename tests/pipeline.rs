//! End-to-end pipeline tests: generate → parse → extract → train →
//! predict → score, across all four languages and both learners.

use pigeon::core::Abstraction;
use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::eval::{
    naive_string_type_accuracy, run_name_experiment, run_type_experiment, run_w2v_experiment,
    NameExperiment, Representation, TypeExperiment, W2vContext, W2vExperiment,
};

fn small() -> CorpusConfig {
    CorpusConfig::default().with_files(150)
}

#[test]
fn variable_names_learn_in_every_language() {
    for language in Language::ALL {
        let out = run_name_experiment(&NameExperiment {
            corpus: small(),
            ..NameExperiment::var_names(language)
        });
        assert!(out.n_test > 50, "{language}: too few predictions");
        assert!(
            out.accuracy > 0.35,
            "{language}: accuracy {:.3} too low for the pipeline to be sane",
            out.accuracy
        );
        assert!(out.topk_accuracy >= out.accuracy);
    }
}

#[test]
fn paths_beat_no_paths_in_every_language() {
    for language in Language::ALL {
        let base = NameExperiment {
            corpus: small(),
            ..NameExperiment::var_names(language)
        };
        let paths = run_name_experiment(&base);
        let no_paths =
            run_name_experiment(&base.clone().with_representation(Representation::NoPaths));
        assert!(
            paths.accuracy > no_paths.accuracy,
            "{language}: paths {:.3} <= no-paths {:.3}",
            paths.accuracy,
            no_paths.accuracy
        );
    }
}

#[test]
fn type_prediction_beats_the_naive_baseline_by_a_wide_margin() {
    let cfg = small();
    let types = run_type_experiment(&TypeExperiment {
        corpus: cfg,
        ..TypeExperiment::default()
    });
    let naive = naive_string_type_accuracy(&cfg, 0.8);
    // Paper shape: 69.1% vs 24.1% — nearly 3x.
    assert!(
        types.accuracy > 2.0 * naive.accuracy,
        "types {:.3} vs naive {:.3}",
        types.accuracy,
        naive.accuracy
    );
}

#[test]
fn w2v_context_ordering_matches_table3() {
    let mk = |context| W2vExperiment {
        corpus: small(),
        ..W2vExperiment::table3(context)
    };
    let paths = run_w2v_experiment(&mk(W2vContext::AstPaths(Abstraction::Full)));
    let tokens = run_w2v_experiment(&mk(W2vContext::TokenStream { window: 2 }));
    assert!(
        paths.accuracy > tokens.accuracy,
        "w2v paths {:.3} <= tokens {:.3}",
        paths.accuracy,
        tokens.accuracy
    );
}

#[test]
fn generated_corpora_parse_everywhere() {
    for language in Language::ALL {
        let corpus = generate(language, &CorpusConfig::default().with_files(40));
        for doc in &corpus.docs {
            let ast = language.parse(&doc.source).unwrap_or_else(|e| {
                panic!("{language}: generated doc unparseable: {e}\n{}", doc.source)
            });
            ast.check_invariants().unwrap();
        }
    }
}
