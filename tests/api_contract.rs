//! Contract test for API.md: the `### METHOD /path` headings in the
//! doc are parsed and checked both ways against a live server — every
//! documented v1 route is probed and must answer as documented, and
//! every route the probe table (which mirrors the server's `route()`
//! dispatch) knows about must appear in the doc. Also covers the v1
//! response envelope, the CLI flag aliases, and the generated
//! per-command `--help`.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-contract-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generates a corpus, trains a model, and emits a 1-shard partial for
/// the same corpus — everything the probe run needs on disk.
fn fixtures(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    let corpus = dir.join("corpus");
    let out = pigeon()
        .args(["generate", "--language", "js", "--files", "8"])
        .arg(&corpus)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut files: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();

    let model = dir.join("model.json");
    let mut cmd = pigeon();
    cmd.args(["train", "--language", "js", "--out"]).arg(&model);
    for f in &files {
        cmd.arg(f);
    }
    assert!(cmd.output().expect("runs").status.success());

    let partial = dir.join("shard0.pgnc");
    let mut cmd = pigeon();
    cmd.args([
        "train",
        "--language",
        "js",
        "--shard",
        "0/1",
        "--emit-partial",
    ])
    .arg(&partial);
    for f in &files {
        cmd.arg(f);
    }
    assert!(cmd.output().expect("runs").status.success());
    (corpus, model, partial)
}

fn spawn_server(model: &Path, cache_dir: &Path) -> (Child, String, BufReader<ChildStdout>) {
    let mut child = pigeon()
        .args(["serve", "--model"])
        .arg(model)
        .args(["--port", "0", "--idle-timeout", "120", "--cache-dir"])
        .arg(cache_dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in startup line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr, reader)
}

fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("writes head");
    stream.write_all(body).expect("writes body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("reads");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&response[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, head, response[header_end + 4..].to_vec())
}

/// The documented routes: `### METHOD /path` headings out of API.md.
fn documented_routes() -> BTreeSet<String> {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/API.md"))
        .expect("API.md at the repo root");
    let routes: BTreeSet<String> = doc
        .lines()
        .filter_map(|l| l.strip_prefix("### "))
        .map(|h| h.trim().to_string())
        .collect();
    assert!(
        !routes.is_empty(),
        "API.md must contain `### METHOD /path` headings"
    );
    for route in &routes {
        let (method, path) = route.split_once(' ').expect("METHOD /path heading");
        assert!(
            matches!(method, "GET" | "POST"),
            "unexpected method in API.md heading: {route}"
        );
        assert!(path.starts_with("/v1/"), "non-v1 route documented: {route}");
    }
    routes
}

#[test]
fn every_documented_route_answers_and_every_probed_route_is_documented() {
    let dir = tmp_dir("routes");
    let (corpus, model, partial) = fixtures(&dir);
    let cache = dir.join("cache");
    let (mut server, addr, _stdout) = spawn_server(&model, &cache);

    let model_bytes = std::fs::read(&model).unwrap();
    let partial_bytes = std::fs::read(&partial).unwrap();
    let job = format!(
        r#"{{"corpus_dir": "{}", "language": "js", "out": "{}", "shard_count": 1}}"#,
        corpus.display(),
        dir.join("job-model.json").display()
    );

    // One probe per documented heading, in doc order where ordering
    // matters (the train-job is created before its status is read; its
    // model is fetched only after the partial upload completes it).
    // The doc path uses `{id}`/`{key}`/`{version}` placeholders; the
    // probe hits a concrete instance. This table mirrors the `route()`
    // dispatch in src/serve.rs — a route added there must be added here
    // and to API.md together.
    struct Probe {
        doc: &'static str,
        method: &'static str,
        path: String,
        body: Vec<u8>,
        want_status: u16,
        json: bool,
    }
    let mut cache_key = String::new();
    let probes = vec![
        Probe {
            doc: "POST /v1/predict",
            method: "POST",
            path: "/v1/predict".into(),
            body: br#"{"source": "function f(a, b) { b.send(a); }"}"#.to_vec(),
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "POST /v1/predict_batch",
            method: "POST",
            path: "/v1/predict_batch".into(),
            body: br#"{"sources": ["function f(a) { return a; }"]}"#.to_vec(),
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "POST /v1/models",
            method: "POST",
            path: "/v1/models".into(),
            body: model_bytes,
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "GET /v1/models",
            method: "GET",
            path: "/v1/models".into(),
            body: vec![],
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "GET /v1/models/{version}",
            method: "GET",
            path: "/v1/models/1".into(),
            body: vec![],
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "POST /v1/train-jobs",
            method: "POST",
            path: "/v1/train-jobs".into(),
            body: job.into_bytes(),
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "GET /v1/train-jobs",
            method: "GET",
            path: "/v1/train-jobs".into(),
            body: vec![],
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "GET /v1/train-jobs/{id}",
            method: "GET",
            path: "/v1/train-jobs/1".into(),
            body: vec![],
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "POST /v1/leases",
            method: "POST",
            path: "/v1/leases".into(),
            body: br#"{"worker": "contract-test"}"#.to_vec(),
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "POST /v1/partials",
            method: "POST",
            path: "/v1/partials".into(),
            body: partial_bytes,
            want_status: 200,
            json: true,
        },
        // Completing the 1-shard job above makes its model fetchable.
        Probe {
            doc: "GET /v1/train-jobs/{id}/model",
            method: "GET",
            path: "/v1/train-jobs/1/model".into(),
            body: vec![],
            want_status: 200,
            json: false,
        },
        Probe {
            doc: "GET /v1/partials/{key}",
            method: "GET",
            path: String::new(), // filled in from the upload response
            body: vec![],
            want_status: 200,
            json: false,
        },
        Probe {
            doc: "GET /v1/stats",
            method: "GET",
            path: "/v1/stats".into(),
            body: vec![],
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "GET /v1/health",
            method: "GET",
            path: "/v1/health".into(),
            body: vec![],
            want_status: 200,
            json: true,
        },
        Probe {
            doc: "GET /v1/metrics",
            method: "GET",
            path: "/v1/metrics".into(),
            body: vec![],
            want_status: 200,
            json: false,
        },
    ];

    let documented = documented_routes();
    let probed: BTreeSet<String> = probes.iter().map(|p| p.doc.to_string()).collect();
    assert_eq!(
        documented, probed,
        "API.md headings and the probe table must cover the same routes"
    );

    for probe in &probes {
        let path = if probe.doc == "GET /v1/partials/{key}" {
            assert!(!cache_key.is_empty(), "partial upload ran first");
            format!("/v1/partials/{cache_key}")
        } else {
            probe.path.clone()
        };
        let (status, head, body) = request(&addr, probe.method, &path, &probe.body);
        let text = String::from_utf8_lossy(&body);
        assert_eq!(
            status, probe.want_status,
            "{} {} answered {status}: {text}",
            probe.method, probe.doc
        );
        assert!(
            !head.contains("Deprecation") && !head.contains("Sunset"),
            "versioned route {} must not be deprecated: {head}",
            probe.doc
        );
        if probe.json {
            assert!(
                text.contains(r#""api":"pigeon/1""#),
                "{} must carry the v1 envelope: {text}",
                probe.doc
            );
        }
        if probe.doc == "POST /v1/partials" {
            let pos = text.find("\"key\":\"").expect("upload returns the key") + 7;
            cache_key = text[pos..pos + 16].to_string();
        }
    }

    // Errors carry the envelope and a stable code too.
    let (status, _, body) = request(&addr, "GET", "/v1/models/999", &[]);
    let text = String::from_utf8_lossy(&body);
    assert_eq!(status, 404, "{text}");
    assert!(text.starts_with(r#"{"api":"pigeon/1""#), "{text}");
    assert!(text.contains("\"code\":\"not-found\""), "{text}");
    let (status, _, body) = request(&addr, "GET", "/v1/nonexistent", &[]);
    assert_eq!(status, 404, "{}", String::from_utf8_lossy(&body));

    server.kill().expect("kills");
    let _ = server.wait();
}

/// Train jobs on a plain `pigeon serve` (no `--cache-dir`) answer the
/// documented 409 `no-coordinator` rather than a silent 404.
#[test]
fn coordinator_routes_answer_no_coordinator_without_a_cache_dir() {
    let dir = tmp_dir("nocoord");
    let (_corpus, model, _partial) = fixtures(&dir);
    let mut child = pigeon()
        .args(["serve", "--model"])
        .arg(&model)
        .args(["--port", "0", "--idle-timeout", "60"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .expect("address")
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    for (method, path) in [
        ("POST", "/v1/train-jobs"),
        ("GET", "/v1/train-jobs"),
        ("POST", "/v1/leases"),
        ("POST", "/v1/partials"),
        ("GET", "/v1/partials/0011223344556677"),
    ] {
        let (status, _, body) = request(&addr, method, path, br#"{"worker": "x"}"#);
        let text = String::from_utf8_lossy(&body);
        assert_eq!(status, 409, "{method} {path}: {text}");
        assert!(
            text.contains("\"code\":\"no-coordinator\""),
            "{method} {path}: {text}"
        );
    }
    child.kill().expect("kills");
    let _ = child.wait();
}

/// The legacy flag spellings still work but warn: `pigeon merge -o`
/// and the two-positional `pigeon compile` both print a deprecation
/// pointing at `--out`.
#[test]
fn legacy_flag_spellings_warn_and_still_work() {
    let dir = tmp_dir("aliases");
    let (_corpus, model, partial) = fixtures(&dir);

    let merged = dir.join("merged.json");
    let out = pigeon()
        .args(["merge", "-o"])
        .arg(&merged)
        .arg(&partial)
        .output()
        .expect("runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        stderr.contains("deprecated") && stderr.contains("--out"),
        "merge -o must warn: {stderr}"
    );
    assert!(merged.exists());

    let compiled = dir.join("model.pgnc");
    let out = pigeon()
        .arg("compile")
        .arg(&model)
        .arg(&compiled)
        .output()
        .expect("runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        stderr.contains("deprecated") && stderr.contains("--out"),
        "positional compile output must warn: {stderr}"
    );
    assert!(compiled.exists());

    // The modern spellings stay silent.
    let merged2 = dir.join("merged2.json");
    let out = pigeon()
        .args(["merge", "--out"])
        .arg(&merged2)
        .arg(&partial)
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("deprecated"),
        "--out must not warn"
    );
    let compiled2 = dir.join("model2.pgnc");
    let out = pigeon()
        .args(["compile", "--out"])
        .arg(&compiled2)
        .arg(&model)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("deprecated"),
        "compile --out must not warn"
    );
}

/// `pigeon <command> --help` is generated from the same flag table
/// that validates the flags, so every command documents its own flags.
#[test]
fn per_command_help_is_generated_from_the_flag_table() {
    let expectations: &[(&str, &[&str])] = &[
        ("paths", &["--language", "--max-length"]),
        ("generate", &["--files", "--seed"]),
        ("train", &["--out", "--shard", "--emit-partial"]),
        ("merge", &["--out"]),
        ("compile", &["--out", "--quantize"]),
        ("predict", &["--model", "--trace-out"]),
        ("serve", &["--model", "--cache-dir", "--lease-timeout-ms"]),
        ("coordinate", &["--cache-dir", "--lease-timeout-ms"]),
        ("work", &["--coordinator", "--poll-ms", "--exit-when-idle"]),
        ("experiment", &["--language", "--files"]),
        ("audit", &["--language"]),
    ];
    for (command, flags) in expectations {
        let out = pigeon().args([command, "--help"]).output().expect("runs");
        assert!(
            out.status.success(),
            "pigeon {command} --help failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("USAGE") && stdout.contains("FLAGS"),
            "pigeon {command} --help: {stdout}"
        );
        for flag in *flags {
            assert!(
                stdout.contains(flag),
                "pigeon {command} --help must document {flag}: {stdout}"
            );
        }
    }
}
