//! End-to-end tests for multi-box distributed training: a real
//! coordinator process, real worker processes, real sockets — asserting
//! the headline guarantee (the distributed model is byte-identical to a
//! single-process `pigeon train`), straggler reassignment after a
//! killed worker, duplicate late uploads, the content-addressed cache
//! across coordinator restarts, and the negative upload paths.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn pigeon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pigeon"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pigeon-distrib-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generates a small synthetic corpus, returning the sorted file list —
/// the same order `list_corpus` and a directory-driven train job use.
fn generate_corpus(dir: &Path, files: usize) -> Vec<PathBuf> {
    let out = pigeon()
        .args([
            "generate",
            "--language",
            "js",
            "--files",
            &files.to_string(),
        ])
        .arg(dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    paths.sort();
    paths
}

/// Trains the single-process reference model over the sorted file list.
fn train_reference(files: &[PathBuf], model: &Path) {
    let mut cmd = pigeon();
    cmd.args(["train", "--language", "js", "--out"]).arg(model);
    for f in files {
        cmd.arg(f);
    }
    let out = cmd.output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Spawns `pigeon coordinate --port 0` and returns the child, the bound
/// address, and the stdout reader (kept alive for the final summary).
fn spawn_coordinator(cache_dir: &Path, extra: &[&str]) -> (Child, String, BufReader<ChildStdout>) {
    let mut child = pigeon()
        .args(["coordinate", "--port", "0", "--cache-dir"])
        .arg(cache_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in startup line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr, reader)
}

/// Spawns a `pigeon work` loop against the coordinator.
fn spawn_worker(addr: &str, name: &str, extra: &[&str]) -> Child {
    pigeon()
        .args(["work", "--coordinator", &format!("http://{addr}")])
        .args(["--worker", name, "--poll-ms", "100"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns worker")
}

fn http_full(addr: &str, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(request.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, _, body) = http_full(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    );
    (status, body)
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, response) = http_full(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    (status, response)
}

/// POSTs binary bytes (partial uploads).
fn post_bytes(addr: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("writes head");
    stream.write_all(body).expect("writes body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// GETs raw bytes (partial downloads) — responses are framed by
/// Content-Length but read to EOF here since the connection closes.
fn get_bytes(addr: &str, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("writes");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("reads");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&response[..header_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, response[header_end + 4..].to_vec())
}

/// Extracts an unquoted JSON number field (`"name":123`).
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let start = body.find(&format!("\"{field}\":"))? + field.len() + 3;
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Reads a single un-labelled counter value off the Prometheus text.
fn metric_u64(addr: &str, name: &str) -> u64 {
    let (status, text) = get(addr, "/v1/metrics");
    assert_eq!(status, 200, "{text}");
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no metric {name} in:\n{text}"))
}

/// The default-knob train-job request for a corpus dir.
fn job_request(corpus_dir: &Path, out: &Path, shard_count: u32) -> String {
    format!(
        r#"{{"corpus_dir": "{}", "language": "js", "out": "{}", "shard_count": {shard_count}}}"#,
        corpus_dir.display(),
        out.display()
    )
}

/// Polls a job's status route until its phase is `done` (or panics
/// after the deadline with the last status body).
fn await_job_done(addr: &str, id: u64, deadline: Duration) -> String {
    let start = Instant::now();
    loop {
        let (status, body) = get(addr, &format!("/v1/train-jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        if body.contains("\"phase\":\"done\"") {
            return body;
        }
        assert!(
            !body.contains("\"phase\":\"failed\""),
            "job {id} failed: {body}"
        );
        assert!(
            start.elapsed() < deadline,
            "job {id} not done after {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The headline guarantee: for 1, 2 and 4 workers, the coordinator's
/// merged model is byte-identical to a single-process `pigeon train`
/// over the same corpus — same bytes, any fleet shape.
#[test]
fn distributed_model_is_byte_identical_to_single_process() {
    let dir = tmp_dir("identity");
    let corpus_dir = dir.join("corpus");
    let files = generate_corpus(&corpus_dir, 48);
    let reference = dir.join("reference.json");
    train_reference(&files, &reference);
    let reference_bytes = read(&reference);

    for workers in [1usize, 2, 4] {
        let cache = dir.join(format!("cache-{workers}"));
        let out = dir.join(format!("model-{workers}.json"));
        let (mut coord, addr, _stdout) = spawn_coordinator(&cache, &["--idle-timeout", "120"]);

        let (status, body) = post(&addr, "/v1/train-jobs", &job_request(&corpus_dir, &out, 4));
        assert_eq!(status, 200, "{body}");
        assert_eq!(json_u64(&body, "cached"), Some(0), "fresh cache: {body}");
        assert_eq!(json_u64(&body, "total_docs"), Some(48), "{body}");

        let mut fleet: Vec<Child> = (0..workers)
            .map(|w| spawn_worker(&addr, &format!("w{w}"), &[]))
            .collect();
        let status_body = await_job_done(&addr, 1, Duration::from_secs(120));
        assert!(status_body.contains("\"shards_merged\":4"), "{status_body}");
        for worker in &mut fleet {
            let exit = worker.wait().expect("worker exits");
            assert!(exit.success(), "worker exit: {exit:?}");
        }

        assert_eq!(
            read(&out),
            reference_bytes,
            "{workers}-worker model differs from the single-process reference"
        );
        // The coordinator also serves the merged model.
        let (status, body) = get(&addr, "/v1/models");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"origin\":\"train-job\""), "{body}");
        let (status, body) = post(
            &addr,
            "/v1/predict",
            r#"{"source": "function f(a, b) { b.send(a); }"}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"predictions\""), "{body}");

        coord.kill().expect("kills");
        let _ = coord.wait();
    }
}

/// A worker that leases a shard and dies (simulated with a huge
/// `--throttle-ms` and a kill) must not wedge the job: the lease
/// expires, the shard is reassigned to a live worker, the model is
/// still byte-identical, and a duplicate late upload of an already
/// merged shard is a harmless no-op.
#[test]
fn killed_worker_is_reassigned_and_late_uploads_are_idempotent() {
    let dir = tmp_dir("straggler");
    let corpus_dir = dir.join("corpus");
    let files = generate_corpus(&corpus_dir, 24);
    let reference = dir.join("reference.json");
    train_reference(&files, &reference);

    let cache = dir.join("cache");
    let out = dir.join("model.json");
    let (mut coord, addr, _stdout) = spawn_coordinator(
        &cache,
        &["--idle-timeout", "120", "--lease-timeout-ms", "1500"],
    );
    let (status, body) = post(&addr, "/v1/train-jobs", &job_request(&corpus_dir, &out, 3));
    assert_eq!(status, 200, "{body}");

    // The doomed worker grabs a lease but would hold its upload for 10
    // minutes; we kill it outright once the healthy workers are busy.
    let mut doomed = spawn_worker(&addr, "doomed", &["--throttle-ms", "600000"]);
    std::thread::sleep(Duration::from_millis(300));
    let mut healthy: Vec<Child> = (0..2)
        .map(|w| spawn_worker(&addr, &format!("h{w}"), &[]))
        .collect();
    std::thread::sleep(Duration::from_millis(500));
    doomed.kill().expect("kills doomed worker");
    let _ = doomed.wait();

    let status_body = await_job_done(&addr, 1, Duration::from_secs(120));
    for worker in &mut healthy {
        let exit = worker.wait().expect("worker exits");
        assert!(exit.success(), "worker exit: {exit:?}");
    }
    let reassignments = json_u64(&status_body, "reassignments").expect("reassignments field");
    assert!(
        reassignments >= 1,
        "the doomed worker's shard must be reassigned: {status_body}"
    );
    assert!(
        metric_u64(&addr, "pigeon_shard_reassignments_total") >= 1,
        "reassignment counter"
    );
    assert_eq!(
        read(&out),
        read(&reference),
        "model with a killed worker differs from the reference"
    );

    // Duplicate late upload: re-POST a shard that is already merged —
    // exactly what the doomed worker would do if it woke up now. The
    // job stays done, the model file does not change, and the upload is
    // reported as a cache hit.
    let model_before = read(&out);
    let key_pos = status_body.find("\"key\":\"").expect("a shard key") + 7;
    let key = &status_body[key_pos..key_pos + 16];
    let (status, bytes) = get_bytes(&addr, &format!("/v1/partials/{key}"));
    assert_eq!(status, 200);
    let (status, body) = post_bytes(&addr, "/v1/partials", &bytes);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cached\":true"), "{body}");
    assert!(body.contains("\"phase\":\"done\""), "{body}");
    assert_eq!(
        read(&out),
        model_before,
        "late upload must not touch the model"
    );

    coord.kill().expect("kills");
    let _ = coord.wait();
}

/// The content-addressed cache across coordinator restarts: partials
/// uploaded before a crash are found again by a fresh coordinator (same
/// cache dir), completed shards are never re-assigned, and touching one
/// corpus file re-extracts exactly that shard.
#[test]
fn coordinator_restart_resumes_from_cache_and_reextracts_only_changed_shards() {
    let dir = tmp_dir("cache");
    let corpus_dir = dir.join("corpus");
    let files = generate_corpus(&corpus_dir, 24);
    let reference = dir.join("reference.json");
    train_reference(&files, &reference);
    let cache = dir.join("cache");

    // Phase 1: upload shards 0 and 1 of 4 via the CLI shard path (the
    // same .pgnc format the workers produce), then kill the
    // coordinator mid-job.
    let (mut coord, addr, _stdout) = spawn_coordinator(&cache, &["--idle-timeout", "120"]);
    let out = dir.join("model.json");
    let (status, body) = post(&addr, "/v1/train-jobs", &job_request(&corpus_dir, &out, 4));
    assert_eq!(status, 200, "{body}");
    for shard in 0..2 {
        let part = dir.join(format!("part{shard}.pgnc"));
        let mut cmd = pigeon();
        cmd.args([
            "train",
            "--language",
            "js",
            "--shard",
            &format!("{shard}/4"),
            "--emit-partial",
        ])
        .arg(&part);
        for f in &files {
            cmd.arg(f);
        }
        let cli = cmd.output().expect("runs");
        assert!(
            cli.status.success(),
            "{}",
            String::from_utf8_lossy(&cli.stderr)
        );
        let (status, body) = post_bytes(&addr, "/v1/partials", &read(&part));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"cached\":false"), "{body}");
    }
    coord.kill().expect("kills mid-job");
    let _ = coord.wait();

    // Phase 2: a fresh coordinator on the same cache dir. Re-posting
    // the job finds shards 0 and 1 already done — no worker ever
    // re-extracts them — and a single worker finishes 2 and 3.
    let (mut coord, addr, _stdout) = spawn_coordinator(&cache, &["--idle-timeout", "120"]);
    let (status, body) = post(&addr, "/v1/train-jobs", &job_request(&corpus_dir, &out, 4));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json_u64(&body, "cached"),
        Some(2),
        "restart must resume from the cache: {body}"
    );
    let mut worker = spawn_worker(&addr, "resume", &[]);
    let status_body = await_job_done(&addr, 1, Duration::from_secs(120));
    let exit = worker.wait().expect("worker exits");
    assert!(exit.success(), "worker exit: {exit:?}");
    assert_eq!(
        status_body.matches("\"source\":\"cache\"").count(),
        2,
        "completed shards must come from the cache, not reassignment: {status_body}"
    );
    assert_eq!(
        status_body.matches("\"source\":\"upload\"").count(),
        2,
        "{status_body}"
    );
    assert_eq!(read(&out), read(&reference), "resumed model differs");
    assert_eq!(metric_u64(&addr, "pigeon_partials_cached_total"), 2);
    assert_eq!(metric_u64(&addr, "pigeon_partials_received_total"), 2);

    // Phase 3: same corpus with one file touched → a new job re-uses 3
    // of 4 shards and re-extracts exactly the changed one.
    let touched = &files[0];
    let mut source = std::fs::read_to_string(touched).unwrap();
    source.push_str("\nfunction extra(value) { return value; }\n");
    std::fs::write(touched, source).unwrap();
    let out2 = dir.join("model2.json");
    let (status, body) = post(&addr, "/v1/train-jobs", &job_request(&corpus_dir, &out2, 4));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json_u64(&body, "cached"),
        Some(3),
        "only the touched shard's address moves: {body}"
    );
    let mut worker = spawn_worker(&addr, "incremental", &[]);
    let status_body = await_job_done(&addr, 2, Duration::from_secs(120));
    let exit = worker.wait().expect("worker exits");
    assert!(exit.success(), "worker exit: {exit:?}");
    assert_eq!(
        status_body.matches("\"source\":\"cache\"").count(),
        3,
        "{status_body}"
    );
    // The job route also serves the finished model's bytes.
    let (status, model_bytes) = get_bytes(&addr, "/v1/train-jobs/2/model");
    assert_eq!(status, 200);
    assert_eq!(model_bytes, read(&out2));

    coord.kill().expect("kills");
    let _ = coord.wait();
}

/// Negative upload paths: a partial with mismatched knobs is a coded
/// 400 naming the knob; a truncated upload is a coded 400 that leaves
/// no cache entry behind; an upload with no matching job is a coded
/// 409; predict without a model is a coded 409.
#[test]
fn bad_uploads_are_rejected_with_stable_codes() {
    let dir = tmp_dir("reject");
    let corpus_dir = dir.join("corpus");
    let files = generate_corpus(&corpus_dir, 8);
    let cache = dir.join("cache");
    let (mut coord, addr, _stdout) = spawn_coordinator(&cache, &["--idle-timeout", "120"]);

    // Predict before any model exists: coded 409, not a 500.
    let (status, body) = post(&addr, "/v1/predict", r#"{"source": "function f(a) {}"}"#);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("\"code\":\"no-model\""), "{body}");

    // An upload before any job exists: coded 409.
    let mut cmd = pigeon();
    cmd.args([
        "train",
        "--language",
        "js",
        "--shard",
        "0/2",
        "--emit-partial",
    ])
    .arg(dir.join("orphan.pgnc"));
    for f in &files {
        cmd.arg(f);
    }
    assert!(cmd.output().expect("runs").status.success());
    let orphan = read(&dir.join("orphan.pgnc"));
    let (status, body) = post_bytes(&addr, "/v1/partials", &orphan);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("\"code\":\"no-job\""), "{body}");

    let out = dir.join("model.json");
    let (status, body) = post(&addr, "/v1/train-jobs", &job_request(&corpus_dir, &out, 2));
    assert_eq!(status, 200, "{body}");

    // Same corpus and geometry but --max-length 5 against the job's
    // default of 4: rejected with code `config`, naming the knob.
    let mut cmd = pigeon();
    cmd.args([
        "train",
        "--language",
        "js",
        "--max-length",
        "5",
        "--shard",
        "0/2",
        "--emit-partial",
    ])
    .arg(dir.join("wrong.pgnc"));
    for f in &files {
        cmd.arg(f);
    }
    assert!(cmd.output().expect("runs").status.success());
    let (status, body) = post_bytes(&addr, "/v1/partials", &read(&dir.join("wrong.pgnc")));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"config\""), "{body}");
    assert!(
        body.contains("max_length"),
        "the error must name the disagreeing knob: {body}"
    );

    // A truncated partial: the checksummed decode fails with the
    // format's stable code and nothing lands in the cache.
    let truncated = &orphan[..orphan.len() / 2];
    let (status, body) = post_bytes(&addr, "/v1/partials", truncated);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"model-format\""), "{body}");
    // An empty body is rejected up front.
    let (status, body) = post_bytes(&addr, "/v1/partials", b"");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad-request\""), "{body}");

    let cached: Vec<_> = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pgnc"))
        .collect();
    assert!(
        cached.is_empty(),
        "rejected uploads must leave no cache entry: {cached:?}"
    );
    assert!(metric_u64(&addr, "pigeon_partials_rejected_total") >= 4);

    coord.kill().expect("kills");
    let _ = coord.wait();
}
