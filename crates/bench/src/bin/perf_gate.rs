//! CI perf regression gate: compares a freshly produced bench snapshot
//! against the committed one and fails (exit 1) on a >15% regression.
//!
//! Usage: `perf_gate COMMITTED.json FRESH.json [COMMITTED2.json FRESH2.json ...]`
//!
//! CI hosts vary wildly in absolute speed, so by default only the
//! dimensionless metrics are gated: the `ratios` object of
//! BENCH_TRAIN.json and each loader's `speedup_vs_json` in
//! BENCH_MODEL_LOAD.json. Ratios divide out the host. Set
//! `PIGEON_BENCH_STRICT=1` to additionally gate absolute medians
//! (useful on a pinned, quiet perf box).

use serde_json::Value;
use std::process::ExitCode;

const TOLERANCE: f64 = 0.15;

struct Gate {
    strict: bool,
    checked: usize,
    failures: Vec<String>,
}

impl Gate {
    /// `higher_is_better` decides which direction counts as a regression.
    fn check(&mut self, name: &str, committed: f64, fresh: f64, higher_is_better: bool) {
        self.checked += 1;
        let regressed = if higher_is_better {
            fresh < committed * (1.0 - TOLERANCE)
        } else {
            fresh > committed * (1.0 + TOLERANCE)
        };
        let arrow = if higher_is_better { "min" } else { "max" };
        let bound = if higher_is_better {
            committed * (1.0 - TOLERANCE)
        } else {
            committed * (1.0 + TOLERANCE)
        };
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!("  {name:<44} committed {committed:>10.3}  fresh {fresh:>10.3}  {arrow} {bound:>10.3}  {verdict}");
        if regressed {
            self.failures.push(format!(
                "{name}: committed {committed:.3}, fresh {fresh:.3} (tolerance {:.0}%)",
                TOLERANCE * 100.0
            ));
        }
    }

    fn compare_snapshots(&mut self, name: &str, committed: &Value, fresh: &Value) {
        // Dimensionless ratios (BENCH_TRAIN.json): a "speedup" is
        // higher-better, everything else is a cost ratio.
        if let (Some(base), Some(new)) = (committed.get("ratios"), fresh.get("ratios")) {
            for (key, value) in base.as_object().into_iter().flatten() {
                let (Some(c), Some(f)) = (value.as_f64(), new.get(key).and_then(Value::as_f64))
                else {
                    self.failures
                        .push(format!("{name}: ratio {key} missing from fresh snapshot"));
                    continue;
                };
                self.check(key, c, f, key.contains("speedup"));
            }
        }
        // Loader speedups (BENCH_MODEL_LOAD.json).
        if let (Some(base), Some(new)) = (committed.get("loaders"), fresh.get("loaders")) {
            for (key, value) in base.as_object().into_iter().flatten() {
                let (Some(c), Some(f)) = (
                    value.get("speedup_vs_json").and_then(Value::as_f64),
                    new.get(key)
                        .and_then(|l| l.get("speedup_vs_json"))
                        .and_then(Value::as_f64),
                ) else {
                    continue; // json baseline has no speedup field
                };
                self.check(&format!("{key}.speedup_vs_json"), c, f, true);
            }
        }
        if self.strict {
            for section in ["paths", "loaders"] {
                let (Some(base), Some(new)) = (committed.get(section), fresh.get(section)) else {
                    continue;
                };
                for (key, value) in base.as_object().into_iter().flatten() {
                    let (Some(c), Some(f)) = (
                        value.get("median_micros").and_then(Value::as_f64),
                        new.get(key)
                            .and_then(|e| e.get("median_micros"))
                            .and_then(Value::as_f64),
                    ) else {
                        continue;
                    };
                    self.check(&format!("{key}.median_micros"), c, f, false);
                }
            }
        }
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: perf_gate COMMITTED.json FRESH.json [COMMITTED.json FRESH.json ...]");
        return ExitCode::FAILURE;
    }
    let mut gate = Gate {
        strict: std::env::var("PIGEON_BENCH_STRICT").is_ok_and(|v| v == "1"),
        checked: 0,
        failures: Vec::new(),
    };
    for pair in args.chunks(2) {
        println!("{} vs {}:", pair[0], pair[1]);
        match (load(&pair[0]), load(&pair[1])) {
            (Ok(committed), Ok(fresh)) => gate.compare_snapshots(&pair[0], &committed, &fresh),
            (committed, fresh) => {
                for err in [committed.err(), fresh.err()].into_iter().flatten() {
                    gate.failures.push(err);
                }
            }
        }
    }
    if gate.checked == 0 {
        gate.failures
            .push("no comparable metrics found in any snapshot pair".to_owned());
    }
    if gate.failures.is_empty() {
        println!("perf gate passed: {} metrics within ±15%", gate.checked);
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate FAILED:");
        for failure in &gate.failures {
            eprintln!("  {failure}");
        }
        ExitCode::FAILURE
    }
}
