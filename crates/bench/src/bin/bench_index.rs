//! Regenerates `BENCH_INDEX.md` at the repo root: one row per
//! committed `BENCH_*.json` snapshot with the dimensionless numbers
//! CI's perf gate guards. The output is a pure function of the
//! committed snapshots, so CI regenerates it and fails on a diff —
//! adding a bench snapshot without re-running this binary is a stale
//! index.
//!
//! Usage: `bench_index [REPO_ROOT]` (defaults to the workspace root).

use serde_json::Value;

fn gated_numbers(snapshot: &Value) -> Vec<(String, f64)> {
    let mut gated = Vec::new();
    // The `ratios` object is gated wholesale…
    if let Some(Value::Object(ratios)) = snapshot.get("ratios") {
        for (key, value) in ratios {
            if let Some(n) = value.as_f64() {
                gated.push((key.clone(), n));
            }
        }
    }
    // …as is each loader's speedup in the model-load snapshot.
    if let Some(Value::Object(loaders)) = snapshot.get("loaders") {
        for (name, loader) in loaders {
            if let Some(n) = loader.get("speedup_vs_json").and_then(Value::as_f64) {
                gated.push((format!("{name}.speedup_vs_json"), n));
            }
        }
    }
    gated
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_owned());
    let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(&root)
        .expect("repo root")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    snapshots.sort();
    assert!(
        !snapshots.is_empty(),
        "no BENCH_*.json snapshots under {root}"
    );

    let mut out = String::from(
        "# Bench snapshot index\n\n\
         One row per committed `BENCH_*.json` perf snapshot. The \"gated\"\n\
         column lists the dimensionless numbers `perf_gate` holds within\n\
         ±15% of the committed value on every CI run; absolute medians\n\
         live in the snapshots themselves and are only gated on pinned\n\
         perf boxes (`PIGEON_BENCH_STRICT=1`).\n\n\
         Regenerate with `cargo run -p pigeon-bench --bin bench_index`;\n\
         CI diffs the regenerated file, so commit the result alongside\n\
         any snapshot change.\n\n\
         | Snapshot | Bench | Gated numbers |\n\
         |---|---|---|\n",
    );
    for path in &snapshots {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let snapshot: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        let bench = snapshot
            .get("bench")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned();
        let gated = gated_numbers(&snapshot);
        let cell = if gated.is_empty() {
            "—".to_owned()
        } else {
            gated
                .iter()
                .map(|(key, value)| format!("`{key}` {value:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!("| [{name}]({name}) | {bench} | {cell} |\n"));
    }

    let index = std::path::Path::new(&root).join("BENCH_INDEX.md");
    std::fs::write(&index, out).expect("writes index");
    println!("wrote {} ({} snapshots)", index.display(), snapshots.len());
}
