//! Benchmark and experiment harness for the PIGEON reproduction.
//!
//! One `harness = false` bench target per table and figure of the paper
//! (run with `cargo bench -p pigeon-bench --bench table2`, or everything
//! via `cargo bench --workspace`), plus Criterion microbenchmarks of the
//! extraction and inference hot paths. Experiment sizes scale with the
//! `PIGEON_FILES` environment variable (files per corpus; default keeps
//! the full suite in the tens of minutes).

use std::time::Instant;

/// Files per corpus for headline experiments; override with
/// `PIGEON_FILES`.
pub fn bench_files(default: usize) -> usize {
    std::env::var("PIGEON_FILES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Formats a `[0, 1]` accuracy as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints a standard experiment header with timing bookkeeping.
pub struct Section {
    started: Instant,
}

impl Section {
    /// Prints the banner and starts the clock.
    pub fn begin(title: &str) -> Section {
        println!("\n=== {title} ===");
        Section {
            started: Instant::now(),
        }
    }

    /// Prints the elapsed time.
    pub fn end(self) {
        println!(
            "[section took {:.1}s]",
            self.started.elapsed().as_secs_f64()
        );
    }
}
