//! Table 4: qualitative evaluation — top-k candidates for the paper's
//! `d` example (4a) and semantic similarity clusters between names (4b).

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::{Pigeon, PigeonConfig};
use pigeon_bench::{bench_files, Section};
use pigeon_core::Abstraction;
use pigeon_eval::{train_w2v, W2vContext, W2vExperiment};

fn main() {
    let files = bench_files(1000);

    // ---- Table 4a: candidates for `d` in Fig. 1a. ----------------------
    let section = Section::begin("Table 4a: top candidates for the variable `d` (Fig. 1a)");
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(files),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let namer =
        Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default())
            .expect("training corpus parses");
    let fig1 = "function f() { var d = false; while (!d) { if (check()) { d = true; } } }";
    for p in namer.predict(fig1).expect("Fig. 1a parses") {
        println!("candidates for `{}`:", p.current_name);
        for (rank, (name, _)) in p.candidates.iter().enumerate() {
            println!("  {}. {name}", rank + 1);
        }
    }
    println!(
        "\nPaper's Table 4a: done, ended, complete, found, finished, stop, \
         end, success."
    );
    section.end();

    // ---- Table 4b: semantic similarity clusters. ------------------------
    let section = Section::begin("Table 4b: semantic similarities between names (embeddings)");
    let bundle = train_w2v(&W2vExperiment {
        corpus: CorpusConfig::default().with_files(files),
        ..W2vExperiment::table3(W2vContext::AstPaths(Abstraction::Full))
    });
    for probe in ["request", "items", "array", "item", "count", "result", "i"] {
        let Some(word) = bundle.words.get(&probe.to_owned()) else {
            continue;
        };
        let neighbours: Vec<String> = bundle
            .model
            .neighbours(word, 4)
            .into_iter()
            .map(|(w, _)| bundle.words.resolve(w).clone())
            .collect();
        println!("  {probe} ∼ {}", neighbours.join(" ∼ "));
    }
    println!(
        "\nPaper's Table 4b includes: req ∼ request ∼ client; items ∼ values \
         ∼ objects ∼ keys ∼ elements; array ∼ arr ∼ ary ∼ list; i ∼ j ∼ index."
    );
    section.end();
}
