//! Fig. 11: downsampling — accuracy and training time as a function of
//! the probability `p` of keeping each path-context occurrence.

use pigeon_bench::{bench_files, pct, Section};
use pigeon_corpus::CorpusConfig;
use pigeon_eval::downsample_sweep;

fn main() {
    let files = bench_files(700);
    let corpus = CorpusConfig::default().with_files(files);
    let section = Section::begin("Fig. 11: downsampling path-context occurrences (JS variables)");

    let probs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    // Serial points: the figure compares per-point training times.
    let points = downsample_sweep(&corpus, &probs, 1);

    println!("{:>6} {:>10} {:>12}", "p", "accuracy", "train (s)");
    for pt in &points {
        println!(
            "{:>6.1} {:>10} {:>12.2}",
            pt.keep_prob,
            pct(pt.accuracy),
            pt.train_secs
        );
    }

    let full = points.last().expect("p = 1.0 present");
    let p08 = &points[7];
    let p02 = &points[1];
    println!(
        "\nShape targets (paper): p = 0.8 keeps accuracy within noise of \
         p = 1.0 at ~25% less training time — measured Δacc {:+.1} pts, \
         time ratio {:.2}; p = 0.2 still predicts usefully at a fraction \
         of the time — measured {} at {:.0}% of full training time.",
        100.0 * (p08.accuracy - full.accuracy),
        p08.train_secs / full.train_secs.max(1e-9),
        pct(p02.accuracy),
        100.0 * p02.train_secs / full.train_secs.max(1e-9),
    );
    section.end();
}
