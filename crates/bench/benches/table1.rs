//! Table 1: the amounts of data used for the evaluation of each language.
//!
//! The paper's Table 1 reports GitHub repositories, file counts and
//! sizes. Our corpora are synthetic (see DESIGN.md for the substitution),
//! so this harness reports the generated analogue: files, bytes,
//! functions and ground-truth variables per language, plus the typed-Java
//! corpus driving the full-type task.

use pigeon_bench::{bench_files, Section};
use pigeon_corpus::{generate, generate_java_types, CorpusConfig, Language};

fn main() {
    let files = bench_files(1000);
    let section = Section::begin("Table 1: corpus sizes per language");
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10}",
        "Language", "Files", "Size (KB)", "Functions", "Variables"
    );
    for language in Language::ALL {
        let corpus = generate(language, &CorpusConfig::default().with_files(files));
        let stats = corpus.stats();
        println!(
            "{:<12} {:>8} {:>12.1} {:>10} {:>10}",
            language.name(),
            stats.files,
            stats.bytes as f64 / 1024.0,
            stats.functions,
            stats.variables,
        );
    }
    let typed = generate_java_types(&CorpusConfig::default().with_files(files));
    let stats = typed.stats();
    let n_types: usize = typed.docs.iter().map(|d| d.truth.types.len()).sum();
    println!(
        "{:<12} {:>8} {:>12.1} {:>10} {:>10}   ({} typed declarations)",
        "Java (types)",
        stats.files,
        stats.bytes as f64 / 1024.0,
        stats.functions,
        stats.variables,
        n_types,
    );
    println!(
        "\nPaper's Table 1 (for scale comparison): Java 1.7M files/16GB, \
         JavaScript 159k/3.4GB, Python 458k/5.4GB, C# 262k/4.7GB."
    );
    section.end();
}
