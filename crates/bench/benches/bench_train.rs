//! Training-path performance: full CRF training at two corpus sizes,
//! the shard-merge path (`pigeon merge` over partial statistics files),
//! checkpoint resume, and incremental updates vs full retraining.
//!
//! Writes `BENCH_TRAIN.json` at the repo root (override the path with
//! `PIGEON_BENCH_OUT`) with median/p95 per path, host metadata, and the
//! dimensionless ratios the CI perf gate tracks (`perf_gate` compares
//! ratios, which cancel host speed, at ±15%; absolute medians only
//! under `PIGEON_BENCH_STRICT=1`).

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::checkpoint::{decode_checkpoint, encode_checkpoint};
use pigeon::crf::TrainControl;
use pigeon::eval::ElementClass;
use pigeon::{Pigeon, PigeonConfig, TrainRun};
use pigeon_bench::{bench_files, Section};
use std::time::Instant;

/// Times `f` over `iterations` runs and returns `(median, p95)` in
/// microseconds.
fn measure<T>(iterations: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    let mut micros: Vec<f64> = (0..iterations)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    micros.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p95 = micros[((micros.len() - 1) * 95) / 100];
    (micros[micros.len() / 2], p95)
}

fn sources_of(corpus: &pigeon::corpus::Corpus) -> Vec<&str> {
    corpus.docs.iter().map(|d| d.source.as_str()).collect()
}

const SMALL_ITERS: usize = 11;
const MEDIUM_ITERS: usize = 5;
const SHARDS: usize = 4;

fn main() {
    let small_files = bench_files(40);
    let medium_files = small_files * 3;
    let section = Section::begin("Training paths: full, shard-merge, resume, incremental");
    let config = PigeonConfig::default();

    let small = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(small_files),
    );
    let small_refs = sources_of(&small);
    let medium = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(medium_files),
    );
    let medium_refs = sources_of(&medium);

    let train = |refs: &[&str]| {
        Pigeon::train_variable_namer(Language::JavaScript, refs, &config).expect("trains")
    };

    let (small_median, small_p95) = measure(SMALL_ITERS, || train(&small_refs));
    let (medium_median, medium_p95) = measure(MEDIUM_ITERS, || train(&medium_refs));

    // Shard-merge path: partials are produced once (that cost is the
    // workers' extraction, measured by crf_train_*); the merge path is
    // decode + replay + statistics sum + the finishing SGD run.
    let parts: Vec<Vec<u8>> = (0..SHARDS)
        .map(|i| {
            Pigeon::build_training_partial(
                Language::JavaScript,
                ElementClass::Variable,
                &small_refs,
                i,
                SHARDS,
                &config,
            )
            .expect("builds partial")
        })
        .collect();
    let (merge_median, merge_p95) = measure(SMALL_ITERS, || {
        Pigeon::from_partials(&parts).expect("merges")
    });

    // Resume path: snapshot at the halfway epoch once, then measure
    // checkpoint decode + the remaining epochs.
    let halfway = config.crf.epochs / 2;
    let mut snapshot: Option<Vec<u8>> = None;
    let mut on_checkpoint = |state: &pigeon::crf::TrainState| {
        snapshot = Some(encode_checkpoint(state));
    };
    let run = Pigeon::train_namer_resumable(
        Language::JavaScript,
        ElementClass::Variable,
        &small_refs,
        &config,
        TrainControl {
            checkpoint_every: halfway,
            on_checkpoint: Some(&mut on_checkpoint),
            ..TrainControl::default()
        },
    )
    .expect("trains");
    assert!(matches!(run, TrainRun::Completed(_)));
    let snapshot = snapshot.expect("halfway checkpoint fired");
    let (resume_median, resume_p95) = measure(SMALL_ITERS, || {
        let state = decode_checkpoint(&snapshot).expect("decodes");
        let resumed = Pigeon::train_namer_resumable(
            Language::JavaScript,
            ElementClass::Variable,
            &small_refs,
            &config,
            TrainControl {
                resume: Some(state),
                ..TrainControl::default()
            },
        )
        .expect("resumes");
        assert!(matches!(resumed, TrainRun::Completed(_)));
    });

    // Incremental update vs full retrain over the same final corpus.
    let base = train(&small_refs);
    let extra = generate(
        Language::JavaScript,
        &CorpusConfig::default()
            .with_files(small_files / 4)
            .with_seed(0x1CA0),
    );
    let extra_refs = sources_of(&extra);
    let mut combined = small_refs.clone();
    combined.extend(&extra_refs);
    let (update_median, update_p95) =
        measure(SMALL_ITERS, || base.update(&extra_refs).expect("updates"));
    let (retrain_median, retrain_p95) = measure(SMALL_ITERS, || train(&combined));

    let rows = [
        ("crf_train_small", small_median, small_p95),
        ("crf_train_medium", medium_median, medium_p95),
        ("shard_merge", merge_median, merge_p95),
        ("resume", resume_median, resume_p95),
        ("incremental_update", update_median, update_p95),
        ("full_retrain", retrain_median, retrain_p95),
    ];
    println!("{:<20} {:>14} {:>14}", "Path", "Median (µs)", "p95 (µs)");
    for (name, median, p95) in &rows {
        println!("{name:<20} {median:>14.1} {p95:>14.1}");
    }
    let merge_ratio = merge_median / small_median;
    let resume_ratio = resume_median / small_median;
    let incremental_speedup = retrain_median / update_median;
    println!(
        "\nshard_merge/train {merge_ratio:.2}  resume/train {resume_ratio:.2}  \
         incremental speedup {incremental_speedup:.2}×"
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|(name, median, p95)| {
            format!("    \"{name}\": {{\"median_micros\": {median:.1}, \"p95_micros\": {p95:.1}}}")
        })
        .collect();
    let report = format!(
        "{{\n  \"bench\": \"train\",\n  \"corpus_files\": {{\"small\": {small_files}, \
         \"medium\": {medium_files}, \"incremental_added\": {}}},\n  \
         \"iterations\": {{\"small\": {SMALL_ITERS}, \"medium\": {MEDIUM_ITERS}}},\n  \
         \"shards\": {SHARDS},\n  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {}}},\n  \
         \"paths\": {{\n{}\n  }},\n  \"ratios\": {{\n    \
         \"shard_merge_vs_train_small\": {merge_ratio:.3},\n    \
         \"resume_vs_train_small\": {resume_ratio:.3},\n    \
         \"incremental_speedup_vs_full\": {incremental_speedup:.3}\n  }}\n}}\n",
        extra_refs.len(),
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(0, usize::from),
        entries.join(",\n")
    );
    let out = std::env::var("PIGEON_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_TRAIN.json").to_owned()
    });
    std::fs::write(&out, report).expect("writes snapshot");
    println!("\nwrote {out}");
    section.end();
}
