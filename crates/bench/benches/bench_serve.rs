//! Serving-path latency: `POST /v1/predict` over one-shot
//! (`Connection: close`) vs keep-alive connections, and the
//! micro-batched `POST /v1/predict_batch` per-source cost, measured
//! against an in-process server on an ephemeral port.
//!
//! Writes `BENCH_SERVE.json` at the repo root (override with
//! `PIGEON_BENCH_OUT`). CI's perf gate guards the dimensionless
//! `ratios` — keep-alive vs close and batch vs single — which divide
//! out the host's absolute speed.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::serve::{bind, request_shutdown, ServeConfig};
use pigeon::{Pigeon, PigeonConfig};
use pigeon_bench::{bench_files, Section};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const CLOSE_ITERATIONS: usize = 200;
const KEEPALIVE_ITERATIONS: usize = 200;
const BATCH_ITERATIONS: usize = 30;
const BATCH_SIZE: usize = 16;
const SOURCE: &str = "function f(a, b) { b.send(a); return a + b; }";

fn percentiles(mut micros: Vec<f64>) -> (f64, f64) {
    micros.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p95 = micros[((micros.len() - 1) * 95) / 100];
    (micros[micros.len() / 2], p95)
}

/// Writes one request and reads the Content-Length-framed response off
/// a buffered connection, asserting a 200.
fn roundtrip(reader: &mut BufReader<TcpStream>, path: &str, body: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\
         Connection: {connection}\r\n\r\n{body}",
        body.len()
    );
    reader
        .get_mut()
        .write_all(request.as_bytes())
        .expect("writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.contains("200"), "unexpected response: {line}");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .strip_prefix("Content-Length: ")
            .or_else(|| header.strip_prefix("content-length: "))
        {
            content_length = v.parse().expect("numeric length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
}

fn connect(addr: std::net::SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    BufReader::new(stream)
}

fn main() {
    let files = bench_files(200);
    let section = Section::begin("Serving: close vs keep-alive vs micro-batch");

    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(files),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let model =
        Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default())
            .expect("trains");

    let bound = bind(&ServeConfig {
        port: 0,
        ..ServeConfig::default()
    })
    .expect("binds");
    let addr = bound.addr();
    let server = std::thread::spawn(move || bound.run(Some(model)));

    let predict = format!("{{\"source\": \"{SOURCE}\"}}");
    let batch_sources: Vec<String> = (0..BATCH_SIZE).map(|_| format!("\"{SOURCE}\"")).collect();
    let batch = format!("{{\"sources\": [{}]}}", batch_sources.join(", "));

    // Warm up until the worker pool answers.
    for _ in 0..20 {
        roundtrip(&mut connect(addr), "/v1/predict", &predict, true);
    }

    let close: Vec<f64> = (0..CLOSE_ITERATIONS)
        .map(|_| {
            let t = Instant::now();
            roundtrip(&mut connect(addr), "/v1/predict", &predict, true);
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let (close_median, close_p95) = percentiles(close);

    let mut conn = connect(addr);
    let keepalive: Vec<f64> = (0..KEEPALIVE_ITERATIONS)
        .map(|_| {
            let t = Instant::now();
            roundtrip(&mut conn, "/v1/predict", &predict, false);
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let (keepalive_median, keepalive_p95) = percentiles(keepalive);

    let per_source: Vec<f64> = (0..BATCH_ITERATIONS)
        .map(|_| {
            let t = Instant::now();
            roundtrip(&mut conn, "/v1/predict_batch", &batch, false);
            t.elapsed().as_secs_f64() * 1e6 / BATCH_SIZE as f64
        })
        .collect();
    let (batch_median, batch_p95) = percentiles(per_source);

    request_shutdown();
    server.join().expect("server thread").expect("clean exit");

    let keepalive_speedup = close_median / keepalive_median;
    let batch_speedup = keepalive_median / batch_median;
    println!("{:<22} {:>14} {:>14}", "Path", "Median (µs)", "p95 (µs)");
    for (name, median, p95) in [
        ("predict_close", close_median, close_p95),
        ("predict_keepalive", keepalive_median, keepalive_p95),
        ("batch_per_source", batch_median, batch_p95),
    ] {
        println!("{name:<22} {median:>14.1} {p95:>14.1}");
    }
    println!("keep-alive vs close speedup: {keepalive_speedup:.2}×");
    println!("batch vs single speedup:     {batch_speedup:.2}×");

    let report = format!(
        "{{\n  \"bench\": \"serve\",\n  \"corpus_files\": {files},\n  \
         \"iterations\": {{\"close\": {CLOSE_ITERATIONS}, \"keepalive\": {KEEPALIVE_ITERATIONS}, \
         \"batch\": {BATCH_ITERATIONS}}},\n  \"batch_size\": {BATCH_SIZE},\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {}}},\n  \"paths\": {{\n    \
         \"predict_close\": {{\"median_micros\": {close_median:.1}, \"p95_micros\": {close_p95:.1}}},\n    \
         \"predict_keepalive\": {{\"median_micros\": {keepalive_median:.1}, \"p95_micros\": {keepalive_p95:.1}}},\n    \
         \"batch_per_source\": {{\"median_micros\": {batch_median:.1}, \"p95_micros\": {batch_p95:.1}}}\n  }},\n  \
         \"ratios\": {{\n    \"keepalive_vs_close_speedup\": {keepalive_speedup:.3},\n    \
         \"batch_vs_single_speedup\": {batch_speedup:.3}\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(0, usize::from),
    );
    let out = std::env::var("PIGEON_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json").to_owned()
    });
    std::fs::write(&out, report).expect("writes snapshot");
    println!("\nwrote {out}");
    section.end();
}
