//! Table 3: variable-name accuracy with word2vec in JavaScript, holding
//! SGNS fixed and swapping the context definition.

use pigeon_bench::{bench_files, pct, Section};
use pigeon_core::Abstraction;
use pigeon_corpus::CorpusConfig;
use pigeon_eval::{run_w2v_experiment, W2vContext, W2vExperiment};

fn main() {
    let files = bench_files(1200);
    let section = Section::begin("Table 3: word2vec context comparison (JavaScript)");
    println!("{:<38} {:>10} {:>10}", "Model", "Accuracy", "(paper)");
    let rows = [
        (W2vContext::TokenStream { window: 2 }, "20.6%"),
        (W2vContext::PathNeighbours, "23.2%"),
        (W2vContext::AstPaths(Abstraction::Full), "40.4%"),
    ];
    let mut measured = Vec::new();
    for (context, paper) in rows {
        let out = run_w2v_experiment(&W2vExperiment {
            corpus: CorpusConfig::default().with_files(files),
            ..W2vExperiment::table3(context)
        });
        println!(
            "{:<38} {:>10} {:>10}",
            format!("{} + word2vec", context.name()),
            pct(out.accuracy),
            paper,
        );
        measured.push(out.accuracy);
    }
    println!(
        "\nShape target: AST paths ≈ 2× token-stream (paper 40.4 vs 20.6), \
         path-neighbours in between. Measured ratio: {:.2}×.",
        measured[2] / measured[0].max(1e-9),
    );
    section.end();
}
