//! Model cold-start: JSON load (parse + validate + recompile) vs the
//! compiled binary artifact (bulk array reads) across quantizations.
//!
//! Writes `BENCH_MODEL_LOAD.json` at the repo root (override the path
//! with `PIGEON_BENCH_OUT`) with median/p95 per loader and host
//! metadata, the machine-readable snapshot CI and EXPERIMENTS.md track.

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::crf::artifact::Quant;
use pigeon::{Pigeon, PigeonConfig};
use pigeon_bench::{bench_files, Section};
use std::time::Instant;

const ITERATIONS: usize = 40;

/// Times `f` over [`ITERATIONS`] runs and returns `(median, p95)` in
/// microseconds.
fn measure<T>(mut f: impl FnMut() -> T) -> (f64, f64) {
    let mut micros: Vec<f64> = (0..ITERATIONS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    micros.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p95 = micros[((micros.len() - 1) * 95) / 100];
    (micros[micros.len() / 2], p95)
}

fn main() {
    let files = bench_files(400);
    let section = Section::begin("Model load: JSON vs compiled artifact");

    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(files),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let namer =
        Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default())
            .expect("trains");
    let json = namer.to_json().expect("serialises");

    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    let (json_median, json_p95) = measure(|| Pigeon::from_json(&json).expect("loads"));
    rows.push(("json".to_owned(), json.len(), json_median, json_p95));
    for quant in [Quant::F32, Quant::F16, Quant::I8] {
        let bytes = namer.to_artifact(quant).expect("compiles");
        let (median, p95) = measure(|| Pigeon::from_artifact(&bytes).expect("loads"));
        rows.push((
            format!("artifact_{}", quant.name()),
            bytes.len(),
            median,
            p95,
        ));
    }

    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>9}",
        "Loader", "Bytes", "Median (µs)", "p95 (µs)", "Speedup"
    );
    for (name, bytes, median, p95) in &rows {
        println!(
            "{name:<14} {bytes:>12} {median:>14.1} {p95:>14.1} {:>8.1}×",
            json_median / median
        );
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(name, bytes, median, p95)| {
            format!(
                "    \"{name}\": {{\"bytes\": {bytes}, \"median_micros\": {median:.1}, \
                 \"p95_micros\": {p95:.1}, \"speedup_vs_json\": {:.2}}}",
                json_median / median
            )
        })
        .collect();
    let report = format!
        // One key per loader plus host metadata; CI compares the
        // artifact speedup against the committed snapshot.
        (
        "{{\n  \"bench\": \"model_load\",\n  \"corpus_files\": {files},\n  \
         \"iterations\": {ITERATIONS},\n  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \
         \"cores\": {}}},\n  \"loaders\": {{\n{}\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(0, usize::from),
        entries.join(",\n")
    );
    let out = std::env::var("PIGEON_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_MODEL_LOAD.json").to_owned()
    });
    std::fs::write(&out, report).expect("writes snapshot");
    println!("\nwrote {out}");
    section.end();
}
