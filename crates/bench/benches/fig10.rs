//! Fig. 10: variable-name accuracy in JavaScript over the
//! `max_length × max_width` grid, with the UnuglifyJS-style relations
//! baseline as the horizontal reference line.

use pigeon_bench::{bench_files, pct, Section};
use pigeon_corpus::{CorpusConfig, Language};
use pigeon_eval::{length_width_sweep, run_name_experiment, NameExperiment, Representation};

fn main() {
    let files = bench_files(700);
    let corpus = CorpusConfig::default().with_files(files);
    let section = Section::begin("Fig. 10: accuracy vs max_length and max_width (JS variables)");

    let lengths = [2usize, 3, 4, 5, 6, 7];
    let widths = [1usize, 2, 3];
    let cells = length_width_sweep(&corpus, &lengths, &widths, 0);

    print!("{:<10}", "");
    for l in lengths {
        print!("{:>9}", format!("len {l}"));
    }
    println!();
    for w in widths {
        print!("{:<10}", format!("width {w}"));
        for l in lengths {
            let cell = cells
                .iter()
                .find(|c| c.max_length == l && c.max_width == w)
                .expect("cell computed");
            print!("{:>9}", pct(cell.accuracy));
        }
        println!();
    }

    let relations = run_name_experiment(
        &NameExperiment {
            corpus,
            ..NameExperiment::var_names(Language::JavaScript)
        }
        .with_representation(Representation::Relations),
    );
    println!(
        "\nUnuglifyJS-style relations baseline (paper's reference line at \
         60.0%): {}",
        pct(relations.accuracy)
    );
    println!(
        "Shape notes: accuracy rises steeply from length 2 and the width \
         effect is positive but minor, as in the paper; on our corpus the \
         bias–variance optimum (paper §4.2) sits at length ≈ 4 rather than \
         7 because the training set is ~100× smaller."
    );
    section.end();
}
