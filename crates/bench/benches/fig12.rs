//! Fig. 12: the accuracy / training-time trade-off across the path
//! abstraction levels of §5.6 (Java variable names).

use pigeon_bench::{bench_files, pct, Section};
use pigeon_corpus::CorpusConfig;
use pigeon_eval::abstraction_sweep;

fn main() {
    let files = bench_files(700);
    let corpus = CorpusConfig::default().with_files(files);
    let section = Section::begin("Fig. 12: abstraction levels (Java variables)");

    // Serial levels: the figure compares per-level training times.
    let points = abstraction_sweep(&corpus, 1);
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "abstraction", "accuracy", "train (s)", "features"
    );
    for p in &points {
        println!(
            "{:<16} {:>10} {:>12.2} {:>10}",
            p.abstraction.name(),
            pct(p.accuracy),
            p.train_secs,
            p.n_features
        );
    }

    let full = points.last().expect("full is last in Abstraction::ALL");
    let ftl = points
        .iter()
        .find(|p| p.abstraction.name() == "first-top-last")
        .expect("first-top-last present");
    println!(
        "\nShape targets (paper): accuracy increases with retained \
         information at the cost of training time; \"first-top-last\" is \
         the sweet spot at ≈95% of full accuracy — measured {:.0}% of \
         full ({} vs {}).",
        100.0 * ftl.accuracy / full.accuracy.max(1e-9),
        pct(ftl.accuracy),
        pct(full.accuracy),
    );
    section.end();
}
