//! Extraction hot path: AST path-contexts with the data-flow knob off
//! vs on, plus the component costs (parse, AST paths, CFG + fixed
//! point, flow path-contexts).
//!
//! Writes `BENCH_EXTRACT.json` at the repo root (override the path
//! with `PIGEON_BENCH_OUT`) with median/p95 per path and the
//! dimensionless overhead ratios CI gates at ±15%.

use pigeon::ast::Ast;
use pigeon::core::{Abstraction, ExtractionConfig};
use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::eval::{extract_edge_features, Representation};
use pigeon_bench::{bench_files, Section};
use std::time::Instant;

const ITERATIONS: usize = 20;

/// Times one whole-corpus pass of `f` over [`ITERATIONS`] runs and
/// returns `(median, p95)` in microseconds.
fn measure<T>(mut f: impl FnMut() -> T) -> (f64, f64) {
    let mut micros: Vec<f64> = (0..ITERATIONS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    micros.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p95 = micros[((micros.len() - 1) * 95) / 100];
    (micros[micros.len() / 2], p95)
}

fn main() {
    let files = bench_files(300);
    let language = Language::JavaScript;
    let extraction = ExtractionConfig::default();
    let rep = Representation::AstPaths(Abstraction::Full);
    let section = Section::begin("Extraction: AST paths vs + data-flow contexts");

    let corpus = generate(language, &CorpusConfig::default().with_files(files));
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let asts: Vec<Ast> = sources
        .iter()
        .map(|s| language.parse(s).expect("generated corpus parses"))
        .collect();

    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    let mut run = |name: &'static str, median_p95: (f64, f64)| {
        rows.push((name, median_p95.0, median_p95.1));
    };

    // Component costs over pre-parsed trees.
    run(
        "parse",
        measure(|| {
            for s in &sources {
                std::hint::black_box(language.parse(s).expect("parses"));
            }
        }),
    );
    run(
        "ast_paths",
        measure(|| {
            asts.iter()
                .map(|ast| extract_edge_features(language, ast, rep, &extraction).len())
                .sum::<usize>()
        }),
    );
    run(
        "dataflow_edges",
        measure(|| {
            asts.iter()
                .map(|ast| pigeon::analysis::flow_edges(language, ast).len())
                .sum::<usize>()
        }),
    );
    run(
        "dataflow_contexts",
        measure(|| {
            asts.iter()
                .map(|ast| {
                    pigeon::dataflow_edge_features(language, ast, &extraction, Abstraction::Full)
                        .len()
                })
                .sum::<usize>()
        }),
    );

    // End to end: what one training worker does per file, knob off vs on.
    run(
        "extract_off",
        measure(|| {
            sources
                .iter()
                .map(|s| {
                    let ast = language.parse(s).expect("parses");
                    extract_edge_features(language, &ast, rep, &extraction).len()
                })
                .sum::<usize>()
        }),
    );
    run(
        "extract_on",
        measure(|| {
            sources
                .iter()
                .map(|s| {
                    let ast = language.parse(s).expect("parses");
                    extract_edge_features(language, &ast, rep, &extraction).len()
                        + pigeon::dataflow_edge_features(
                            language,
                            &ast,
                            &extraction,
                            Abstraction::Full,
                        )
                        .len()
                })
                .sum::<usize>()
        }),
    );

    let median_of = |name: &str| {
        rows.iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, median, _)| *median)
            .expect("path measured above")
    };
    let on_vs_off = median_of("extract_on") / median_of("extract_off");
    let dataflow_vs_ast_paths = median_of("dataflow_contexts") / median_of("ast_paths");

    println!(
        "{:<20} {:>14} {:>14}",
        "Path (whole corpus)", "Median (µs)", "p95 (µs)"
    );
    for (name, median, p95) in &rows {
        println!("{name:<20} {median:>14.1} {p95:>14.1}");
    }
    println!("\ndataflow on/off overhead: {on_vs_off:.2}×");
    println!("dataflow vs AST paths:    {dataflow_vs_ast_paths:.2}×");

    let entries: Vec<String> = rows
        .iter()
        .map(|(name, median, p95)| {
            format!("    \"{name}\": {{\"median_micros\": {median:.1}, \"p95_micros\": {p95:.1}}}")
        })
        .collect();
    // Absolute timings are informational; CI gates only the host-free
    // ratios (see perf_gate).
    let report = format!(
        "{{\n  \"bench\": \"extract\",\n  \"language\": \"js\",\n  \"corpus_files\": {files},\n  \
         \"iterations\": {ITERATIONS},\n  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \
         \"cores\": {}}},\n  \"paths\": {{\n{}\n  }},\n  \"ratios\": {{\n    \
         \"dataflow_on_vs_off\": {on_vs_off:.3},\n    \
         \"dataflow_vs_ast_paths\": {dataflow_vs_ast_paths:.3}\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(0, usize::from),
        entries.join(",\n")
    );
    let out = std::env::var("PIGEON_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_EXTRACT.json").to_owned()
    });
    std::fs::write(&out, report).expect("writes snapshot");
    println!("\nwrote {out}");
    section.end();
}
