//! Table 2: accuracy comparison for variable-name, method-name and
//! full-type prediction using CRFs — the paper's headline table.
//!
//! Rows and baselines follow the paper: JavaScript compares against the
//! UnuglifyJS-style single-statement relations and the no-path bag;
//! Java against CRFs+4-grams and the rule-based heuristics; Python
//! against no-path; C# has no prior baseline. Method names compare
//! against no-path (the paper's Allamanis-et-al. comparison row is
//! reported from the paper; see EXPERIMENTS.md). Full types compare
//! against the naive all-String baseline.

use pigeon_bench::{bench_files, pct, Section};
use pigeon_corpus::{CorpusConfig, Language};
use pigeon_eval::{
    naive_string_type_accuracy, rule_based_java_vars, run_name_experiment, run_type_experiment,
    NameExperiment, Representation, TypeExperiment,
};

fn main() {
    let files = bench_files(1200);
    let corpus = CorpusConfig::default().with_files(files);

    // ---- Variable names -------------------------------------------------
    let section = Section::begin("Table 2 (top): variable name prediction");
    println!(
        "{:<12} {:>22} {:>22} {:>12} {:>8}",
        "Language", "baseline 1", "baseline 2", "AST paths", "l/w"
    );

    let js = NameExperiment {
        corpus,
        ..NameExperiment::var_names(Language::JavaScript)
    };
    let js_paths = run_name_experiment(&js);
    let js_nopath = run_name_experiment(&js.clone().with_representation(Representation::NoPaths));
    let js_relations =
        run_name_experiment(&js.clone().with_representation(Representation::Relations));
    println!(
        "{:<12} {:>22} {:>22} {:>12} {:>8}",
        "JavaScript",
        format!("{} no-paths", pct(js_nopath.accuracy)),
        format!("{} relations", pct(js_relations.accuracy)),
        pct(js_paths.accuracy),
        format!("{}/{}", js.extraction.max_length, js.extraction.max_width),
    );

    let java = NameExperiment {
        corpus,
        ..NameExperiment::var_names(Language::Java)
    };
    let java_paths = run_name_experiment(&java);
    let java_rule = rule_based_java_vars(&corpus, java.train_frac);
    let java_ngram = run_name_experiment(
        &java
            .clone()
            .with_representation(Representation::NGram { window: 3 }),
    );
    println!(
        "{:<12} {:>22} {:>22} {:>12} {:>8}",
        "Java",
        format!("{} rule-based", pct(java_rule.accuracy)),
        format!("{} 4-grams", pct(java_ngram.accuracy)),
        pct(java_paths.accuracy),
        format!(
            "{}/{}",
            java.extraction.max_length, java.extraction.max_width
        ),
    );

    let python = NameExperiment {
        corpus,
        ..NameExperiment::var_names(Language::Python)
    };
    let py_paths = run_name_experiment(&python);
    let py_nopath =
        run_name_experiment(&python.clone().with_representation(Representation::NoPaths));
    println!(
        "{:<12} {:>22} {:>22} {:>12} {:>8}",
        "Python",
        format!("{} no-paths", pct(py_nopath.accuracy)),
        "",
        pct(py_paths.accuracy),
        format!(
            "{}/{}",
            python.extraction.max_length, python.extraction.max_width
        ),
    );

    let csharp = NameExperiment {
        corpus,
        ..NameExperiment::var_names(Language::CSharp)
    };
    let cs_paths = run_name_experiment(&csharp);
    println!(
        "{:<12} {:>22} {:>22} {:>12} {:>8}",
        "C#",
        "-",
        "",
        pct(cs_paths.accuracy),
        format!(
            "{}/{}",
            csharp.extraction.max_length, csharp.extraction.max_width
        ),
    );
    println!(
        "\nPaper: JS 24.9 (no-paths) / 60.0 (UnuglifyJS) -> 67.3; Java 23.7 \
         (rule-based) / 50.1 (4-grams) -> 58.2; Python 35.2 -> 56.7; C# -> 56.1."
    );
    println!(
        "OoV rates (paper reports 5-15%): JS {:.1}%, Java {:.1}%, Python {:.1}%, C# {:.1}%.",
        100.0 * js_paths.oov_rate,
        100.0 * java_paths.oov_rate,
        100.0 * py_paths.oov_rate,
        100.0 * cs_paths.oov_rate,
    );
    section.end();

    // ---- Method names ---------------------------------------------------
    let section = Section::begin("Table 2 (middle): method name prediction");
    println!(
        "{:<12} {:>18} {:>12} {:>10} {:>14}",
        "Language", "no-paths", "F1", "AST paths", "params (l/w)"
    );
    for language in [Language::JavaScript, Language::Java, Language::Python] {
        let exp = NameExperiment {
            corpus,
            ..NameExperiment::method_names(language)
        };
        let paths = run_name_experiment(&exp);
        let nopath = run_name_experiment(&exp.clone().with_representation(Representation::NoPaths));
        println!(
            "{:<12} {:>18} {:>12} {:>10} {:>14}",
            language.name(),
            pct(nopath.accuracy),
            format!("F1 {:.1}", 100.0 * paths.f1),
            pct(paths.accuracy),
            format!("{}/{}", exp.extraction.max_length, exp.extraction.max_width),
        );
    }
    println!(
        "\nPaper: JS 44.1 → 53.1; Java 16.5/F1 33.9 (Allamanis et al., \
         reported) → 47.3/F1 49.9; Python 41.6 → 51.1."
    );
    section.end();

    // ---- Full types -------------------------------------------------------
    let section = Section::begin("Table 2 (bottom): full type prediction (Java)");
    let types = run_type_experiment(&TypeExperiment {
        corpus,
        ..TypeExperiment::default()
    });
    let naive = naive_string_type_accuracy(&corpus, 0.8);
    println!(
        "{:<12} {:>18} {:>23} {:>14}",
        "Java",
        format!("{} (naive)", pct(naive.accuracy)),
        format!("{} (AST paths)", pct(types.accuracy)),
        "4/1",
    );
    println!("\nPaper: 24.1 (naive String) → 69.1 (AST paths), params 4/1.");
    section.end();

    // ---- Ablation: unary factors (the paper's §5.1 +1.5% note) ---------
    let section = Section::begin("Ablation: unary factors (paper §5.1: ≈ +1.5%)");
    let with_unary = js_paths;
    let without = run_name_experiment(&NameExperiment {
        crf: pigeon_crf::CrfConfig {
            use_unary: false,
            ..pigeon_crf::CrfConfig::default()
        },
        ..js.clone()
    });
    println!(
        "JavaScript variable names: with unary {} vs without {} (Δ {:+.1} pts)",
        pct(with_unary.accuracy),
        pct(without.accuracy),
        100.0 * (with_unary.accuracy - without.accuracy),
    );
    section.end();

    // ---- Ablation: semi-paths (the paper's §5 generalisation note) -----
    let section = Section::begin("Ablation: semi-paths (§5: extra generalisation)");
    let mut leafwise_only = js.clone();
    leafwise_only.extraction.semi_paths = false;
    let without_semis = run_name_experiment(&leafwise_only);
    println!(
        "JavaScript variable names: with semi-paths {} vs leafwise-only {} (Δ {:+.1} pts)",
        pct(js_paths.accuracy),
        pct(without_semis.accuracy),
        100.0 * (js_paths.accuracy - without_semis.accuracy),
    );
    section.end();
}
