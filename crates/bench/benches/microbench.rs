//! Criterion microbenchmarks of the pipeline's hot paths: parsing, path
//! extraction, abstraction/interning, CRF inference and SGNS prediction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pigeon::{Pigeon, PigeonConfig};
use pigeon_core::{extract, Abstraction, ExtractionConfig, PathVocab};
use pigeon_corpus::{generate, CorpusConfig, Language};
use pigeon_crf::{train as train_crf, CrfConfig, Instance, Node};
use pigeon_eval::parallel_map_indexed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn corpus_sources(n: usize) -> Vec<String> {
    generate(Language::JavaScript, &CorpusConfig::default().with_files(n))
        .docs
        .into_iter()
        .map(|d| d.source)
        .collect()
}

fn bench_parsing(c: &mut Criterion) {
    let sources = corpus_sources(50);
    c.bench_function("parse_js_50_files", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(pigeon_js::parse(s).expect("parses"));
            }
        })
    });
}

fn bench_extraction(c: &mut Criterion) {
    let asts: Vec<_> = corpus_sources(50)
        .iter()
        .map(|s| pigeon_js::parse(s).expect("parses"))
        .collect();
    let cfg = ExtractionConfig::with_limits(4, 3);
    c.bench_function("extract_paths_50_files", |b| {
        b.iter(|| {
            for ast in &asts {
                std::hint::black_box(extract(ast, &cfg));
            }
        })
    });
}

fn bench_abstraction_interning(c: &mut Criterion) {
    let asts: Vec<_> = corpus_sources(20)
        .iter()
        .map(|s| pigeon_js::parse(s).expect("parses"))
        .collect();
    let cfg = ExtractionConfig::with_limits(7, 3);
    let contexts: Vec<_> = asts.iter().flat_map(|a| extract(a, &cfg)).collect();
    c.bench_function("intern_paths_first_top_last", |b| {
        b.iter_batched(
            || PathVocab::new(Abstraction::FirstTopLast),
            |mut vocab| {
                for ctx in &contexts {
                    std::hint::black_box(vocab.intern(&ctx.path));
                }
                vocab
            },
            BatchSize::SmallInput,
        )
    });
}

fn toy_instances(n: usize, seed: u64) -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let path = rng.gen_range(0..30u32);
            let mut inst = Instance::new(vec![
                Node::unknown(path % 8),
                Node::unknown(8 + path % 4),
                Node::known(12 + path % 3),
            ]);
            inst.add_pair(0, 2, path);
            inst.add_pair(0, 1, 50 + path % 5);
            inst.add_unary(1, 100 + path);
            inst
        })
        .collect()
}

/// Serial vs parallel per-file parse + extraction over the 400-file
/// synthetic JavaScript corpus: the workload `--jobs` parallelises.
fn bench_parallel_extraction(c: &mut Criterion) {
    let sources = corpus_sources(400);
    let cfg = ExtractionConfig::with_limits(4, 3);
    for jobs in [1usize, 4] {
        c.bench_function(&format!("parse_extract_400_files_jobs{jobs}"), |b| {
            b.iter(|| {
                std::hint::black_box(parallel_map_indexed(&sources, jobs, |_, s| {
                    let ast = pigeon_js::parse(s).expect("parses");
                    extract(&ast, &cfg).len()
                }))
            })
        });
    }
}

/// Serial vs parallel end-to-end facade training (parse + extract fan
/// out; vocabulary interning and CRF training stay sequential).
fn bench_parallel_training(c: &mut Criterion) {
    let sources = corpus_sources(400);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    for jobs in [1usize, 4] {
        let config = PigeonConfig {
            jobs,
            ..PigeonConfig::default()
        };
        c.bench_function(&format!("train_namer_400_files_jobs{jobs}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    Pigeon::train_variable_namer(Language::JavaScript, &refs, &config)
                        .expect("trains"),
                )
            })
        });
    }
}

/// The serving hot path: one trained namer answering queries, serially
/// and through the `predict_batch` fan-out. The lookup-only graph
/// build means no vocabulary clone per call.
fn bench_predict(c: &mut Criterion) {
    let sources = corpus_sources(200);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let (train, queries) = refs.split_at(150);
    let namer = Pigeon::train_variable_namer(Language::JavaScript, train, &PigeonConfig::default())
        .expect("trains");
    c.bench_function("predict_single_program", |b| {
        b.iter(|| std::hint::black_box(namer.predict(queries[0]).expect("parses")))
    });
    for jobs in [1usize, 4] {
        c.bench_function(&format!("predict_batch_50_programs_jobs{jobs}"), |b| {
            b.iter(|| std::hint::black_box(namer.predict_batch(&queries[..50], jobs)))
        });
    }
}

fn bench_crf(c: &mut Criterion) {
    let train_set = toy_instances(300, 1);
    let test_set = toy_instances(100, 2);
    c.bench_function("crf_train_300_instances", |b| {
        b.iter(|| std::hint::black_box(train_crf(&train_set, 15, &CrfConfig::default())))
    });
    let model = train_crf(&train_set, 15, &CrfConfig::default());
    c.bench_function("crf_infer_100_instances", |b| {
        b.iter(|| {
            for inst in &test_set {
                std::hint::black_box(model.predict(inst));
            }
        })
    });
}

/// Denser factor graphs than [`toy_instances`]: several unknowns chained
/// through pairwise factors plus unary evidence, the shape real
/// name-prediction instances take. This is the CRF-training workload the
/// compiled engine is measured on.
fn crf_world(n: usize, seed: u64) -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let path = rng.gen_range(0..40u32);
            let mut inst = Instance::new(vec![
                Node::unknown(path % 10),
                Node::unknown(10 + path % 5),
                Node::unknown(path % 7),
                Node::unknown(15 + path % 3),
                Node::known(18 + path % 2),
                Node::known(path % 4),
            ]);
            inst.add_pair(0, 4, path);
            inst.add_pair(1, 4, 40 + path % 8);
            inst.add_pair(0, 1, 80 + path % 6);
            inst.add_pair(1, 2, 90 + path % 6);
            inst.add_pair(2, 3, 100 + path % 6);
            inst.add_pair(3, 5, 110 + path % 8);
            inst.add_pair(0, 2, 120 + path % 4);
            inst.add_unary(0, 200 + path);
            inst.add_unary(2, 250 + path % 20);
            inst.add_unary(3, 280 + path % 10);
            inst
        })
        .collect()
}

/// The headline CRF-training microbenches: max-margin training over the
/// dense `crf_world` corpora, single-threaded (`jobs = 1`), plus batch MAP
/// inference with a trained model. EXPERIMENTS.md records these
/// before/after the compiled-engine rewrite.
fn bench_crf_engine(c: &mut Criterion) {
    let small = crf_world(150, 11);
    let medium = crf_world(600, 12);
    c.bench_function("crf_train_small", |b| {
        b.iter(|| std::hint::black_box(train_crf(&small, 20, &CrfConfig::default())))
    });
    c.bench_function("crf_train_medium", |b| {
        b.iter(|| std::hint::black_box(train_crf(&medium, 20, &CrfConfig::default())))
    });
    let model = train_crf(&medium, 20, &CrfConfig::default());
    let queries = crf_world(200, 13);
    c.bench_function("crf_infer_batch", |b| {
        b.iter(|| {
            for inst in &queries {
                std::hint::black_box(model.predict(inst));
            }
        })
    });
}

fn bench_sgns(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let pairs: Vec<(u32, u32)> = (0..5000)
        .map(|_| {
            let w = rng.gen_range(0..50u32);
            (w, w * 4 + rng.gen_range(0..4))
        })
        .collect();
    let cfg = pigeon_word2vec::SgnsConfig {
        dim: 32,
        epochs: 2,
        ..pigeon_word2vec::SgnsConfig::default()
    };
    c.bench_function("sgns_train_5000_pairs", |b| {
        b.iter(|| std::hint::black_box(pigeon_word2vec::train(&pairs, 50, 201, &cfg)))
    });
    let model = pigeon_word2vec::train(&pairs, 50, 201, &cfg);
    let contexts: Vec<u32> = (0..16).collect();
    c.bench_function("sgns_predict_full_vocab", |b| {
        b.iter(|| std::hint::black_box(model.predict(&contexts, None)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parsing, bench_extraction, bench_parallel_extraction,
        bench_parallel_training, bench_abstraction_interning, bench_predict,
        bench_crf, bench_crf_engine, bench_sgns
}
criterion_main!(benches);
