//! By-value tree construction.
//!
//! Recursive-descent parsers with operator-precedence climbing produce
//! subtrees bottom-up (the left operand exists before its parent binary
//! node), which does not fit the event-ordered [`AstBuilder`]. [`TreeNode`]
//! is a plain owned tree that such parsers assemble freely and then lower
//! into an [`Ast`] arena in one pass.

use crate::symbol::{Kind, Symbol};
use crate::tree::{Ast, AstBuilder};

/// An owned, freely composable AST node, lowered to an [`Ast`] with
/// [`TreeNode::into_ast`].
///
/// ```
/// use pigeon_ast::TreeNode;
/// let tree = TreeNode::inner("Assign=", vec![
///     TreeNode::leaf("SymbolRef", "d"),
///     TreeNode::leaf("True", "true"),
/// ]);
/// let ast = tree.into_ast();
/// assert_eq!(ast.leaves().len(), 2);
/// assert_eq!(ast.kind(ast.root()).as_str(), "Assign=");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The node's grammar symbol.
    pub kind: Kind,
    /// The terminal value; `Some` makes this node a leaf.
    pub value: Option<Symbol>,
    /// Child subtrees (must be empty when `value` is `Some`).
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A nonterminal with the given children.
    pub fn inner(kind: impl Into<Kind>, children: Vec<TreeNode>) -> Self {
        TreeNode {
            kind: kind.into(),
            value: None,
            children,
        }
    }

    /// A childless terminal carrying `value`.
    pub fn leaf(kind: impl Into<Kind>, value: impl Into<Symbol>) -> Self {
        TreeNode {
            kind: kind.into(),
            value: Some(value.into()),
            children: Vec::new(),
        }
    }

    /// A childless nonterminal (e.g. `Break`).
    pub fn nullary(kind: impl Into<Kind>) -> Self {
        TreeNode {
            kind: kind.into(),
            value: None,
            children: Vec::new(),
        }
    }

    /// Appends a child and returns `self`, for fluent construction.
    pub fn with_child(mut self, child: TreeNode) -> Self {
        debug_assert!(self.value.is_none(), "terminals cannot have children");
        self.children.push(child);
        self
    }

    /// Lowers this tree into an arena [`Ast`] rooted at this node.
    ///
    /// # Panics
    ///
    /// Panics if a node carries both a value and children.
    pub fn into_ast(self) -> Ast {
        let mut b = AstBuilder::new(self.kind);
        assert!(
            self.value.is_none() || self.children.is_empty(),
            "terminals cannot have children"
        );
        for c in self.children {
            lower(&mut b, c);
        }
        b.finish()
    }
}

fn lower(b: &mut AstBuilder, node: TreeNode) {
    match node.value {
        Some(v) => {
            assert!(node.children.is_empty(), "terminals cannot have children");
            b.token(node.kind, v);
        }
        None => {
            b.start_node(node.kind);
            for c in node.children {
                lower(b, c);
            }
            b.finish_node();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::sexp;

    #[test]
    fn lowering_preserves_shape() {
        let t = TreeNode::inner(
            "While",
            vec![
                TreeNode::inner("UnaryPrefix!", vec![TreeNode::leaf("SymbolRef", "d")]),
                TreeNode::nullary("Block"),
            ],
        );
        let ast = t.into_ast();
        ast.check_invariants().unwrap();
        assert_eq!(sexp(&ast), "(While (UnaryPrefix! (SymbolRef d)) (Block))");
    }

    #[test]
    fn with_child_appends_in_order() {
        let t = TreeNode::inner("Call", vec![])
            .with_child(TreeNode::leaf("SymbolRef", "f"))
            .with_child(TreeNode::leaf("Number", "1"));
        assert_eq!(t.children.len(), 2);
        let ast = t.into_ast();
        assert_eq!(
            ast.leaves()
                .iter()
                .map(|&l| ast.value(l).unwrap().as_str())
                .collect::<Vec<_>>(),
            ["f", "1"]
        );
    }

    #[test]
    #[should_panic(expected = "terminals cannot have children")]
    fn terminal_with_children_panics_on_lowering() {
        let bad = TreeNode {
            kind: Kind::new("X"),
            value: Some(Symbol::new("v")),
            children: vec![TreeNode::nullary("Y")],
        };
        let _ = TreeNode::inner("Root", vec![bad]).into_ast();
    }
}
