//! Generic abstract syntax tree substrate for the PIGEON path-based
//! representation.
//!
//! This crate realises Definition 4.1 of *A General Path-Based
//! Representation for Predicting Program Properties* (Alon et al., PLDI
//! 2018): an AST is a tuple `⟨N, T, X, s, δ, val⟩`. Every language
//! frontend in this workspace (`pigeon-js`, `pigeon-java`, `pigeon-python`,
//! `pigeon-csharp`) lowers source text into the same [`Ast`] arena so that
//! path extraction in `pigeon-core` is language-agnostic — the property the
//! paper calls out as making the representation "useful for any programming
//! language".
//!
//! # Example
//!
//! Building the AST of the paper's Fig. 1 fragment `d = true;` by hand:
//!
//! ```
//! use pigeon_ast::{AstBuilder, Symbol};
//!
//! let mut b = AstBuilder::new("Toplevel");
//! b.start_node("Assign=");
//! b.token("SymbolRef", "d");
//! b.token("True", "true");
//! b.finish_node();
//! let ast = b.finish();
//!
//! let d = ast.leaves_with_value(Symbol::new("d"));
//! assert_eq!(d.len(), 1);
//! assert_eq!(ast.kind(ast.parent(d[0]).unwrap()).as_str(), "Assign=");
//! ```

mod build;
mod print;
mod symbol;
mod tree;

pub use build::TreeNode;
pub use print::{pretty, sexp};
pub use symbol::{Kind, Symbol};
pub use tree::{Ancestors, Ast, AstBuilder, NodeId};

/// A half-open byte range into the source text a node was parsed from.
///
/// Spans are informational: path extraction never inspects them, but
/// prediction reports use them to point at the renamed element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// Number of bytes covered.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_len() {
        assert_eq!(Span::new(2, 7).len(), 5);
        assert!(Span::default().is_empty());
    }
}
