//! Debug rendering of ASTs.
//!
//! Golden tests in the language frontends compare parser output against
//! the indented form produced by [`pretty`], so the format is stable:
//! one node per line, two-space indentation, terminals rendered as
//! `Kind "value"`.

use crate::tree::{Ast, NodeId};
use std::fmt::Write as _;

/// Renders `ast` as an indented multi-line string.
///
/// ```
/// use pigeon_ast::{AstBuilder, pretty};
/// let mut b = AstBuilder::new("Assign=");
/// b.token("SymbolRef", "d");
/// b.token("True", "true");
/// let text = pretty(&b.finish());
/// assert_eq!(text, "Assign=\n  SymbolRef \"d\"\n  True \"true\"\n");
/// ```
pub fn pretty(ast: &Ast) -> String {
    let mut out = String::new();
    render(ast, ast.root(), 0, &mut out);
    out
}

fn render(ast: &Ast, id: NodeId, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    match ast.value(id) {
        Some(v) => {
            let _ = writeln!(out, "{} {:?}", ast.kind(id), v.as_str());
        }
        None => {
            let _ = writeln!(out, "{}", ast.kind(id));
        }
    }
    for &c in ast.children(id) {
        render(ast, c, indent + 1, out);
    }
}

/// Renders a single-line S-expression form, useful in assertion messages.
///
/// ```
/// use pigeon_ast::{AstBuilder, sexp};
/// let mut b = AstBuilder::new("Assign=");
/// b.token("SymbolRef", "d");
/// b.token("True", "true");
/// assert_eq!(sexp(&b.finish()), "(Assign= (SymbolRef d) (True true))");
/// ```
pub fn sexp(ast: &Ast) -> String {
    let mut out = String::new();
    render_sexp(ast, ast.root(), &mut out);
    out
}

fn render_sexp(ast: &Ast, id: NodeId, out: &mut String) {
    match ast.value(id) {
        Some(v) => {
            let _ = write!(out, "({} {})", ast.kind(id), v.as_str());
        }
        None => {
            let _ = write!(out, "({}", ast.kind(id));
            for &c in ast.children(id) {
                out.push(' ');
                render_sexp(ast, c, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::AstBuilder;

    #[test]
    fn pretty_nests_children() {
        let mut b = AstBuilder::new("While");
        b.start_node("UnaryPrefix!");
        b.token("SymbolRef", "d");
        b.finish_node();
        let text = pretty(&b.finish());
        assert_eq!(text, "While\n  UnaryPrefix!\n    SymbolRef \"d\"\n");
    }

    #[test]
    fn sexp_of_leaf_only_root() {
        let b = AstBuilder::new("Toplevel");
        assert_eq!(sexp(&b.finish()), "(Toplevel)");
    }
}
