//! Global string interning for node kinds and terminal values.
//!
//! Both [`Kind`] (the grammar symbol of a node, e.g. `While` or `SymbolRef`)
//! and [`Symbol`] (the value of a terminal, e.g. an identifier name) are
//! lightweight indices into a process-wide interner. Interning makes node
//! kinds and terminal values `Copy`, cheap to hash and compare, and lets
//! path representations be packed into small integer sequences.
//!
//! The interner is append-only and never frees strings; this mirrors the
//! lifetime of a vocabulary in a learning pipeline, where every observed
//! kind or value may later be needed to render a prediction.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The process-wide interner shared by [`Kind`] and [`Symbol`].
struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        // Leaking is deliberate: interned strings live for the process.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }

    fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

fn intern(s: &str) -> u32 {
    interner().lock().expect("interner poisoned").intern(s)
}

fn resolve(id: u32) -> &'static str {
    interner().lock().expect("interner poisoned").resolve(id)
}

/// An interned grammar symbol naming the syntactic category of an AST node.
///
/// Kinds are the alphabet from which AST paths are built: the path in
/// Fig. 1 of the paper is the kind sequence
/// `SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef`.
///
/// ```
/// use pigeon_ast::Kind;
/// let a = Kind::new("While");
/// let b = Kind::new("While");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "While");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kind(u32);

impl Kind {
    /// Interns `name` and returns its kind.
    pub fn new(name: &str) -> Self {
        Kind(intern(name))
    }

    /// The string this kind was interned from.
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }

    /// The raw interner index, stable for the lifetime of the process.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kind({})", self.as_str())
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Kind {
    fn from(s: &str) -> Self {
        Kind::new(s)
    }
}

/// An interned terminal value: an identifier, literal text, or other token
/// payload attached to a leaf of the AST (the set `X` in Definition 4.1).
///
/// ```
/// use pigeon_ast::Symbol;
/// let s = Symbol::new("done");
/// assert_eq!(s.as_str(), "done");
/// assert_eq!(s, Symbol::new("done"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `text` and returns its symbol.
    pub fn new(text: &str) -> Self {
        Symbol(intern(text))
    }

    /// The string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }

    /// The raw interner index, stable for the lifetime of the process.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Kind::new("If");
        let b = Kind::new("If");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        assert_ne!(Kind::new("If"), Kind::new("While"));
        assert_ne!(Symbol::new("x"), Symbol::new("y"));
    }

    #[test]
    fn kinds_and_symbols_share_one_namespace_without_colliding_semantically() {
        // A Kind and a Symbol interned from the same text resolve to the
        // same string but remain different Rust types.
        let k = Kind::new("name");
        let s = Symbol::new("name");
        assert_eq!(k.as_str(), s.as_str());
    }

    #[test]
    fn display_matches_source_text() {
        assert_eq!(Kind::new("Assign=").to_string(), "Assign=");
        assert_eq!(Symbol::new("total_count").to_string(), "total_count");
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let k = Kind::new(&format!("ThreadKind{}", i % 2));
                    k.as_str().to_owned()
                })
            })
            .collect();
        for h in handles {
            let s = h.join().unwrap();
            assert!(s.starts_with("ThreadKind"));
        }
    }
}
