//! The arena-backed abstract syntax tree.
//!
//! This is a direct realisation of Definition 4.1 of the paper: an AST is a
//! tuple `⟨N, T, X, s, δ, val⟩` of nonterminals, terminals, terminal values,
//! a root, a children function and a value function. [`Ast`] stores both
//! node sets in one arena; [`Ast::children`] is `δ`, [`Ast::parent`] is the
//! inverse `π`, and [`Ast::value`] is `val`.

use crate::symbol::{Kind, Symbol};
use crate::Span;
use std::fmt;

/// Index of a node inside an [`Ast`] arena.
///
/// Node ids are only meaningful for the tree that produced them; they are
/// assigned in creation order, so the root built by [`AstBuilder`] is the
/// id `NodeId(0)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from a raw arena slot.
    ///
    /// The id is only meaningful when passed back to the [`Ast`] whose
    /// [`NodeId::index`] produced `raw`; methods on another tree may panic
    /// or return unrelated nodes.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node {
    kind: Kind,
    parent: Option<NodeId>,
    /// Position of this node in its parent's child list; 0 for the root.
    child_index: u32,
    children: Vec<NodeId>,
    value: Option<Symbol>,
    span: Span,
}

/// An abstract syntax tree for one compilation unit.
///
/// Construct with [`AstBuilder`]; a built tree is immutable, which lets the
/// extraction layer cache leaf lists and depths.
///
/// ```
/// use pigeon_ast::{Ast, AstBuilder};
/// let mut b = AstBuilder::new("While");
/// b.start_node("UnaryPrefix!");
/// b.token("SymbolRef", "d");
/// b.finish_node();
/// let ast: Ast = b.finish();
/// assert_eq!(ast.len(), 3);
/// assert_eq!(ast.kind(ast.root()).as_str(), "While");
/// ```
#[derive(Debug, Clone)]
pub struct Ast {
    nodes: Vec<Node>,
    /// Depth of each node (root has depth 0), computed at build time.
    depths: Vec<u32>,
    /// Terminal nodes in left-to-right source order.
    leaves: Vec<NodeId>,
}

impl Ast {
    /// The root node `s`.
    ///
    /// # Panics
    ///
    /// Never panics: a built tree always has at least its root.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes (terminals and nonterminals).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree consists of the root alone.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The grammar symbol of `id`.
    pub fn kind(&self, id: NodeId) -> Kind {
        self.nodes[id.index()].kind
    }

    /// The parent `π(id)`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The children `δ(id)` in source order; empty for terminals.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// The value `val(id)` if `id` is a terminal carrying one.
    pub fn value(&self, id: NodeId) -> Option<Symbol> {
        self.nodes[id.index()].value
    }

    /// The source range this node covers, if the frontend recorded one.
    pub fn span(&self, id: NodeId) -> Span {
        self.nodes[id.index()].span
    }

    /// Whether `id` is a terminal (carries a value, has no children).
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.nodes[id.index()].value.is_some()
    }

    /// The position of `id` among its siblings (0 for the root).
    ///
    /// Sibling positions define the *width* of a path (paper §4.2, Fig. 5):
    /// the width of a leaf-to-leaf path is the absolute difference of the
    /// child indices of the two children of the top node through which the
    /// path passes.
    pub fn child_index(&self, id: NodeId) -> usize {
        self.nodes[id.index()].child_index as usize
    }

    /// Distance from the root (the root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.depths[id.index()] as usize
    }

    /// All terminal nodes in left-to-right source order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Iterates over every node id in preorder (parents before children).
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Arena order *is* preorder for trees built by `AstBuilder`.
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates from `id` upward through its ancestors, ending at the root.
    /// Does not yield `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            ast: self,
            cur: self.parent(id),
        }
    }

    /// The lowest common ancestor of `a` and `b`.
    ///
    /// Returns `a` itself when `a == b`, and either node when one is an
    /// ancestor of the other.
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node must have a parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node must have a parent");
        }
        while a != b {
            a = self.parent(a).expect("nodes in one tree share a root");
            b = self.parent(b).expect("nodes in one tree share a root");
        }
        a
    }

    /// All terminal node ids whose value equals `value`.
    pub fn leaves_with_value(&self, value: Symbol) -> Vec<NodeId> {
        self.leaves
            .iter()
            .copied()
            .filter(|&l| self.value(l) == Some(value))
            .collect()
    }

    /// Test-support hook: overwrites the recorded parent of `id`,
    /// deliberately breaking the `π` = `δ⁻¹` invariant.
    ///
    /// A tree built through [`AstBuilder`] is correct by construction, so
    /// checkers of the structural invariants (this crate's
    /// [`Ast::check_invariants`], the audit layer's well-formedness pass)
    /// have no failing inputs to exercise without this hook. It exists
    /// only to seed violations in tests; nothing in the pipeline calls it.
    #[doc(hidden)]
    pub fn corrupt_parent_for_tests(&mut self, id: NodeId, parent: Option<NodeId>) {
        self.nodes[id.index()].parent = parent;
    }

    /// Test-support hook: overwrites the recorded sibling position of
    /// `id`. See [`Ast::corrupt_parent_for_tests`].
    #[doc(hidden)]
    pub fn corrupt_child_index_for_tests(&mut self, id: NodeId, child_index: u32) {
        self.nodes[id.index()].child_index = child_index;
    }

    /// Verifies the structural invariants of Definition 4.1; used by tests
    /// and by frontends in debug builds.
    ///
    /// Checks that every node except the root appears exactly once in
    /// exactly one child list, that `π` inverts `δ`, that terminals are
    /// childless, and that recorded depths and child indices are
    /// consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen_as_child = vec![false; self.nodes.len()];
        for id in self.preorder() {
            for (pos, &c) in self.children(id).iter().enumerate() {
                if seen_as_child[c.index()] {
                    return Err(format!("{c:?} appears in two child lists"));
                }
                seen_as_child[c.index()] = true;
                if self.parent(c) != Some(id) {
                    return Err(format!("parent of {c:?} does not invert children"));
                }
                if self.child_index(c) != pos {
                    return Err(format!("child_index of {c:?} is stale"));
                }
                if self.depth(c) != self.depth(id) + 1 {
                    return Err(format!("depth of {c:?} is stale"));
                }
            }
            if self.is_terminal(id) && !self.children(id).is_empty() {
                return Err(format!("terminal {id:?} has children"));
            }
        }
        if seen_as_child[0] {
            return Err("root appears in a child list".to_owned());
        }
        for (i, seen) in seen_as_child.iter().enumerate().skip(1) {
            if !seen {
                return Err(format!("node {i} is unreachable from the root"));
            }
        }
        Ok(())
    }
}

/// Iterator over the proper ancestors of a node. See [`Ast::ancestors`].
#[derive(Debug)]
pub struct Ancestors<'a> {
    ast: &'a Ast,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.cur?;
        self.cur = self.ast.parent(cur);
        Some(cur)
    }
}

/// Event-style builder for [`Ast`].
///
/// Frontends call [`start_node`](AstBuilder::start_node) /
/// [`finish_node`](AstBuilder::finish_node) around the children of each
/// nonterminal and [`token`](AstBuilder::token) for terminals, mirroring
/// the shape of a recursive-descent parse.
///
/// ```
/// use pigeon_ast::AstBuilder;
/// let mut b = AstBuilder::new("Assign=");
/// b.token("SymbolRef", "d");
/// b.token("True", "true");
/// let ast = b.finish();
/// assert_eq!(ast.leaves().len(), 2);
/// ```
#[derive(Debug)]
pub struct AstBuilder {
    nodes: Vec<Node>,
    depths: Vec<u32>,
    stack: Vec<NodeId>,
}

impl AstBuilder {
    /// Starts a tree whose root has kind `root_kind`.
    pub fn new(root_kind: impl Into<Kind>) -> Self {
        let root = Node {
            kind: root_kind.into(),
            parent: None,
            child_index: 0,
            children: Vec::new(),
            value: None,
            span: Span::default(),
        };
        AstBuilder {
            nodes: vec![root],
            depths: vec![0],
            stack: vec![NodeId(0)],
        }
    }

    fn attach(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let parent = *self.stack.last().expect("builder stack never empty");
        let depth = self.depths[parent.index()] + 1;
        let mut node = node;
        node.parent = Some(parent);
        node.child_index = self.nodes[parent.index()].children.len() as u32;
        self.nodes[parent.index()].children.push(id);
        self.nodes.push(node);
        self.depths.push(depth);
        id
    }

    /// Opens a nonterminal child of the current node; subsequent nodes are
    /// attached under it until [`finish_node`](AstBuilder::finish_node).
    pub fn start_node(&mut self, kind: impl Into<Kind>) -> NodeId {
        let id = self.attach(Node {
            kind: kind.into(),
            parent: None,
            child_index: 0,
            children: Vec::new(),
            value: None,
            span: Span::default(),
        });
        self.stack.push(id);
        id
    }

    /// Closes the most recently opened nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching
    /// [`start_node`](AstBuilder::start_node).
    pub fn finish_node(&mut self) {
        assert!(self.stack.len() > 1, "finish_node without start_node");
        self.stack.pop();
    }

    /// Adds a terminal child carrying `value` to the current node.
    pub fn token(&mut self, kind: impl Into<Kind>, value: impl Into<Symbol>) -> NodeId {
        self.attach(Node {
            kind: kind.into(),
            parent: None,
            child_index: 0,
            children: Vec::new(),
            value: Some(value.into()),
            span: Span::default(),
        })
    }

    /// Adds a terminal child with an explicit source span.
    pub fn token_spanned(
        &mut self,
        kind: impl Into<Kind>,
        value: impl Into<Symbol>,
        span: Span,
    ) -> NodeId {
        let id = self.token(kind, value);
        self.nodes[id.index()].span = span;
        id
    }

    /// Records the source span of an already-attached node.
    pub fn set_span(&mut self, id: NodeId, span: Span) {
        self.nodes[id.index()].span = span;
    }

    /// Number of nodes attached so far (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists so far.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Completes the tree.
    ///
    /// # Panics
    ///
    /// Panics if some nonterminal opened with
    /// [`start_node`](AstBuilder::start_node) was never closed.
    pub fn finish(self) -> Ast {
        assert!(
            self.stack.len() == 1,
            "finish called with {} unclosed node(s)",
            self.stack.len() - 1
        );
        let leaves = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.value.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        Ast {
            nodes: self.nodes,
            depths: self.depths,
            leaves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the AST of Fig. 1 of the paper:
    /// `while (!d) { if (someCondition()) { d = true; } }`
    pub(crate) fn fig1_ast() -> Ast {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("While");
        {
            b.start_node("UnaryPrefix!");
            b.token("SymbolRef", "d");
            b.finish_node();
            b.start_node("If");
            {
                b.start_node("Call");
                b.token("SymbolRef", "someCondition");
                b.finish_node();
                b.start_node("Assign=");
                b.token("SymbolRef", "d");
                b.token("True", "true");
                b.finish_node();
            }
            b.finish_node();
        }
        b.finish_node();
        b.finish()
    }

    #[test]
    fn fig1_shape() {
        let ast = fig1_ast();
        ast.check_invariants().unwrap();
        assert_eq!(ast.leaves().len(), 4);
        let values: Vec<_> = ast
            .leaves()
            .iter()
            .map(|&l| ast.value(l).unwrap().as_str())
            .collect();
        assert_eq!(values, ["d", "someCondition", "d", "true"]);
    }

    #[test]
    fn parent_inverts_children() {
        let ast = fig1_ast();
        for id in ast.preorder() {
            for &c in ast.children(id) {
                assert_eq!(ast.parent(c), Some(id));
            }
        }
    }

    #[test]
    fn lca_of_d_occurrences_is_while() {
        let ast = fig1_ast();
        let d = Symbol::new("d");
        let occ = ast.leaves_with_value(d);
        assert_eq!(occ.len(), 2);
        let lca = ast.lowest_common_ancestor(occ[0], occ[1]);
        assert_eq!(ast.kind(lca).as_str(), "While");
    }

    #[test]
    fn lca_degenerate_cases() {
        let ast = fig1_ast();
        let leaf = ast.leaves()[0];
        assert_eq!(ast.lowest_common_ancestor(leaf, leaf), leaf);
        assert_eq!(ast.lowest_common_ancestor(ast.root(), leaf), ast.root());
        assert_eq!(ast.lowest_common_ancestor(leaf, ast.root()), ast.root());
    }

    #[test]
    fn ancestors_walk_to_root() {
        let ast = fig1_ast();
        let d = ast.leaves()[0];
        let kinds: Vec<_> = ast.ancestors(d).map(|a| ast.kind(a).as_str()).collect();
        assert_eq!(kinds, ["UnaryPrefix!", "While", "Toplevel"]);
    }

    #[test]
    fn depths_and_child_indices() {
        let ast = fig1_ast();
        assert_eq!(ast.depth(ast.root()), 0);
        let assign_rhs = ast.leaves()[3];
        assert_eq!(ast.kind(assign_rhs).as_str(), "True");
        assert_eq!(ast.child_index(assign_rhs), 1);
        assert_eq!(ast.depth(assign_rhs), 4);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_builder_panics() {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("While");
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "finish_node without start_node")]
    fn overpopped_builder_panics() {
        let mut b = AstBuilder::new("Toplevel");
        b.finish_node();
    }

    #[test]
    fn spans_round_trip() {
        let mut b = AstBuilder::new("Toplevel");
        let t = b.token_spanned("SymbolRef", "x", Span::new(3, 4));
        let ast = b.finish();
        assert_eq!(ast.span(t), Span::new(3, 4));
    }

    #[test]
    fn empty_tree_is_empty() {
        let ast = AstBuilder::new("Toplevel").finish();
        assert!(ast.is_empty());
        assert_eq!(ast.len(), 1);
        assert!(ast.leaves().is_empty());
        ast.check_invariants().unwrap();
    }
}
