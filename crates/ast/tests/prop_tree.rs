//! Property tests for the AST arena invariants of Definition 4.1.

use pigeon_ast::{Ast, AstBuilder, NodeId};
use proptest::prelude::*;

/// A recipe for a random tree: a preorder script of builder operations.
#[derive(Debug, Clone)]
enum Op {
    Start(u8),
    Token(u8, u8),
    Finish,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..6).prop_map(Op::Start),
            (0u8..6, 0u8..10).prop_map(|(k, v)| Op::Token(k, v)),
            Just(Op::Finish),
        ],
        0..120,
    )
}

/// Replays a script, ignoring unbalanced `Finish` ops and closing any
/// still-open nodes at the end, so every script yields a valid tree.
fn build(ops: &[Op]) -> Ast {
    let mut b = AstBuilder::new("Root");
    let mut depth = 0usize;
    for op in ops {
        match op {
            Op::Start(k) => {
                b.start_node(format!("Nt{k}").as_str());
                depth += 1;
            }
            Op::Token(k, v) => {
                b.token(format!("T{k}").as_str(), format!("v{v}").as_str());
            }
            Op::Finish => {
                if depth > 0 {
                    b.finish_node();
                    depth -= 1;
                }
            }
        }
    }
    for _ in 0..depth {
        b.finish_node();
    }
    b.finish()
}

proptest! {
    #[test]
    fn invariants_hold_for_random_trees(ops in ops_strategy()) {
        let ast = build(&ops);
        prop_assert!(ast.check_invariants().is_ok());
    }

    #[test]
    fn every_node_reaches_root_through_ancestors(ops in ops_strategy()) {
        let ast = build(&ops);
        for id in ast.preorder() {
            if id != ast.root() {
                let last = ast.ancestors(id).last();
                prop_assert_eq!(last, Some(ast.root()));
            }
        }
    }

    #[test]
    fn lca_is_symmetric_and_is_a_common_ancestor(ops in ops_strategy()) {
        let ast = build(&ops);
        let ids: Vec<NodeId> = ast.preorder().collect();
        for (i, &a) in ids.iter().enumerate().step_by(7) {
            for &b in ids.iter().skip(i).step_by(11) {
                let l = ast.lowest_common_ancestor(a, b);
                prop_assert_eq!(l, ast.lowest_common_ancestor(b, a));
                let anc_a: Vec<NodeId> =
                    std::iter::once(a).chain(ast.ancestors(a)).collect();
                let anc_b: Vec<NodeId> =
                    std::iter::once(b).chain(ast.ancestors(b)).collect();
                prop_assert!(anc_a.contains(&l));
                prop_assert!(anc_b.contains(&l));
            }
        }
    }

    #[test]
    fn leaves_are_exactly_the_valued_nodes(ops in ops_strategy()) {
        let ast = build(&ops);
        let from_scan: Vec<NodeId> =
            ast.preorder().filter(|&n| ast.value(n).is_some()).collect();
        prop_assert_eq!(ast.leaves(), &from_scan[..]);
    }

    #[test]
    fn depth_equals_ancestor_count(ops in ops_strategy()) {
        let ast = build(&ops);
        for id in ast.preorder() {
            prop_assert_eq!(ast.depth(id), ast.ancestors(id).count());
        }
    }
}
