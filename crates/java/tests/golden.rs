//! Golden tests: realistic Java programs parse to stable shapes.

use pigeon_ast::Symbol;

#[test]
fn paper_fig9_count_exact_shape() {
    let src = "class C {\n    int count(List<Integer> values, int value) {\n        int \
               count = 0;\n        for (int v : values) {\n            if (v == value) {\n\
                                count++;\n            }\n        }\n        return count;\n\
                    }\n}\n";
    let ast = pigeon_java::parse(src).unwrap();
    assert_eq!(
        pigeon_ast::sexp(&ast),
        "(CompilationUnit (ClassDecl (NameClass C) (MethodDecl (PrimitiveType int) \
         (NameMethod count) (Parameter (ClassType (TypeName List) (TypeArgs (ClassType \
         (TypeName Integer)))) (NameParam values)) (Parameter (PrimitiveType int) \
         (NameParam value)) (Block (LocalVar (PrimitiveType int) (VariableDeclarator \
         (NameVar count) (IntLit 0))) (ForEach (PrimitiveType int) (NameVar v) (NameRef \
         values) (Block (If (Binary== (NameRef v) (NameRef value)) (Block \
         (ExpressionStmt (UnaryPostfix++ (NameRef count))))))) (Return (NameRef \
         count))))))"
    );
}

#[test]
fn repository_pattern_class() {
    let src = r#"
package com.example.store;

import java.util.HashMap;
import java.util.List;

public class UserRepository {
    private HashMap<String, User> cache = new HashMap<String, User>();
    private Database database;

    public UserRepository(Database database) {
        this.database = database;
    }

    public User findById(String id) {
        User cached = cache.get(id);
        if (cached != null) {
            return cached;
        }
        User loaded = database.query(id);
        if (loaded != null) {
            cache.put(id, loaded);
        }
        return loaded;
    }

    public int countActive(List<User> users) {
        int count = 0;
        for (User user : users) {
            if (user.active) {
                count++;
            }
        }
        return count;
    }
}
"#;
    let ast = pigeon_java::parse(src).unwrap();
    ast.check_invariants().unwrap();
    assert_eq!(ast.leaves_with_value(Symbol::new("cache")).len(), 3);
    assert_eq!(ast.leaves_with_value(Symbol::new("database")).len(), 5);
    let methods = ast
        .preorder()
        .filter(|&n| ast.kind(n).as_str() == "MethodDecl")
        .count();
    assert_eq!(methods, 2);
    let ctors = ast
        .preorder()
        .filter(|&n| ast.kind(n).as_str() == "ConstructorDecl")
        .count();
    assert_eq!(ctors, 1);
}

#[test]
fn generic_bounds_and_arrays_mix() {
    let src = "class A { java.util.Map<String, int[]> index(int[][] grid) { return null; } }";
    let ast = pigeon_java::parse(src).unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains(
        "(TypeArgs (ClassType (TypeName String)) (ArrayType \
                           (PrimitiveType int)))"
    ));
    assert!(text.contains(
        "(Parameter (ArrayType (ArrayType (PrimitiveType int))) \
                           (NameParam grid))"
    ));
}

#[test]
fn exceptions_and_resources() {
    let src = "class A { String read(String path) throws IOException { try { \
               BufferedReader reader = open(path); String line = reader.readLine(); \
               return line; } finally { close(); } } }";
    let ast = pigeon_java::parse(src).unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains("(Throws (ClassType (TypeName IOException)))"));
    assert!(text.contains(
        "(Finally (Block (ExpressionStmt (MethodCall (NameCall \
                           close)))))"
    ));
}

#[test]
fn operators_associate_left() {
    let src = "class A { int f(int a, int b, int c) { return a - b - c; } }";
    let text = pigeon_ast::sexp(&pigeon_java::parse(src).unwrap());
    assert!(text.contains("(Binary- (Binary- (NameRef a) (NameRef b)) (NameRef c))"));
}
