//! Recursive-descent parser for the Java subset.
//!
//! Node kinds are JavaParser-flavoured: `CompilationUnit`, `ClassDecl`,
//! `MethodDecl`, `LocalVar`, `NameRef`, `MethodCall`, `FieldAccess`, and
//! structured type nodes (`ClassType` / `PrimitiveType` / `ArrayType`).
//! Declared names use distinct terminal kinds (`NameVar`, `NameParam`,
//! `NameMethod`, `NameField`, `NameClass`) so paths can tell a definition
//! from a reference — the same distinction UglifyJS's `SymbolVar` /
//! `SymbolRef` gives the JavaScript frontend.

use crate::lexer::{is_keyword, tokenize, LexError, Token, TokenKind, PRIMITIVES};
use pigeon_ast::{Ast, TreeNode};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a Java compilation unit into a PIGEON AST rooted at
/// `CompilationUnit`.
///
/// # Errors
///
/// Returns [`ParseError`] on input outside the supported subset.
///
/// ```
/// # fn main() -> Result<(), pigeon_java::ParseError> {
/// let ast = pigeon_java::parse("class A { int x; }")?;
/// assert_eq!(
///     pigeon_ast::sexp(&ast),
///     "(CompilationUnit (ClassDecl (NameClass A) (FieldDecl \
///      (PrimitiveType int) (VariableDeclarator (NameField x)))))"
/// );
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Ast, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut children = Vec::new();
    if p.at("package") {
        p.bump();
        let name = p.qualified_name()?;
        p.expect(";")?;
        children.push(TreeNode::inner(
            "PackageDecl",
            vec![TreeNode::leaf("Name", name.as_str())],
        ));
    }
    while p.at("import") {
        p.bump();
        let name = p.qualified_name()?;
        p.expect(";")?;
        children.push(TreeNode::inner(
            "Import",
            vec![TreeNode::leaf("Name", name.as_str())],
        ));
    }
    while !p.at_eof() {
        children.push(p.class_decl()?);
    }
    Ok(TreeNode::inner("CompilationUnit", children).into_ast())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult = Result<TreeNode, ParseError>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn at(&self, text: &str) -> bool {
        let t = self.peek();
        matches!(t.kind, TokenKind::Ident | TokenKind::Punct) && t.text == text
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.at(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseError> {
        if self.at(text) {
            Ok(self.bump())
        } else {
            Err(self.error(&format!("expected `{text}`, found `{}`", self.peek().text)))
        }
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.peek().offset,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            Ok(self.bump().text)
        } else {
            Err(self.error(&format!("expected identifier, found `{}`", t.text)))
        }
    }

    fn qualified_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.ident()?;
        while self.at(".") {
            // `import a.b.*;` ends with a star.
            self.bump();
            if self.eat("*") {
                name.push_str(".*");
                break;
            }
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    fn skip_annotations(&mut self) {
        while self.at("@") {
            self.bump();
            let _ = self.ident();
            if self.at("(") {
                let mut depth = 0usize;
                loop {
                    if self.at("(") {
                        depth += 1;
                    } else if self.at(")") {
                        depth -= 1;
                        self.bump();
                        if depth == 0 {
                            break;
                        }
                        continue;
                    } else if self.at_eof() {
                        break;
                    }
                    self.bump();
                }
            }
        }
    }

    fn modifiers(&mut self) -> Vec<TreeNode> {
        let mut mods = Vec::new();
        loop {
            self.skip_annotations();
            let t = self.peek();
            if t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "public"
                        | "private"
                        | "protected"
                        | "static"
                        | "final"
                        | "abstract"
                        | "synchronized"
                )
            {
                let m = self.bump().text;
                mods.push(TreeNode::leaf("Modifier", m.as_str()));
            } else {
                return mods;
            }
        }
    }

    // ---- declarations ---------------------------------------------------

    fn class_decl(&mut self) -> PResult {
        let mut children = self.modifiers();
        let kw = if self.eat("interface") {
            "InterfaceDecl"
        } else {
            self.expect("class")?;
            "ClassDecl"
        };
        let name = self.ident()?;
        children.push(TreeNode::leaf("NameClass", name.as_str()));
        if self.eat("extends") {
            children.push(TreeNode::inner("Extends", vec![self.type_node()?]));
        }
        if self.eat("implements") {
            let mut impls = vec![self.type_node()?];
            while self.eat(",") {
                impls.push(self.type_node()?);
            }
            children.push(TreeNode::inner("Implements", impls));
        }
        self.expect("{")?;
        while !self.at("}") {
            children.push(self.member(&name)?);
        }
        self.expect("}")?;
        Ok(TreeNode::inner(kw, children))
    }

    /// A field, method or constructor declaration.
    fn member(&mut self, class_name: &str) -> PResult {
        let mut children = self.modifiers();
        // Constructor: `ClassName (`.
        if self.peek().text == class_name && self.tokens[self.pos + 1].text == "(" {
            let name = self.ident()?;
            children.push(TreeNode::leaf("NameMethod", name.as_str()));
            self.params_and_body(&mut children)?;
            return Ok(TreeNode::inner("ConstructorDecl", children));
        }
        let ty = self.type_node()?;
        let name = self.ident()?;
        if self.at("(") {
            children.push(ty);
            children.push(TreeNode::leaf("NameMethod", name.as_str()));
            self.params_and_body(&mut children)?;
            return Ok(TreeNode::inner("MethodDecl", children));
        }
        // Field declaration (possibly several declarators).
        children.push(ty);
        let mut first = vec![TreeNode::leaf("NameField", name.as_str())];
        if self.eat("=") {
            first.push(self.expression()?);
        }
        children.push(TreeNode::inner("VariableDeclarator", first));
        while self.eat(",") {
            let n = self.ident()?;
            let mut d = vec![TreeNode::leaf("NameField", n.as_str())];
            if self.eat("=") {
                d.push(self.expression()?);
            }
            children.push(TreeNode::inner("VariableDeclarator", d));
        }
        self.expect(";")?;
        Ok(TreeNode::inner("FieldDecl", children))
    }

    fn params_and_body(&mut self, children: &mut Vec<TreeNode>) -> Result<(), ParseError> {
        self.expect("(")?;
        while !self.at(")") {
            let ty = self.type_node()?;
            let name = self.ident()?;
            children.push(TreeNode::inner(
                "Parameter",
                vec![ty, TreeNode::leaf("NameParam", name.as_str())],
            ));
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        if self.eat("throws") {
            let mut thrown = vec![self.type_node()?];
            while self.eat(",") {
                thrown.push(self.type_node()?);
            }
            children.push(TreeNode::inner("Throws", thrown));
        }
        if self.eat(";") {
            // Abstract/interface method: no body.
            return Ok(());
        }
        children.push(self.block()?);
        Ok(())
    }

    // ---- types ----------------------------------------------------------

    fn type_node(&mut self) -> PResult {
        let mut base = self.base_type_node()?;
        while self.at("[") && self.tokens[self.pos + 1].text == "]" {
            self.bump();
            self.expect("]")?;
            base = TreeNode::inner("ArrayType", vec![base]);
        }
        Ok(base)
    }

    /// A type without trailing `[]` suffixes, as needed after `new` where
    /// `[` begins an array-creation size instead.
    fn base_type_node(&mut self) -> PResult {
        let t = self.peek().clone();
        let base = if t.kind == TokenKind::Ident && PRIMITIVES.contains(&t.text.as_str()) {
            self.bump();
            TreeNode::leaf("PrimitiveType", t.text.as_str())
        } else {
            let name = self.qualified_name()?;
            let mut children = vec![TreeNode::leaf("TypeName", name.as_str())];
            if self.at("<") {
                self.bump();
                let mut args = Vec::new();
                if !self.at(">") {
                    args.push(self.type_node()?);
                    while self.eat(",") {
                        args.push(self.type_node()?);
                    }
                }
                self.expect(">")?;
                children.push(TreeNode::inner("TypeArgs", args));
            }
            TreeNode::inner("ClassType", children)
        };
        Ok(base)
    }

    /// Attempts to parse `Type Ident` at the current position; returns
    /// `None` (with the position restored) when the tokens do not form a
    /// declaration head.
    fn try_decl_head(&mut self) -> Option<(TreeNode, String)> {
        let save = self.pos;
        let ty = match self.type_node() {
            Ok(t) => t,
            Err(_) => {
                self.pos = save;
                return None;
            }
        };
        match self.ident() {
            Ok(name) if self.at("=") || self.at(";") || self.at(",") || self.at(":") => {
                Some((ty, name))
            }
            _ => {
                self.pos = save;
                None
            }
        }
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> PResult {
        self.expect("{")?;
        let mut stmts = Vec::new();
        while !self.at("}") {
            stmts.push(self.statement()?);
        }
        self.expect("}")?;
        Ok(TreeNode::inner("Block", stmts))
    }

    fn statement(&mut self) -> PResult {
        if self.at("{") {
            return self.block();
        }
        if self.at("if") {
            self.bump();
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            let then = self.statement()?;
            let mut children = vec![cond, then];
            if self.eat("else") {
                children.push(self.statement()?);
            }
            return Ok(TreeNode::inner("If", children));
        }
        if self.at("while") {
            self.bump();
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            let body = self.statement()?;
            return Ok(TreeNode::inner("While", vec![cond, body]));
        }
        if self.at("do") {
            self.bump();
            let body = self.statement()?;
            self.expect("while")?;
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(TreeNode::inner("Do", vec![body, cond]));
        }
        if self.at("for") {
            return self.for_statement();
        }
        if self.at("return") {
            self.bump();
            let mut children = Vec::new();
            if !self.at(";") {
                children.push(self.expression()?);
            }
            self.expect(";")?;
            return Ok(TreeNode::inner("Return", children));
        }
        if self.at("break") {
            self.bump();
            self.expect(";")?;
            return Ok(TreeNode::nullary("Break"));
        }
        if self.at("continue") {
            self.bump();
            self.expect(";")?;
            return Ok(TreeNode::nullary("Continue"));
        }
        if self.at("throw") {
            self.bump();
            let e = self.expression()?;
            self.expect(";")?;
            return Ok(TreeNode::inner("Throw", vec![e]));
        }
        if self.at("try") {
            return self.try_statement();
        }
        if self.at("switch") {
            return self.switch_statement();
        }
        // Local variable declaration or expression statement.
        if let Some((ty, name)) = self.try_decl_head() {
            let mut decl = vec![TreeNode::leaf("NameVar", name.as_str())];
            if self.eat("=") {
                decl.push(self.expression()?);
            }
            let mut children = vec![ty, TreeNode::inner("VariableDeclarator", decl)];
            while self.eat(",") {
                let n = self.ident()?;
                let mut d = vec![TreeNode::leaf("NameVar", n.as_str())];
                if self.eat("=") {
                    d.push(self.expression()?);
                }
                children.push(TreeNode::inner("VariableDeclarator", d));
            }
            self.expect(";")?;
            return Ok(TreeNode::inner("LocalVar", children));
        }
        let e = self.expression()?;
        self.expect(";")?;
        Ok(TreeNode::inner("ExpressionStmt", vec![e]))
    }

    fn for_statement(&mut self) -> PResult {
        self.expect("for")?;
        self.expect("(")?;
        // For-each: `for (Type name : expr)`.
        if let Some((ty, name)) = self.try_decl_head() {
            if self.eat(":") {
                let iterable = self.expression()?;
                self.expect(")")?;
                let body = self.statement()?;
                return Ok(TreeNode::inner(
                    "ForEach",
                    vec![ty, TreeNode::leaf("NameVar", name.as_str()), iterable, body],
                ));
            }
            // Classic for with a declaration initialiser.
            let mut decl = vec![TreeNode::leaf("NameVar", name.as_str())];
            if self.eat("=") {
                decl.push(self.expression()?);
            }
            let init = TreeNode::inner(
                "LocalVar",
                vec![ty, TreeNode::inner("VariableDeclarator", decl)],
            );
            return self.classic_for_tail(Some(init));
        }
        let init = if self.at(";") {
            None
        } else {
            Some(TreeNode::inner("ExpressionStmt", vec![self.expression()?]))
        };
        self.classic_for_tail(init)
    }

    fn classic_for_tail(&mut self, init: Option<TreeNode>) -> PResult {
        self.expect(";")?;
        let mut children = Vec::new();
        if let Some(i) = init {
            children.push(i);
        }
        if !self.at(";") {
            children.push(self.expression()?);
        }
        self.expect(";")?;
        if !self.at(")") {
            children.push(self.expression()?);
        }
        self.expect(")")?;
        children.push(self.statement()?);
        Ok(TreeNode::inner("For", children))
    }

    fn try_statement(&mut self) -> PResult {
        self.expect("try")?;
        let mut children = vec![self.block()?];
        while self.at("catch") {
            self.bump();
            self.expect("(")?;
            let ty = self.type_node()?;
            let name = self.ident()?;
            self.expect(")")?;
            let body = self.block()?;
            children.push(TreeNode::inner(
                "Catch",
                vec![ty, TreeNode::leaf("NameParam", name.as_str()), body],
            ));
        }
        if self.eat("finally") {
            children.push(TreeNode::inner("Finally", vec![self.block()?]));
        }
        if children.len() == 1 {
            return Err(self.error("try requires catch or finally"));
        }
        Ok(TreeNode::inner("Try", children))
    }

    fn switch_statement(&mut self) -> PResult {
        self.expect("switch")?;
        self.expect("(")?;
        let scrutinee = self.expression()?;
        self.expect(")")?;
        self.expect("{")?;
        let mut children = vec![scrutinee];
        while !self.at("}") {
            if self.eat("case") {
                let v = self.expression()?;
                self.expect(":")?;
                let mut body = vec![v];
                while !self.at("case") && !self.at("default") && !self.at("}") {
                    body.push(self.statement()?);
                }
                children.push(TreeNode::inner("Case", body));
            } else {
                self.expect("default")?;
                self.expect(":")?;
                let mut body = Vec::new();
                while !self.at("case") && !self.at("default") && !self.at("}") {
                    body.push(self.statement()?);
                }
                children.push(TreeNode::inner("Default", body));
            }
        }
        self.expect("}")?;
        Ok(TreeNode::inner("Switch", children))
    }

    // ---- expressions ----------------------------------------------------

    fn expression(&mut self) -> PResult {
        let lhs = self.conditional()?;
        for op in ["=", "+=", "-=", "*=", "/=", "%="] {
            if self.at(op) {
                self.bump();
                let rhs = self.expression()?;
                return Ok(TreeNode::inner(
                    format!("Assign{op}").as_str(),
                    vec![lhs, rhs],
                ));
            }
        }
        Ok(lhs)
    }

    fn conditional(&mut self) -> PResult {
        let cond = self.binary(0)?;
        if self.eat("?") {
            let then = self.expression()?;
            self.expect(":")?;
            let alt = self.expression()?;
            return Ok(TreeNode::inner("Conditional", vec![cond, then, alt]));
        }
        Ok(cond)
    }

    const BINARY_TIERS: [&'static [&'static str]; 6] = [
        &["||"],
        &["&&"],
        &["==", "!="],
        &["<", ">", "<=", ">=", "instanceof"],
        &["+", "-"],
        &["*", "/", "%"],
    ];

    fn binary(&mut self, tier: usize) -> PResult {
        if tier >= Self::BINARY_TIERS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(tier + 1)?;
        loop {
            let op = Self::BINARY_TIERS[tier]
                .iter()
                .find(|op| self.at(op))
                .copied();
            match op {
                Some("instanceof") => {
                    self.bump();
                    let ty = self.type_node()?;
                    lhs = TreeNode::inner("InstanceOf", vec![lhs, ty]);
                }
                Some(op) => {
                    self.bump();
                    let rhs = self.binary(tier + 1)?;
                    lhs = TreeNode::inner(format!("Binary{op}").as_str(), vec![lhs, rhs]);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> PResult {
        for op in ["!", "-", "+", "++", "--"] {
            if self.at(op) {
                self.bump();
                let operand = self.unary()?;
                return Ok(TreeNode::inner(
                    format!("UnaryPrefix{op}").as_str(),
                    vec![operand],
                ));
            }
        }
        // Cast: `(Type) expr` — backtrack if the parens don't hold a type.
        if self.at("(") {
            let save = self.pos;
            self.bump();
            if let Ok(ty) = self.type_node() {
                if self.at(")") {
                    self.bump();
                    // A cast must be followed by the start of a unary
                    // expression; `(x) + 1` would otherwise misparse.
                    let t = self.peek();
                    let starts_unary = matches!(
                        t.kind,
                        TokenKind::Number | TokenKind::String | TokenKind::Char
                    ) || (t.kind == TokenKind::Ident
                        && (!is_keyword(&t.text)
                            || matches!(
                                t.text.as_str(),
                                "new" | "this" | "true" | "false" | "null"
                            )))
                        || t.text == "(";
                    if starts_unary {
                        let operand = self.unary()?;
                        return Ok(TreeNode::inner("Cast", vec![ty, operand]));
                    }
                }
            }
            self.pos = save;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult {
        let mut e = self.primary()?;
        loop {
            if self.at(".") {
                self.bump();
                let name = self.ident()?;
                if self.at("(") {
                    let args = self.call_args()?;
                    let mut children = vec![e, TreeNode::leaf("NameCall", name.as_str())];
                    children.extend(args);
                    e = TreeNode::inner("MethodCall", children);
                } else {
                    e = TreeNode::inner(
                        "FieldAccess",
                        vec![e, TreeNode::leaf("NameField", name.as_str())],
                    );
                }
            } else if self.at("[") {
                self.bump();
                let idx = self.expression()?;
                self.expect("]")?;
                e = TreeNode::inner("ArrayAccess", vec![e, idx]);
            } else if self.at("++") || self.at("--") {
                let op = self.bump().text;
                e = TreeNode::inner(format!("UnaryPostfix{op}").as_str(), vec![e]);
            } else {
                return Ok(e);
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<TreeNode>, ParseError> {
        self.expect("(")?;
        let mut args = Vec::new();
        while !self.at(")") {
            args.push(self.expression()?);
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(args)
    }

    fn primary(&mut self) -> PResult {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Number => {
                self.bump();
                Ok(TreeNode::leaf("IntLit", t.text.as_str()))
            }
            TokenKind::String => {
                self.bump();
                Ok(TreeNode::leaf("StringLit", t.text.as_str()))
            }
            TokenKind::Char => {
                self.bump();
                Ok(TreeNode::leaf("CharLit", t.text.as_str()))
            }
            TokenKind::Ident => match t.text.as_str() {
                "true" | "false" => {
                    self.bump();
                    Ok(TreeNode::leaf("BooleanLit", t.text.as_str()))
                }
                "null" => {
                    self.bump();
                    Ok(TreeNode::leaf("NullLit", "null"))
                }
                "this" => {
                    self.bump();
                    Ok(TreeNode::leaf("This", "this"))
                }
                "new" => {
                    self.bump();
                    let ty = self.base_type_node()?;
                    if self.at("[") {
                        self.bump();
                        let size = self.expression()?;
                        self.expect("]")?;
                        return Ok(TreeNode::inner("ArrayCreation", vec![ty, size]));
                    }
                    let args = self.call_args()?;
                    let mut children = vec![ty];
                    children.extend(args);
                    Ok(TreeNode::inner("ObjectCreation", children))
                }
                _ if is_keyword(&t.text) => {
                    Err(self.error(&format!("unexpected keyword `{}`", t.text)))
                }
                _ => {
                    self.bump();
                    if self.at("(") {
                        // Unqualified call: `foo(args)`.
                        let args = self.call_args()?;
                        let mut children = vec![TreeNode::leaf("NameCall", t.text.as_str())];
                        children.extend(args);
                        return Ok(TreeNode::inner("MethodCall", children));
                    }
                    Ok(TreeNode::leaf("NameRef", t.text.as_str()))
                }
            },
            TokenKind::Punct if t.text == "(" => {
                self.bump();
                let e = self.expression()?;
                self.expect(")")?;
                Ok(e)
            }
            _ => Err(self.error(&format!("unexpected token `{}`", t.text))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::sexp;

    fn s(src: &str) -> String {
        sexp(&parse(src).unwrap())
    }

    #[test]
    fn minimal_class_with_field() {
        assert_eq!(
            s("class A { int x = 1; }"),
            "(CompilationUnit (ClassDecl (NameClass A) (FieldDecl (PrimitiveType int) \
             (VariableDeclarator (NameField x) (IntLit 1)))))"
        );
    }

    #[test]
    fn package_and_imports() {
        assert_eq!(
            s("package com.example; import java.util.List; class A { }"),
            "(CompilationUnit (PackageDecl (Name com.example)) (Import (Name \
             java.util.List)) (ClassDecl (NameClass A)))"
        );
    }

    #[test]
    fn paper_fig9_count_method() {
        let src = "class C { int count(List<Integer> values, int value) { int count = 0; \
                   for (int v : values) { if (v == value) { count++; } } return count; } }";
        let text = s(src);
        assert!(text.contains("(MethodDecl (PrimitiveType int) (NameMethod count)"));
        assert!(text.contains("(ForEach (PrimitiveType int) (NameVar v) (NameRef values)"));
        assert!(text.contains("(UnaryPostfix++ (NameRef count))"));
    }

    #[test]
    fn paper_fig9_done_loop() {
        let src = "class C { void run() { boolean done = false; while (!done) { \
                   if (someCondition()) { done = true; } } } }";
        let text = s(src);
        assert!(text.contains(
            "(LocalVar (PrimitiveType boolean) (VariableDeclarator (NameVar done) \
             (BooleanLit false)))"
        ));
        assert!(text.contains("(While (UnaryPrefix! (NameRef done))"));
        assert!(text.contains("(Assign= (NameRef done) (BooleanLit true))"));
    }

    #[test]
    fn generics_and_qualified_types() {
        assert_eq!(
            s("class A { java.util.Map<String, List<Integer>> m; }"),
            "(CompilationUnit (ClassDecl (NameClass A) (FieldDecl (ClassType (TypeName \
             java.util.Map) (TypeArgs (ClassType (TypeName String)) (ClassType (TypeName \
             List) (TypeArgs (ClassType (TypeName Integer)))))) (VariableDeclarator \
             (NameField m)))))"
        );
    }

    #[test]
    fn arrays_and_array_access() {
        let text = s("class A { void f() { int[] xs = new int[10]; xs[0] = 1; } }");
        assert!(text.contains("(ArrayType (PrimitiveType int))"));
        assert!(text.contains("(ArrayCreation (PrimitiveType int) (IntLit 10))"));
        assert!(text.contains("(Assign= (ArrayAccess (NameRef xs) (IntLit 0)) (IntLit 1))"));
    }

    #[test]
    fn constructors_and_this_assignment() {
        let text = s("class Point { int x; Point(int x) { this.x = x; } }");
        assert!(text.contains(
            "(ConstructorDecl (NameMethod Point) (Parameter \
                               (PrimitiveType int) (NameParam x))"
        ));
        assert!(text.contains("(Assign= (FieldAccess (This this) (NameField x)) (NameRef x))"));
    }

    #[test]
    fn method_calls_qualified_and_unqualified() {
        let text = s("class A { void f(HttpClient client) { client.execute(get()); } }");
        assert!(text.contains(
            "(MethodCall (NameRef client) (NameCall execute) (MethodCall (NameCall get)))"
        ));
    }

    #[test]
    fn try_catch_and_throw() {
        let text = s("class A { void f() { try { g(); } catch (IOException e) { \
                      throw new RuntimeException(e); } } }");
        assert!(text.contains("(Catch (ClassType (TypeName IOException)) (NameParam e)"));
        assert!(text.contains(
            "(Throw (ObjectCreation (ClassType (TypeName RuntimeException)) (NameRef e)))"
        ));
    }

    #[test]
    fn cast_and_instanceof() {
        let text = s(
            "class A { void f(Object o) { if (o instanceof String) { String s = \
                      (String) o; } } }",
        );
        assert!(text.contains("(InstanceOf (NameRef o) (ClassType (TypeName String)))"));
        assert!(text.contains("(Cast (ClassType (TypeName String)) (NameRef o))"));
    }

    #[test]
    fn parenthesized_expr_is_not_a_cast() {
        let text = s("class A { int f(int x) { return (x) + 1; } }");
        assert!(text.contains("(Binary+ (NameRef x) (IntLit 1))"));
    }

    #[test]
    fn annotations_are_skipped() {
        let text = s("class A { @Override public String toString() { return \"a\"; } }");
        assert!(text.contains("(Modifier public)"));
        assert!(text.contains("(NameMethod toString)"));
    }

    #[test]
    fn interface_with_abstract_method() {
        assert_eq!(
            s("interface Shape { double area(); }"),
            "(CompilationUnit (InterfaceDecl (NameClass Shape) (MethodDecl (PrimitiveType \
             double) (NameMethod area))))"
        );
    }

    #[test]
    fn classic_for_and_compound_assign() {
        let text = s(
            "class A { int sum(int[] xs) { int total = 0; for (int i = 0; \
                      i < xs.length; i++) { total += xs[i]; } return total; } }",
        );
        assert!(text.contains(
            "(For (LocalVar (PrimitiveType int) (VariableDeclarator \
                               (NameVar i) (IntLit 0)))"
        ));
        assert!(text.contains(
            "(Binary< (NameRef i) (FieldAccess (NameRef xs) \
                               (NameField length)))"
        ));
        assert!(text.contains(
            "(Assign+= (NameRef total) (ArrayAccess (NameRef xs) \
                               (NameRef i)))"
        ));
    }

    #[test]
    fn switch_statement() {
        let text =
            s("class A { int f(int x) { switch (x) { case 1: return 1; default: return 0; } } }");
        assert!(text.contains(
            "(Switch (NameRef x) (Case (IntLit 1) (Return (IntLit 1))) \
                               (Default (Return (IntLit 0))))"
        ));
    }

    #[test]
    fn extends_implements() {
        let text = s("class A extends B implements C, D { }");
        assert!(text.contains("(Extends (ClassType (TypeName B)))"));
        assert!(text.contains("(Implements (ClassType (TypeName C)) (ClassType (TypeName D)))"));
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("class { }").is_err());
        assert!(parse("class A { int; }").is_err());
        assert!(parse("class A { void f() { if } }").is_err());
    }

    #[test]
    fn invariants_hold() {
        let ast =
            parse("package p; class A { private int n; public int get() { return this.n; } }")
                .unwrap();
        ast.check_invariants().unwrap();
    }
}
