//! Java-subset frontend producing PIGEON ASTs.
//!
//! Node kinds are JavaParser-flavoured (the parser the paper's PIGEON tool
//! used for Java). Declared names get dedicated terminal kinds —
//! `NameVar`, `NameParam`, `NameField`, `NameMethod`, `NameClass` — while
//! references are `NameRef` / `NameCall`, so AST paths can distinguish a
//! definition site from a use site.
//!
//! # Supported subset
//!
//! Package/import headers; class and interface declarations with
//! `extends`/`implements`; fields, methods, constructors with modifiers
//! and `throws`; structured types (primitives, qualified class types,
//! generics, arrays); the statement suite (locals, `if`, `while`, `do`,
//! classic `for`, `for`-each, `switch`, `try`/`catch`/`finally`,
//! `return`, `break`, `continue`, `throw`); and an expression grammar
//! with assignment, conditional, binary tiers, `instanceof`, casts,
//! unary/postfix operators, method calls, field and array access, and
//! object/array creation. Annotations are accepted and skipped.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), pigeon_java::ParseError> {
//! let ast = pigeon_java::parse("class A { boolean done = false; }")?;
//! assert!(pigeon_ast::sexp(&ast).contains("(NameField done)"));
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;

pub use lexer::{is_keyword, tokenize, LexError, Token, TokenKind, KEYWORDS, PRIMITIVES};
pub use parser::{parse, ParseError};
