//! Robustness: the frontend never panics, it returns `Err` on garbage.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_never_panics_on_printable_ascii(src in "[ -~\\n\\t]{0,200}") {
        let _ = pigeon_python::parse(&src);
    }
}
