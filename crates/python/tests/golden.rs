//! Golden tests: realistic Python programs parse to stable shapes.

use pigeon_ast::Symbol;

#[test]
fn paper_fig7_sh3_full_pipeline() {
    // The paper's Fig. 7 Popen wrapper (predicted names column).
    let src = "def sh3(cmd):\n    process = Popen(cmd, stdout=PIPE, stderr=PIPE, \
               shell=True)\n    out, err = process.communicate()\n    retcode = \
               process.returncode\n    if retcode:\n        raise \
               CalledProcessError(retcode, cmd)\n    else:\n        return out.rstrip(), \
               err.rstrip()\n";
    let ast = pigeon_python::parse(src).unwrap();
    ast.check_invariants().unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains(
        "(Assign (TupleStore (NameStore out) (NameStore err)) (Call (Attribute (Name \
         process) (AttrName communicate))))"
    ));
    assert!(text.contains("(Raise (Call (Name CalledProcessError) (Name retcode) (Name cmd)))"));
    assert!(text.contains(
        "(Return (Tuple (Call (Attribute (Name out) (AttrName rstrip))) (Call \
         (Attribute (Name err) (AttrName rstrip)))))"
    ));
    assert_eq!(ast.leaves_with_value(Symbol::new("process")).len(), 3);
}

#[test]
fn class_with_state_machine() {
    let src = r#"
class Tokenizer:
    def __init__(self, text):
        self.text = text
        self.pos = 0

    def peek(self):
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def advance(self):
        ch = self.peek()
        if ch is not None:
            self.pos += 1
        return ch

def tokenize(text):
    scanner = Tokenizer(text)
    tokens = []
    while True:
        ch = scanner.advance()
        if ch is None:
            break
        if ch != ' ':
            tokens.append(ch)
    return tokens
"#;
    let ast = pigeon_python::parse(src).unwrap();
    ast.check_invariants().unwrap();
    let defs = ast
        .preorder()
        .filter(|&n| ast.kind(n).as_str() == "FunctionDef")
        .count();
    assert_eq!(defs, 4);
    let classes = ast
        .preorder()
        .filter(|&n| ast.kind(n).as_str() == "ClassDef")
        .count();
    assert_eq!(classes, 1);
}

#[test]
fn comprehension_free_loops_with_slices() {
    let src = "def window(xs, k):\n    out = []\n    for i in range(len(xs)):\n        \
               chunk = xs[i:i + k]\n        if len(chunk) == k:\n            \
               out.append(chunk)\n    return out\n";
    let text = pigeon_ast::sexp(&pigeon_python::parse(src).unwrap());
    assert!(text.contains(
        "(Subscript (Name xs) (Slice (Lower (Name i)) (Upper (BinOp+ (Name i) (Name \
         k)))))"
    ));
}

#[test]
fn chained_boolean_logic_keeps_shape() {
    let src = "ok = a and b or not c and d\n";
    let text = pigeon_ast::sexp(&pigeon_python::parse(src).unwrap());
    assert!(text.contains(
        "(BoolOpOr (BoolOpAnd (Name a) (Name b)) (BoolOpAnd (UnaryOpNot (Name c)) \
         (Name d)))"
    ));
}

#[test]
fn blank_lines_and_comments_between_blocks() {
    let src = "def f():\n    # setup\n    x = 1\n\n    # compute\n    return x\n\n\n# \
               trailing comment\ndef g():\n    return 2\n";
    let ast = pigeon_python::parse(src).unwrap();
    let defs = ast
        .preorder()
        .filter(|&n| ast.kind(n).as_str() == "FunctionDef")
        .count();
    assert_eq!(defs, 2);
}
