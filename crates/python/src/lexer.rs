//! Indentation-aware tokenizer for the Python subset.
//!
//! Follows the CPython tokenizer's structure: a stack of indentation
//! levels emits `Indent`/`Dedent` tokens at the start of logical lines,
//! `Newline` tokens terminate logical lines, and both are suppressed
//! inside brackets (implicit line joining).

use std::fmt;

/// The lexical category of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A numeric literal.
    Number,
    /// A string literal (text excludes the quotes).
    String,
    /// A punctuation or operator token.
    Punct,
    /// End of a logical line.
    Newline,
    /// Increase of indentation depth.
    Indent,
    /// Decrease of indentation depth.
    Dedent,
    /// End of input.
    Eof,
}

/// One lexical token with its text and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// The token's source text (empty for layout tokens).
    pub text: String,
    /// Byte offset of the first character in the source.
    pub offset: u32,
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Python keywords recognised by the parser.
pub const KEYWORDS: &[&str] = &[
    "def", "class", "return", "if", "elif", "else", "while", "for", "in", "break", "continue",
    "pass", "import", "from", "as", "try", "except", "finally", "raise", "with", "not", "and",
    "or", "is", "None", "True", "False", "lambda", "del", "global", "yield",
];

/// Whether `text` is a reserved word.
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "//", "**", "->",
];
const PUNCT1: &[char] = &[
    '(', ')', '[', ']', '{', '}', ':', ',', '.', ';', '=', '<', '>', '+', '-', '*', '/', '%', '@',
    '&', '|', '^', '~',
];

/// Tokenizes `source` with layout tokens.
///
/// # Errors
///
/// Returns [`LexError`] on inconsistent dedents, unterminated strings, or
/// characters outside the subset's alphabet.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut i = 0usize;
    let mut bracket_depth = 0usize;
    let mut at_line_start = true;

    while i < bytes.len() {
        if at_line_start && bracket_depth == 0 {
            // Measure indentation; skip blank and comment-only lines.
            let line_start = i;
            let mut col = 0usize;
            while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
                col += if bytes[i] == b'\t' { 8 - col % 8 } else { 1 };
                i += 1;
            }
            if i >= bytes.len() {
                break;
            }
            if bytes[i] == b'\n' {
                i += 1;
                continue;
            }
            if bytes[i] == b'#' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            let current = *indents.last().expect("indent stack never empty");
            if col > current {
                indents.push(col);
                tokens.push(Token {
                    kind: TokenKind::Indent,
                    text: String::new(),
                    offset: line_start as u32,
                });
            } else {
                while col < *indents.last().expect("indent stack never empty") {
                    indents.pop();
                    tokens.push(Token {
                        kind: TokenKind::Dedent,
                        text: String::new(),
                        offset: line_start as u32,
                    });
                }
                if col != *indents.last().expect("indent stack never empty") {
                    return Err(LexError {
                        message: "inconsistent dedent".into(),
                        offset: line_start as u32,
                    });
                }
            }
            at_line_start = false;
        }

        if i >= bytes.len() {
            break;
        }
        let c = bytes[i] as char;
        if c == '\n' {
            i += 1;
            if bracket_depth == 0 {
                // Suppress empty logical lines.
                if !matches!(
                    tokens.last().map(|t| t.kind),
                    None | Some(TokenKind::Newline)
                        | Some(TokenKind::Indent)
                        | Some(TokenKind::Dedent)
                ) {
                    tokens.push(Token {
                        kind: TokenKind::Newline,
                        text: String::new(),
                        offset: (i - 1) as u32,
                    });
                }
                at_line_start = true;
            }
            continue;
        }
        if c == ' ' || c == '\t' || c == '\r' {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '\\' && i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
            // Explicit line joining.
            i += 2;
            continue;
        }
        let offset = i as u32;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: source[start..i].to_owned(),
                offset,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                let decimal_point =
                    ch == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit();
                if ch.is_ascii_alphanumeric() || ch == '_' || decimal_point {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[start..i].to_owned(),
                offset,
            });
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = c;
            let start = i;
            i += 1;
            let mut text = String::new();
            loop {
                if i >= bytes.len() || bytes[i] == b'\n' {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset: start as u32,
                    });
                }
                let ch = bytes[i] as char;
                if ch == quote {
                    i += 1;
                    break;
                }
                if ch == '\\' && i + 1 < bytes.len() {
                    let esc = bytes[i + 1] as char;
                    text.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                text.push(ch);
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::String,
                text,
                offset,
            });
            continue;
        }
        let rest = &source[i..];
        if let Some(p) = PUNCT2.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: (*p).to_owned(),
                offset,
            });
            i += p.len();
            continue;
        }
        if PUNCT1.contains(&c) {
            match c {
                '(' | '[' | '{' => bracket_depth += 1,
                ')' | ']' | '}' => bracket_depth = bracket_depth.saturating_sub(1),
                _ => {}
            }
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                offset,
            });
            i += 1;
            continue;
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            offset,
        });
    }

    // Terminate the last logical line and close open blocks.
    if !matches!(
        tokens.last().map(|t| t.kind),
        None | Some(TokenKind::Newline) | Some(TokenKind::Dedent)
    ) {
        tokens.push(Token {
            kind: TokenKind::Newline,
            text: String::new(),
            offset: bytes.len() as u32,
        });
    }
    while indents.len() > 1 {
        indents.pop();
        tokens.push(Token {
            kind: TokenKind::Dedent,
            text: String::new(),
            offset: bytes.len() as u32,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        text: String::new(),
        offset: bytes.len() as u32,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_line() {
        use TokenKind::*;
        assert_eq!(kinds("x = 1"), [Ident, Punct, Number, Newline, Eof]);
    }

    #[test]
    fn indent_dedent_pairs() {
        use TokenKind::*;
        let src = "if x:\n    y = 1\nz = 2\n";
        assert_eq!(
            kinds(src),
            [
                Ident, Ident, Punct, Newline, // if x :
                Indent, Ident, Punct, Number, Newline, // y = 1
                Dedent, Ident, Punct, Number, Newline, // z = 2
                Eof
            ]
        );
    }

    #[test]
    fn nested_blocks_fully_dedent_at_eof() {
        let toks = tokenize("def f():\n    if x:\n        return 1\n").unwrap();
        let dedents = toks.iter().filter(|t| t.kind == TokenKind::Dedent).count();
        let indents = toks.iter().filter(|t| t.kind == TokenKind::Indent).count();
        assert_eq!(dedents, indents);
        assert_eq!(indents, 2);
    }

    #[test]
    fn blank_and_comment_lines_do_not_affect_layout() {
        let src = "if x:\n\n    # comment\n    y = 1\n";
        let toks = tokenize(src).unwrap();
        let indents = toks.iter().filter(|t| t.kind == TokenKind::Indent).count();
        assert_eq!(indents, 1);
    }

    #[test]
    fn brackets_suppress_newlines() {
        let src = "f(a,\n  b)\n";
        let toks = tokenize(src).unwrap();
        let newlines = toks.iter().filter(|t| t.kind == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
        assert!(toks.iter().all(|t| t.kind != TokenKind::Indent));
    }

    #[test]
    fn inconsistent_dedent_is_an_error() {
        let src = "if x:\n        y = 1\n    z = 2\n";
        let err = tokenize(src).unwrap_err();
        assert!(err.message.contains("inconsistent dedent"));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("s = 'a\\nb'").unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::String && t.text == "a\nb"));
    }

    #[test]
    fn unterminated_string_at_newline_errors() {
        assert!(tokenize("s = 'abc\n").is_err());
    }

    #[test]
    fn explicit_line_joining() {
        let toks = tokenize("x = 1 + \\\n    2\n").unwrap();
        let newlines = toks.iter().filter(|t| t.kind == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn keywords_recognised() {
        assert!(is_keyword("elif"));
        assert!(is_keyword("None"));
        assert!(!is_keyword("retcode"));
    }
}
