//! Recursive-descent parser for the Python subset.
//!
//! Node kinds mirror the CPython `ast` module, which the paper's PIGEON
//! tool used for Python: `Module`, `FunctionDef`, `Assign`, `Name`,
//! `Attribute`, `Call`, `Compare==`, `BinOp+`, and so on. Store contexts
//! get dedicated terminal kinds (`NameStore`, `NameParam`, `NameFunc`,
//! `NameClass`) so paths distinguish binding sites from uses.

use crate::lexer::{is_keyword, tokenize, LexError, Token, TokenKind};
use pigeon_ast::{Ast, TreeNode};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a Python module into a PIGEON AST rooted at `Module`.
///
/// # Errors
///
/// Returns [`ParseError`] on input outside the supported subset.
///
/// ```
/// # fn main() -> Result<(), pigeon_python::ParseError> {
/// let ast = pigeon_python::parse("retcode = process.returncode\n")?;
/// assert_eq!(
///     pigeon_ast::sexp(&ast),
///     "(Module (Assign (NameStore retcode) (Attribute (Name process) \
///      (AttrName returncode))))"
/// );
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Ast, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.statement()?);
    }
    Ok(TreeNode::inner("Module", stmts).into_ast())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult = Result<TreeNode, ParseError>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn at(&self, text: &str) -> bool {
        let t = self.peek();
        matches!(t.kind, TokenKind::Ident | TokenKind::Punct) && t.text == text
    }

    fn at_kind(&self, kind: TokenKind) -> bool {
        self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.at(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kind(&mut self, kind: TokenKind) -> bool {
        if self.at_kind(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseError> {
        if self.at(text) {
            Ok(self.bump())
        } else {
            Err(self.error(&format!("expected `{text}`, found `{}`", self.describe())))
        }
    }

    fn expect_kind(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at_kind(kind) {
            Ok(self.bump())
        } else {
            Err(self.error(&format!("expected {kind:?}, found `{}`", self.describe())))
        }
    }

    fn describe(&self) -> String {
        let t = self.peek();
        match t.kind {
            TokenKind::Newline => "<newline>".into(),
            TokenKind::Indent => "<indent>".into(),
            TokenKind::Dedent => "<dedent>".into(),
            TokenKind::Eof => "<eof>".into(),
            _ => t.text.clone(),
        }
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.peek().offset,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            Ok(self.bump().text)
        } else {
            Err(self.error(&format!("expected identifier, found `{}`", self.describe())))
        }
    }

    // ---- statements -----------------------------------------------------

    /// An indented block after `:`, or a simple statement on the same line.
    fn suite(&mut self) -> Result<Vec<TreeNode>, ParseError> {
        self.expect(":")?;
        if self.eat_kind(TokenKind::Newline) {
            self.expect_kind(TokenKind::Indent)?;
            let mut stmts = Vec::new();
            while !self.at_kind(TokenKind::Dedent) && !self.at_eof() {
                stmts.push(self.statement()?);
            }
            self.expect_kind(TokenKind::Dedent)?;
            Ok(stmts)
        } else {
            let s = self.simple_statement()?;
            self.eat_kind(TokenKind::Newline);
            Ok(vec![s])
        }
    }

    fn statement(&mut self) -> PResult {
        // Decorators are accepted and skipped.
        while self.at("@") {
            self.bump();
            let _ = self.expression()?;
            self.expect_kind(TokenKind::Newline)?;
        }
        if self.at("def") {
            return self.function_def();
        }
        if self.at("class") {
            return self.class_def();
        }
        if self.at("if") {
            return self.if_statement();
        }
        if self.at("while") {
            self.bump();
            let cond = self.expression()?;
            let mut children = vec![cond];
            children.extend(self.suite()?);
            return Ok(TreeNode::inner("While", children));
        }
        if self.at("for") {
            self.bump();
            let target = self.target()?;
            self.expect("in")?;
            let iter = self.expression()?;
            let mut children = vec![target, iter];
            children.extend(self.suite()?);
            return Ok(TreeNode::inner("For", children));
        }
        if self.at("with") {
            self.bump();
            let ctx = self.expression()?;
            let mut children = vec![ctx];
            if self.eat("as") {
                children.push(TreeNode::leaf("NameStore", self.ident()?.as_str()));
            }
            children.extend(self.suite()?);
            return Ok(TreeNode::inner("With", children));
        }
        if self.at("try") {
            return self.try_statement();
        }
        let s = self.simple_statement()?;
        self.eat_kind(TokenKind::Newline);
        Ok(s)
    }

    fn function_def(&mut self) -> PResult {
        self.expect("def")?;
        let name = self.ident()?;
        let mut children = vec![TreeNode::leaf("NameFunc", name.as_str())];
        self.expect("(")?;
        while !self.at(")") {
            let p = self.ident()?;
            let mut param = TreeNode::leaf("NameParam", p.as_str());
            if self.eat("=") {
                let default = self.expression()?;
                param = TreeNode::inner("DefaultParam", vec![param, default]);
            }
            children.push(param);
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        children.extend(self.suite()?);
        Ok(TreeNode::inner("FunctionDef", children))
    }

    fn class_def(&mut self) -> PResult {
        self.expect("class")?;
        let name = self.ident()?;
        let mut children = vec![TreeNode::leaf("NameClass", name.as_str())];
        if self.eat("(") {
            while !self.at(")") {
                children.push(TreeNode::inner("Base", vec![self.expression()?]));
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        }
        children.extend(self.suite()?);
        Ok(TreeNode::inner("ClassDef", children))
    }

    fn if_statement(&mut self) -> PResult {
        // `elif` chains nest as If inside the previous orelse, as in the
        // CPython ast.
        self.bump(); // if / elif
        let cond = self.expression()?;
        let mut children = vec![cond];
        children.extend(self.suite()?);
        if self.at("elif") {
            let nested = self.if_statement()?;
            children.push(TreeNode::inner("OrElse", vec![nested]));
        } else if self.eat("else") {
            let body = self.suite()?;
            children.push(TreeNode::inner("OrElse", body));
        }
        Ok(TreeNode::inner("If", children))
    }

    fn try_statement(&mut self) -> PResult {
        self.expect("try")?;
        let body = self.suite()?;
        let mut children = vec![TreeNode::inner("Body", body)];
        while self.at("except") {
            self.bump();
            let mut h = Vec::new();
            if !self.at(":") {
                h.push(TreeNode::inner("ExceptType", vec![self.expression()?]));
                if self.eat("as") {
                    h.push(TreeNode::leaf("NameStore", self.ident()?.as_str()));
                }
            }
            h.extend(self.suite()?);
            children.push(TreeNode::inner("ExceptHandler", h));
        }
        if self.eat("finally") {
            children.push(TreeNode::inner("Finally", self.suite()?));
        }
        if children.len() == 1 {
            return Err(self.error("try requires except or finally"));
        }
        Ok(TreeNode::inner("Try", children))
    }

    fn simple_statement(&mut self) -> PResult {
        if self.eat("return") {
            let mut children = Vec::new();
            if !self.at_kind(TokenKind::Newline) && !self.at_eof() {
                children.push(self.expr_or_tuple()?);
            }
            return Ok(TreeNode::inner("Return", children));
        }
        if self.eat("pass") {
            return Ok(TreeNode::nullary("Pass"));
        }
        if self.eat("break") {
            return Ok(TreeNode::nullary("Break"));
        }
        if self.eat("continue") {
            return Ok(TreeNode::nullary("Continue"));
        }
        if self.eat("raise") {
            let mut children = Vec::new();
            if !self.at_kind(TokenKind::Newline) && !self.at_eof() {
                children.push(self.expression()?);
            }
            return Ok(TreeNode::inner("Raise", children));
        }
        if self.at("import") || self.at("from") {
            return self.import_statement();
        }
        if self.eat("global") {
            let mut names = vec![TreeNode::leaf("Name", self.ident()?.as_str())];
            while self.eat(",") {
                names.push(TreeNode::leaf("Name", self.ident()?.as_str()));
            }
            return Ok(TreeNode::inner("Global", names));
        }
        if self.eat("del") {
            let e = self.expression()?;
            return Ok(TreeNode::inner("Delete", vec![e]));
        }
        // Assignment, augmented assignment, or bare expression.
        let first = self.expr_or_tuple()?;
        for op in ["+=", "-=", "*=", "/=", "%="] {
            if self.at(op) {
                self.bump();
                let value = self.expr_or_tuple()?;
                return Ok(TreeNode::inner(
                    format!("AugAssign{op}").as_str(),
                    vec![to_store(first), value],
                ));
            }
        }
        if self.at("=") {
            let mut targets = vec![first];
            while self.eat("=") {
                targets.push(self.expr_or_tuple()?);
            }
            let value = targets.pop().expect("at least the RHS");
            let mut children: Vec<TreeNode> = targets.into_iter().map(to_store).collect();
            children.push(value);
            return Ok(TreeNode::inner("Assign", children));
        }
        Ok(TreeNode::inner("Expr", vec![first]))
    }

    fn import_statement(&mut self) -> PResult {
        if self.eat("from") {
            let module = self.dotted_name()?;
            self.expect("import")?;
            let mut children = vec![TreeNode::leaf("ModuleName", module.as_str())];
            loop {
                let n = self.ident()?;
                children.push(TreeNode::leaf("Name", n.as_str()));
                if !self.eat(",") {
                    break;
                }
            }
            return Ok(TreeNode::inner("ImportFrom", children));
        }
        self.expect("import")?;
        let mut children = Vec::new();
        loop {
            let n = self.dotted_name()?;
            children.push(TreeNode::leaf("ModuleName", n.as_str()));
            if self.eat("as") {
                children.push(TreeNode::leaf("NameStore", self.ident()?.as_str()));
            }
            if !self.eat(",") {
                break;
            }
        }
        Ok(TreeNode::inner("Import", children))
    }

    fn dotted_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.ident()?;
        while self.at(".") {
            self.bump();
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    /// A `for` target: a name or a tuple of names.
    fn target(&mut self) -> PResult {
        let first = TreeNode::leaf("NameStore", self.ident()?.as_str());
        if !self.at(",") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(",") {
            parts.push(TreeNode::leaf("NameStore", self.ident()?.as_str()));
        }
        Ok(TreeNode::inner("TupleStore", parts))
    }

    // ---- expressions ----------------------------------------------------

    /// An expression, or a tuple when followed by commas:
    /// `o, e = p.communicate()`.
    fn expr_or_tuple(&mut self) -> PResult {
        let first = self.expression()?;
        if !self.at(",") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(",") {
            if self.at_kind(TokenKind::Newline) || self.at("=") || self.at(")") {
                break;
            }
            parts.push(self.expression()?);
        }
        Ok(TreeNode::inner("Tuple", parts))
    }

    fn expression(&mut self) -> PResult {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult {
        let body = self.or_expr()?;
        if self.at("if") {
            self.bump();
            let cond = self.or_expr()?;
            self.expect("else")?;
            let orelse = self.expression()?;
            return Ok(TreeNode::inner("IfExp", vec![cond, body, orelse]));
        }
        Ok(body)
    }

    fn or_expr(&mut self) -> PResult {
        let mut lhs = self.and_expr()?;
        while self.at("or") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = TreeNode::inner("BoolOpOr", vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult {
        let mut lhs = self.not_expr()?;
        while self.at("and") {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = TreeNode::inner("BoolOpAnd", vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> PResult {
        if self.at("not") {
            self.bump();
            let operand = self.not_expr()?;
            return Ok(TreeNode::inner("UnaryOpNot", vec![operand]));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> PResult {
        let mut lhs = self.arith(0)?;
        loop {
            let op = ["==", "!=", "<", ">", "<=", ">="]
                .iter()
                .find(|op| self.at(op))
                .copied();
            if let Some(op) = op {
                self.bump();
                let rhs = self.arith(0)?;
                lhs = TreeNode::inner(format!("Compare{op}").as_str(), vec![lhs, rhs]);
                continue;
            }
            if self.at("in") {
                self.bump();
                let rhs = self.arith(0)?;
                lhs = TreeNode::inner("CompareIn", vec![lhs, rhs]);
                continue;
            }
            if self.at("not") {
                self.bump();
                self.expect("in")?;
                let rhs = self.arith(0)?;
                lhs = TreeNode::inner("CompareNotIn", vec![lhs, rhs]);
                continue;
            }
            if self.at("is") {
                self.bump();
                let negated = self.eat("not");
                let rhs = self.arith(0)?;
                let kind = if negated { "CompareIsNot" } else { "CompareIs" };
                lhs = TreeNode::inner(kind, vec![lhs, rhs]);
                continue;
            }
            return Ok(lhs);
        }
    }

    const ARITH_TIERS: [&'static [&'static str]; 2] = [&["+", "-"], &["*", "/", "//", "%"]];

    fn arith(&mut self, tier: usize) -> PResult {
        if tier >= Self::ARITH_TIERS.len() {
            return self.unary();
        }
        let mut lhs = self.arith(tier + 1)?;
        loop {
            let op = Self::ARITH_TIERS[tier]
                .iter()
                .find(|op| self.at(op))
                .copied();
            match op {
                Some(op) => {
                    self.bump();
                    let rhs = self.arith(tier + 1)?;
                    lhs = TreeNode::inner(format!("BinOp{op}").as_str(), vec![lhs, rhs]);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> PResult {
        if self.at("-") || self.at("+") || self.at("~") {
            let op = self.bump().text;
            let operand = self.unary()?;
            return Ok(TreeNode::inner(
                format!("UnaryOp{op}").as_str(),
                vec![operand],
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult {
        let mut e = self.primary()?;
        loop {
            if self.at(".") {
                self.bump();
                // Attribute names admit keywords rarely; identifiers only.
                let name = self.ident()?;
                e = TreeNode::inner(
                    "Attribute",
                    vec![e, TreeNode::leaf("AttrName", name.as_str())],
                );
            } else if self.at("(") {
                self.bump();
                let mut children = vec![e];
                while !self.at(")") {
                    if self.peek().kind == TokenKind::Ident
                        && !is_keyword(&self.peek().text)
                        && self.tokens[self.pos + 1].text == "="
                        && self.tokens[self.pos + 1].kind == TokenKind::Punct
                        && self.tokens[self.pos + 2].text != "="
                    {
                        // Keyword argument: `shell=True`.
                        let kw = self.ident()?;
                        self.expect("=")?;
                        let value = self.expression()?;
                        children.push(TreeNode::inner(
                            "Keyword",
                            vec![TreeNode::leaf("KeywordName", kw.as_str()), value],
                        ));
                    } else {
                        children.push(self.expression()?);
                    }
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(")")?;
                e = TreeNode::inner("Call", children);
            } else if self.at("[") {
                self.bump();
                let index = self.subscript_index()?;
                self.expect("]")?;
                e = TreeNode::inner("Subscript", vec![e, index]);
            } else {
                return Ok(e);
            }
        }
    }

    fn subscript_index(&mut self) -> PResult {
        // Slices: `a[1:2]`, `a[:n]`, `a[i:]`.
        let lower = if self.at(":") {
            None
        } else {
            Some(self.expression()?)
        };
        if self.eat(":") {
            let upper = if self.at("]") {
                None
            } else {
                Some(self.expression()?)
            };
            let mut children = Vec::new();
            if let Some(l) = lower {
                children.push(TreeNode::inner("Lower", vec![l]));
            }
            if let Some(u) = upper {
                children.push(TreeNode::inner("Upper", vec![u]));
            }
            return Ok(TreeNode::inner("Slice", children));
        }
        lower.ok_or_else(|| self.error("empty subscript"))
    }

    fn primary(&mut self) -> PResult {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Number => {
                self.bump();
                Ok(TreeNode::leaf("Num", t.text.as_str()))
            }
            TokenKind::String => {
                self.bump();
                Ok(TreeNode::leaf("Str", t.text.as_str()))
            }
            TokenKind::Ident => match t.text.as_str() {
                "True" | "False" | "None" => {
                    self.bump();
                    Ok(TreeNode::leaf("NameConstant", t.text.as_str()))
                }
                "lambda" => {
                    self.bump();
                    let mut children = Vec::new();
                    while !self.at(":") {
                        children.push(TreeNode::leaf("NameParam", self.ident()?.as_str()));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect(":")?;
                    children.push(self.expression()?);
                    Ok(TreeNode::inner("Lambda", children))
                }
                _ if is_keyword(&t.text) => {
                    Err(self.error(&format!("unexpected keyword `{}`", t.text)))
                }
                _ => {
                    self.bump();
                    Ok(TreeNode::leaf("Name", t.text.as_str()))
                }
            },
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    self.bump();
                    if self.eat(")") {
                        return Ok(TreeNode::nullary("Tuple"));
                    }
                    let e = self.expr_or_tuple()?;
                    self.expect(")")?;
                    Ok(e)
                }
                "[" => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.at("]") {
                        items.push(self.expression()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect("]")?;
                    Ok(TreeNode::inner("List", items))
                }
                "{" => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.at("}") {
                        let key = self.expression()?;
                        self.expect(":")?;
                        let value = self.expression()?;
                        items.push(TreeNode::inner("DictItem", vec![key, value]));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect("}")?;
                    Ok(TreeNode::inner("Dict", items))
                }
                _ => Err(self.error(&format!("unexpected token `{}`", self.describe()))),
            },
            _ => Err(self.error(&format!("unexpected token `{}`", self.describe()))),
        }
    }
}

/// Rewrites load-context names to store context in assignment targets,
/// mirroring the CPython ast's `ctx` field.
fn to_store(node: TreeNode) -> TreeNode {
    let name_kind = pigeon_ast::Kind::new("Name");
    let tuple_kind = pigeon_ast::Kind::new("Tuple");
    if node.kind == name_kind {
        if let Some(v) = node.value {
            return TreeNode::leaf("NameStore", v.as_str());
        }
    }
    if node.kind == tuple_kind {
        let children = node.children.into_iter().map(to_store).collect();
        return TreeNode::inner("TupleStore", children);
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::sexp;

    fn s(src: &str) -> String {
        sexp(&parse(src).unwrap())
    }

    #[test]
    fn assignment_and_attribute() {
        assert_eq!(
            s("r = p.returncode\n"),
            "(Module (Assign (NameStore r) (Attribute (Name p) (AttrName returncode))))"
        );
    }

    #[test]
    fn tuple_unpacking_fig7() {
        // `o, e = p.communicate()` from the paper's Fig. 7.
        assert_eq!(
            s("o, e = p.communicate()\n"),
            "(Module (Assign (TupleStore (NameStore o) (NameStore e)) (Call (Attribute \
             (Name p) (AttrName communicate)))))"
        );
    }

    #[test]
    fn fig7_function_shape() {
        let src = "def sh3(c):\n    p = Popen(c, stdout=PIPE, shell=True)\n    r = \
                   p.returncode\n    if r:\n        raise CalledProcessError(r, c)\n    \
                   else:\n        return c\n";
        let text = s(src);
        assert!(text.starts_with("(Module (FunctionDef (NameFunc sh3) (NameParam c)"));
        assert!(text.contains("(Keyword (KeywordName stdout) (Name PIPE))"));
        assert!(text.contains("(Keyword (KeywordName shell) (NameConstant True))"));
        assert!(text.contains("(Raise (Call (Name CalledProcessError) (Name r) (Name c)))"));
        assert!(text.contains("(OrElse (Return (Name c)))"));
    }

    #[test]
    fn elif_nests_in_orelse() {
        let src = "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n";
        let text = s(src);
        assert!(text.contains("(OrElse (If (Name b)"));
        assert!(text.contains("(OrElse (Assign (NameStore x) (Num 3)))"));
    }

    #[test]
    fn for_loop_with_tuple_target() {
        assert_eq!(
            s("for k, v in items:\n    f(k, v)\n"),
            "(Module (For (TupleStore (NameStore k) (NameStore v)) (Name items) (Expr \
             (Call (Name f) (Name k) (Name v)))))"
        );
    }

    #[test]
    fn while_and_augassign() {
        assert_eq!(
            s("while n > 0:\n    total += n\n    n -= 1\n"),
            "(Module (While (Compare> (Name n) (Num 0)) (AugAssign+= (NameStore total) \
             (Name n)) (AugAssign-= (NameStore n) (Num 1))))"
        );
    }

    #[test]
    fn boolean_operators_and_not() {
        assert_eq!(
            s("ok = a and not b or c\n"),
            "(Module (Assign (NameStore ok) (BoolOpOr (BoolOpAnd (Name a) (UnaryOpNot \
             (Name b))) (Name c))))"
        );
    }

    #[test]
    fn comparisons_in_is() {
        let text = s("x = a in xs\ny = b is None\nz = c is not None\nw = d not in xs\n");
        assert!(text.contains("(CompareIn (Name a) (Name xs))"));
        assert!(text.contains("(CompareIs (Name b) (NameConstant None))"));
        assert!(text.contains("(CompareIsNot (Name c) (NameConstant None))"));
        assert!(text.contains("(CompareNotIn (Name d) (Name xs))"));
    }

    #[test]
    fn class_def_with_base_and_methods() {
        let src = "class Handler(Base):\n    def handle(self, request):\n        \
                   return request\n";
        assert_eq!(
            s(src),
            "(Module (ClassDef (NameClass Handler) (Base (Name Base)) (FunctionDef \
             (NameFunc handle) (NameParam self) (NameParam request) (Return (Name \
             request)))))"
        );
    }

    #[test]
    fn try_except_finally() {
        let src = "try:\n    f()\nexcept IOError as e:\n    g(e)\nfinally:\n    h()\n";
        assert_eq!(
            s(src),
            "(Module (Try (Body (Expr (Call (Name f)))) (ExceptHandler (ExceptType (Name \
             IOError)) (NameStore e) (Expr (Call (Name g) (Name e)))) (Finally (Expr \
             (Call (Name h))))))"
        );
    }

    #[test]
    fn with_statement() {
        assert_eq!(
            s("with open(path) as f:\n    data = f.read()\n"),
            "(Module (With (Call (Name open) (Name path)) (NameStore f) (Assign \
             (NameStore data) (Call (Attribute (Name f) (AttrName read))))))"
        );
    }

    #[test]
    fn subscripts_and_slices() {
        let text = s("x = a[0]\ny = a[1:n]\nz = a[:n]\n");
        assert!(text.contains("(Subscript (Name a) (Num 0))"));
        assert!(text.contains("(Subscript (Name a) (Slice (Lower (Num 1)) (Upper (Name n))))"));
        assert!(text.contains("(Subscript (Name a) (Slice (Upper (Name n))))"));
    }

    #[test]
    fn list_dict_literals_and_ifexp() {
        let text = s("xs = [1, 2]\nd = {'a': 1}\nm = x if ok else y\n");
        assert!(text.contains("(List (Num 1) (Num 2))"));
        assert!(text.contains("(DictItem (Str a) (Num 1))"));
        assert!(text.contains("(IfExp (Name ok) (Name x) (Name y))"));
    }

    #[test]
    fn imports() {
        let text = s("import os, sys\nfrom subprocess import Popen, PIPE\n");
        assert!(text.contains("(Import (ModuleName os) (ModuleName sys))"));
        assert!(text.contains("(ImportFrom (ModuleName subprocess) (Name Popen) (Name PIPE))"));
    }

    #[test]
    fn lambda_and_return_tuple() {
        let text = s("f = lambda x: x + 1\ndef g():\n    return a, b\n");
        assert!(text.contains("(Lambda (NameParam x) (BinOp+ (Name x) (Num 1)))"));
        assert!(text.contains("(Return (Tuple (Name a) (Name b)))"));
    }

    #[test]
    fn decorators_are_skipped() {
        let text = s("@staticmethod\ndef f():\n    pass\n");
        assert!(text.contains("(FunctionDef (NameFunc f) (Pass))"));
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("def f(:\n").is_err());
        assert!(parse("x = \n").is_err());
        assert!(parse("if x\n    y = 1\n").is_err());
    }

    #[test]
    fn invariants_hold() {
        let ast = parse(
            "def count(values, target):\n    c = 0\n    for v in values:\n        if v == \
             target:\n            c += 1\n    return c\n",
        )
        .unwrap();
        ast.check_invariants().unwrap();
    }
}
