//! Python-subset frontend producing PIGEON ASTs.
//!
//! The tokenizer is indentation-aware (INDENT/DEDENT layout tokens with
//! implicit line joining inside brackets, as in CPython's tokenizer) and
//! the node kinds mirror the CPython `ast` module — the parser the
//! paper's PIGEON tool used for Python.
//!
//! # Supported subset
//!
//! `def` / `class` definitions with decorators (skipped) and default
//! parameters; `if`/`elif`/`else`, `while`, `for` (with tuple targets),
//! `with ... as`, `try`/`except`/`finally`, `return`, `raise`, `pass`,
//! `break`, `continue`, `global`, `del`, imports; assignment (chained,
//! tuple-unpacking and augmented) and an expression grammar with boolean
//! operators, comparisons (`in`, `is`, chains), arithmetic tiers, unary
//! operators, calls with keyword arguments, attributes, subscripts and
//! slices, list/dict/tuple literals, lambdas and conditional expressions.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), pigeon_python::ParseError> {
//! let ast = pigeon_python::parse("o, e = p.communicate()\n")?;
//! assert!(pigeon_ast::sexp(&ast).contains("TupleStore"));
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;

pub use lexer::{is_keyword, tokenize, LexError, Token, TokenKind, KEYWORDS};
pub use parser::{parse, ParseError};
