//! CRF factor-graph construction from parsed documents.
//!
//! The builder is shared across every representation and every task: it
//! takes the `(leaf, leaf, feature)` triples produced by
//! [`extract_edge_features`](crate::extract_edge_features), groups leaves
//! into elements, and emits a [`pigeon_crf::Instance`] whose pairwise
//! factors relate distinct elements and whose unary factors come from
//! relations between occurrences of one element (§5.1).
//!
//! Vocabularies only grow during training; at test time unseen features
//! are dropped and unseen evidence labels disable their factors — the
//! fate of out-of-vocabulary items in the real pipeline.

use crate::elements::{classify_elements, find_initializer, Element, ElementClass};
use crate::features::EdgeFeature;
use pigeon_ast::{Ast, NodeId};
use pigeon_core::{contexts_to_node, Abstraction, ExtractionConfig, Interner};
use pigeon_corpus::{Language, TypeTruth};
use pigeon_crf::{Instance, Node};
use std::collections::HashMap;

/// Shared label and feature vocabularies for one experiment.
#[derive(Debug, Clone, Default)]
pub struct Vocabs {
    /// Names/types, shared by evidence and predictions.
    pub labels: Interner<String>,
    /// Rendered relation features.
    pub features: Interner<String>,
}

impl Vocabs {
    /// An empty vocabulary set.
    pub fn new() -> Self {
        Vocabs::default()
    }

    /// Resolves a label id back to its string.
    pub fn label_name(&self, id: u32) -> &str {
        self.labels.resolve(id)
    }
}

/// How a graph build resolves vocabulary entries.
///
/// Training interns new items and therefore needs `&mut Vocabs`; lookup
/// never inserts, needs only shared access, and resolves strings without
/// allocating — the serving hot path builds graphs straight against a
/// trained model's `&Vocabs`, with no per-call clone.
enum VocabMode<'a> {
    Train(&'a mut Vocabs),
    Lookup(&'a Vocabs),
}

impl VocabMode<'_> {
    fn label_id(&mut self, s: &str) -> Option<u32> {
        match self {
            VocabMode::Train(v) => Some(v.labels.intern(s.to_owned())),
            VocabMode::Lookup(v) => v.labels.get_by(s),
        }
    }

    fn feature_id(&mut self, s: &str) -> Option<u32> {
        match self {
            VocabMode::Train(v) => Some(v.features.intern(s.to_owned())),
            VocabMode::Lookup(v) => v.features.get_by(s),
        }
    }
}

/// A built factor graph plus the bookkeeping needed to score it.
#[derive(Debug)]
pub struct DocGraph {
    /// The CRF instance.
    pub instance: Instance,
    /// Element name (or gold type) per node.
    pub node_names: Vec<String>,
    /// Indices of the nodes to predict.
    pub unknown_nodes: Vec<usize>,
}

/// Builds the name-prediction graph: elements of class `target` are
/// unknown, everything else is evidence.
///
/// Semi-path features, when the experiment enables them, become
/// additional unary factors via [`add_semi_paths`].
pub fn build_name_graph(
    language: Language,
    ast: &Ast,
    target: ElementClass,
    features: &[EdgeFeature],
    vocabs: &mut Vocabs,
    train: bool,
) -> DocGraph {
    let mode = if train {
        VocabMode::Train(vocabs)
    } else {
        VocabMode::Lookup(vocabs)
    };
    build_name_graph_with(language, ast, target, features, mode)
}

/// Lookup-only [`build_name_graph`]: builds the prediction graph against
/// a trained model's vocabularies without mutating (or cloning) them.
/// Unseen features are dropped and unseen labels disable their factors,
/// exactly as `build_name_graph` with `train = false`.
pub fn build_name_graph_lookup(
    language: Language,
    ast: &Ast,
    target: ElementClass,
    features: &[EdgeFeature],
    vocabs: &Vocabs,
) -> DocGraph {
    build_name_graph_with(language, ast, target, features, VocabMode::Lookup(vocabs))
}

fn build_name_graph_with(
    language: Language,
    ast: &Ast,
    target: ElementClass,
    features: &[EdgeFeature],
    mut vocabs: VocabMode<'_>,
) -> DocGraph {
    let elements = classify_elements(language, ast);
    let leaf_to_element = leaf_index(&elements);

    let mut nodes = Vec::with_capacity(elements.len());
    let mut node_names = Vec::with_capacity(elements.len());
    // Known elements whose label is out of vocabulary carry no usable
    // evidence; factors touching them are dropped below.
    let mut usable = vec![true; elements.len()];
    let mut unknown_nodes = Vec::new();

    for (i, e) in elements.iter().enumerate() {
        let unknown = e.class == target;
        let label = vocabs.label_id(&e.name);
        match (unknown, label) {
            (true, Some(id)) => {
                unknown_nodes.push(i);
                nodes.push(Node::unknown(id));
            }
            (true, None) => {
                // OOV gold: still predicted, scored as wrong unless the
                // prediction happens to normalise-match.
                unknown_nodes.push(i);
                nodes.push(Node::unknown(0));
            }
            (false, Some(id)) => nodes.push(Node::known(id)),
            (false, None) => {
                usable[i] = false;
                nodes.push(Node::known(0));
            }
        }
        node_names.push(e.name.clone());
    }

    let mut instance = Instance::new(nodes);
    for ef in features {
        let (Some(&a), Some(&b)) = (leaf_to_element.get(&ef.a), leaf_to_element.get(&ef.b)) else {
            continue;
        };
        let Some(feature) = vocabs.feature_id(&ef.feature) else {
            continue;
        };
        let a_unknown = elements[a].class == target;
        let b_unknown = elements[b].class == target;
        if a == b {
            if a_unknown {
                instance.add_unary(a, feature);
            }
            continue;
        }
        if !a_unknown && !b_unknown {
            continue; // evidence-evidence factors are constants
        }
        if (!a_unknown && !usable[a]) || (!b_unknown && !usable[b]) {
            continue; // OOV evidence
        }
        instance.add_pair(a, b, feature);
    }

    DocGraph {
        instance,
        node_names,
        unknown_nodes,
    }
}

/// Adds semi-path features to an already-built name graph as unary
/// factors on the unknown elements they touch (§5: semi-paths
/// "provide more generalization" on top of leafwise paths).
pub fn add_semi_paths(
    language: Language,
    ast: &Ast,
    target: ElementClass,
    graph: &mut DocGraph,
    semis: &[crate::features::NodeFeature],
    vocabs: &mut Vocabs,
    train: bool,
) {
    let mode = if train {
        VocabMode::Train(vocabs)
    } else {
        VocabMode::Lookup(vocabs)
    };
    add_semi_paths_with(language, ast, target, graph, semis, mode);
}

/// Lookup-only [`add_semi_paths`]: shared vocabulary access, so parallel
/// evaluation workers can decorate graphs against one trained model.
pub fn add_semi_paths_lookup(
    language: Language,
    ast: &Ast,
    target: ElementClass,
    graph: &mut DocGraph,
    semis: &[crate::features::NodeFeature],
    vocabs: &Vocabs,
) {
    add_semi_paths_with(
        language,
        ast,
        target,
        graph,
        semis,
        VocabMode::Lookup(vocabs),
    );
}

fn add_semi_paths_with(
    language: Language,
    ast: &Ast,
    target: ElementClass,
    graph: &mut DocGraph,
    semis: &[crate::features::NodeFeature],
    mut mode: VocabMode<'_>,
) {
    let elements = classify_elements(language, ast);
    let leaf_to_element = leaf_index(&elements);
    for nf in semis {
        let Some(&e) = leaf_to_element.get(&nf.leaf) else {
            continue;
        };
        if elements[e].class != target {
            continue;
        }
        let Some(feature) = mode.feature_id(&nf.feature) else {
            continue;
        };
        graph.instance.add_unary(e, feature);
    }
}

/// Builds the full-type graph for one typed-Java document: one unknown
/// node per ground-truth declaration, linked to the leaf elements around
/// its initializer expression by leaf→nonterminal paths (§5.3.3).
pub fn build_type_graph(
    ast: &Ast,
    truths: &[TypeTruth],
    extraction: &ExtractionConfig,
    abstraction: Abstraction,
    vocabs: &mut Vocabs,
    train: bool,
) -> DocGraph {
    let mode = if train {
        VocabMode::Train(vocabs)
    } else {
        VocabMode::Lookup(vocabs)
    };
    build_type_graph_with(ast, truths, extraction, abstraction, mode)
}

/// Lookup-only [`build_type_graph`], for parallel held-out evaluation
/// against a trained model's vocabularies.
pub fn build_type_graph_lookup(
    ast: &Ast,
    truths: &[TypeTruth],
    extraction: &ExtractionConfig,
    abstraction: Abstraction,
    vocabs: &Vocabs,
) -> DocGraph {
    build_type_graph_with(
        ast,
        truths,
        extraction,
        abstraction,
        VocabMode::Lookup(vocabs),
    )
}

fn build_type_graph_with(
    ast: &Ast,
    truths: &[TypeTruth],
    extraction: &ExtractionConfig,
    abstraction: Abstraction,
    mut mode: VocabMode<'_>,
) -> DocGraph {
    let elements = classify_elements(Language::Java, ast);
    let leaf_to_element = leaf_index(&elements);

    let mut nodes = Vec::with_capacity(elements.len() + truths.len());
    let mut node_names = Vec::with_capacity(elements.len() + truths.len());
    let mut usable = vec![true; elements.len()];
    for (i, e) in elements.iter().enumerate() {
        match mode.label_id(&e.name) {
            Some(id) => nodes.push(Node::known(id)),
            None => {
                usable[i] = false;
                nodes.push(Node::known(0));
            }
        }
        node_names.push(e.name.clone());
    }

    let mut unknown_nodes = Vec::new();
    let mut type_targets: Vec<(usize, NodeId)> = Vec::new();
    for truth in truths {
        let Some(init) = find_initializer(ast, &truth.var) else {
            continue;
        };
        let idx = nodes.len();
        let label = mode.label_id(&truth.fqn).unwrap_or(0);
        nodes.push(Node::unknown(label));
        node_names.push(truth.fqn.clone());
        unknown_nodes.push(idx);
        type_targets.push((idx, init));
    }

    let mut instance = Instance::new(nodes);
    for (idx, init) in type_targets {
        for ctx in contexts_to_node(ast, init, extraction) {
            let Some(&leaf_elem) = leaf_to_element.get(&ctx.start_node) else {
                continue;
            };
            if !usable[leaf_elem] {
                continue;
            }
            let rendered = abstraction.apply(&ctx.path).to_string();
            let Some(feature) = mode.feature_id(&rendered) else {
                continue;
            };
            instance.add_pair(leaf_elem, idx, feature);
        }
    }

    DocGraph {
        instance,
        node_names,
        unknown_nodes,
    }
}

fn leaf_index(elements: &[Element]) -> HashMap<NodeId, usize> {
    let mut map = HashMap::new();
    for (i, e) in elements.iter().enumerate() {
        for &leaf in &e.occurrences {
            map.insert(leaf, i);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{extract_edge_features, Representation};

    fn build_js(src: &str, train: bool, vocabs: &mut Vocabs) -> DocGraph {
        let ast = Language::JavaScript.parse(src).unwrap();
        let feats = extract_edge_features(
            Language::JavaScript,
            &ast,
            Representation::AstPaths(Abstraction::Full),
            &ExtractionConfig::with_limits(8, 3),
        );
        build_name_graph(
            Language::JavaScript,
            &ast,
            ElementClass::Variable,
            &feats,
            vocabs,
            train,
        )
    }

    #[test]
    fn unary_factors_come_from_self_paths() {
        let mut vocabs = Vocabs::new();
        let g = build_js(
            "function f() { var done = false; while (!done) { done = true; } }",
            true,
            &mut vocabs,
        );
        assert!(
            !g.instance.unary.is_empty(),
            "repeated occurrences of `done` must yield unary factors"
        );
        assert!(!g.instance.pairwise.is_empty());
        assert_eq!(g.unknown_nodes.len(), 1, "only `done` is a variable");
    }

    #[test]
    fn known_known_factors_are_dropped() {
        let mut vocabs = Vocabs::new();
        let g = build_js("log('a', 'b');", true, &mut vocabs);
        assert!(g.unknown_nodes.is_empty());
        assert!(g.instance.pairwise.is_empty());
        assert!(g.instance.unary.is_empty());
    }

    #[test]
    fn test_time_vocabularies_do_not_grow() {
        let mut vocabs = Vocabs::new();
        let _ = build_js("var total = 0; total += price;", true, &mut vocabs);
        let labels_before = vocabs.labels.len();
        let features_before = vocabs.features.len();
        let _ = build_js(
            "var unseenName = 0; unseenName += anotherUnseen;",
            false,
            &mut vocabs,
        );
        assert_eq!(vocabs.labels.len(), labels_before);
        assert_eq!(vocabs.features.len(), features_before);
    }

    #[test]
    fn oov_unknowns_are_still_predicted() {
        let mut vocabs = Vocabs::new();
        let _ = build_js("var total = 0;", true, &mut vocabs);
        let g = build_js("var exotic = 0;", false, &mut vocabs);
        assert_eq!(g.unknown_nodes.len(), 1);
        assert_eq!(g.node_names[g.unknown_nodes[0]], "exotic");
    }

    #[test]
    fn type_graph_links_initializer_to_surroundings() {
        let mut vocabs = Vocabs::new();
        let ast = Language::Java
            .parse(
                "class A { void f(String raw) { String message = raw.trim(); \
                 int n = message.length(); } }",
            )
            .unwrap();
        let truths = vec![TypeTruth {
            var: "message".into(),
            fqn: "java.lang.String".into(),
        }];
        let g = build_type_graph(
            &ast,
            &truths,
            &ExtractionConfig::with_limits(6, 2),
            Abstraction::Full,
            &mut vocabs,
            true,
        );
        assert_eq!(g.unknown_nodes.len(), 1);
        let type_node = g.unknown_nodes[0];
        assert_eq!(g.node_names[type_node], "java.lang.String");
        assert!(
            g.instance.pairwise.iter().any(|p| p.b == type_node),
            "type node must receive factors"
        );
    }

    #[test]
    fn type_graph_skips_missing_declarations() {
        let mut vocabs = Vocabs::new();
        let ast = Language::Java.parse("class A { }").unwrap();
        let truths = vec![TypeTruth {
            var: "ghost".into(),
            fqn: "java.lang.String".into(),
        }];
        let g = build_type_graph(
            &ast,
            &truths,
            &ExtractionConfig::with_limits(6, 2),
            Abstraction::Full,
            &mut vocabs,
            true,
        );
        assert!(g.unknown_nodes.is_empty());
    }
}
