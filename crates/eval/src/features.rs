//! Input representations under comparison (§5.3).
//!
//! The paper's central experiment holds the learning algorithm fixed and
//! swaps only the representation of the relation between two program
//! elements. Every representation here reduces to the same shape — a set
//! of `(leaf, leaf, feature)` triples — so the CRF builder downstream is
//! shared verbatim across AST paths and all baselines:
//!
//! * [`Representation::AstPaths`] — the paper's contribution, at any
//!   abstraction level of §5.6;
//! * [`Representation::NoPaths`] — the "bag of near identifiers"
//!   baseline: relations exist but are indistinguishable;
//! * [`Representation::NGram`] — token-proximity factors (the paper's
//!   CRFs + n-grams baseline for Java);
//! * [`Representation::Relations`] — hand-crafted-style relations that
//!   never cross a statement boundary, approximating UnuglifyJS, whose
//!   relations "span only a single statement" (§6). This is what makes
//!   the paper's Fig. 3 pair indistinguishable.

use pigeon_ast::{Ast, Kind, NodeId};
use pigeon_core::{leaf_pair_contexts, Abstraction, ExtractionConfig};
use pigeon_corpus::Language;

/// A relation between two leaves, rendered as an opaque feature string.
/// Rendered strings keep every representation in one vocabulary type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeFeature {
    /// The left (source-order first) leaf.
    pub a: NodeId,
    /// The right leaf.
    pub b: NodeId,
    /// The rendered relation feature.
    pub feature: String,
}

/// A single-leaf feature: a semi-path from the leaf to one of its
/// ancestors (§5 of the paper, "semi-paths provide more generalization").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFeature {
    /// The leaf the semi-path starts at.
    pub leaf: NodeId,
    /// The rendered semi-path feature.
    pub feature: String,
}

/// Extracts semi-path features for every leaf, under `rep`'s abstraction
/// when `rep` is path-based (baselines have no notion of a semi-path and
/// yield nothing).
pub fn extract_node_features(
    ast: &Ast,
    rep: Representation,
    cfg: &ExtractionConfig,
) -> Vec<NodeFeature> {
    let abstraction = match rep {
        Representation::AstPaths(a) => a,
        _ => return Vec::new(),
    };
    pigeon_core::semi_path_contexts(ast, cfg)
        .into_iter()
        .map(|c| NodeFeature {
            leaf: c.start_node,
            feature: format!("semi:{}", abstraction.apply(&c.path)),
        })
        .collect()
}

/// The program-element representation fed to the CRF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// AST paths under the given abstraction (α_id for the headline rows).
    AstPaths(Abstraction),
    /// All relations collapse to one feature ("bag of near identifiers").
    NoPaths,
    /// Token-window factors: leaves within `window` positions relate by
    /// their distance alone. `window = 3` matches the paper's 4-grams.
    NGram {
        /// Maximal token distance considered.
        window: usize,
    },
    /// Full paths, but only within a single statement (UnuglifyJS-style).
    Relations,
}

impl Representation {
    /// Display name used in experiment reports.
    pub fn name(self) -> String {
        match self {
            Representation::AstPaths(a) => format!("AST paths ({a})"),
            Representation::NoPaths => "no-paths".to_owned(),
            Representation::NGram { window } => format!("{}-grams", window + 1),
            Representation::Relations => "relations (UnuglifyJS-style)".to_owned(),
        }
    }
}

/// Statement-level node kinds per language, used by
/// [`Representation::Relations`] to reject cross-statement paths.
fn statement_kinds(language: Language) -> Vec<Kind> {
    let names: &[&str] = match language {
        Language::JavaScript => &[
            "Toplevel", "Block", "If", "While", "Do", "For", "ForIn", "ForOf", "Switch", "Case",
            "Default", "Try", "Catch", "Finally", "Defun", "Function", "Arrow",
        ],
        Language::Java => &[
            "CompilationUnit",
            "ClassDecl",
            "InterfaceDecl",
            "Block",
            "If",
            "While",
            "Do",
            "For",
            "ForEach",
            "Switch",
            "Case",
            "Default",
            "Try",
            "Catch",
            "Finally",
            "MethodDecl",
            "ConstructorDecl",
        ],
        Language::Python => &[
            "Module",
            "FunctionDef",
            "ClassDef",
            "If",
            "While",
            "For",
            "With",
            "Try",
            "ExceptHandler",
            "Finally",
            "Body",
            "OrElse",
        ],
        Language::CSharp => &[
            "CompilationUnit",
            "NamespaceDeclaration",
            "ClassDeclaration",
            "Block",
            "IfStatement",
            "WhileStatement",
            "DoStatement",
            "ForStatement",
            "ForEachStatement",
            "SwitchStatement",
            "TryStatement",
            "CatchClause",
            "FinallyClause",
            "MethodDeclaration",
            "ConstructorDeclaration",
        ],
    };
    names.iter().map(|n| Kind::new(n)).collect()
}

/// Extracts the `(leaf, leaf, feature)` triples of `rep` from one tree.
pub fn extract_edge_features(
    language: Language,
    ast: &Ast,
    rep: Representation,
    cfg: &ExtractionConfig,
) -> Vec<EdgeFeature> {
    match rep {
        Representation::AstPaths(Abstraction::NoPath) => {
            extract_edge_features(language, ast, Representation::NoPaths, cfg)
        }
        Representation::AstPaths(abstraction) => leaf_pair_contexts(ast, cfg)
            .into_iter()
            .map(|c| EdgeFeature {
                a: c.start_node,
                b: c.end_node,
                feature: abstraction.apply(&c.path).to_string(),
            })
            .collect(),
        Representation::NoPaths => leaf_pair_contexts(ast, cfg)
            .into_iter()
            .flat_map(|c| {
                // The paper's no-path baseline is a *bag* of near
                // identifiers: the relation carries no direction. Emitting
                // both orientations makes the CRF feature symmetric, so
                // source order cannot leak through factor orientation.
                [
                    EdgeFeature {
                        a: c.start_node,
                        b: c.end_node,
                        feature: "rel".to_owned(),
                    },
                    EdgeFeature {
                        a: c.end_node,
                        b: c.start_node,
                        feature: "rel".to_owned(),
                    },
                ]
            })
            .collect(),
        Representation::NGram { window } => {
            let leaves = ast.leaves();
            let mut out = Vec::new();
            for (i, &a) in leaves.iter().enumerate() {
                for (d, &b) in leaves[i + 1..].iter().take(window).enumerate() {
                    out.push(EdgeFeature {
                        a,
                        b,
                        feature: format!("gram:{}", d + 1),
                    });
                }
            }
            out
        }
        Representation::Relations => {
            let stmts = statement_kinds(language);
            leaf_pair_contexts(ast, cfg)
                .into_iter()
                .filter(|c| {
                    // Interior nodes only: a path that climbs through a
                    // statement-level construct relates two different
                    // statements and is out of reach for single-statement
                    // relation extractors.
                    c.path.kinds()[1..c.path.kinds().len() - 1]
                        .iter()
                        .all(|k| !stmts.contains(k))
                })
                .map(|c| EdgeFeature {
                    a: c.start_node,
                    b: c.end_node,
                    feature: c.path.to_string(),
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn js_ast(src: &str) -> Ast {
        pigeon_js::parse(src).unwrap()
    }

    fn cfg() -> ExtractionConfig {
        ExtractionConfig::with_limits(8, 4)
    }

    /// The paper's Fig. 3: UnuglifyJS-style relations cannot tell the
    /// looping program from the flattened one, AST paths can.
    #[test]
    fn fig3_discriminability() {
        let looping = js_ast(
            "var d = false; while (!d) { doSomething(); if (someCondition()) { d = true; } }",
        );
        let flat = js_ast("someCondition(); doSomething(); var d = false; d = true;");

        let feature_set = |ast: &Ast, rep| {
            let mut fs: Vec<String> = extract_edge_features(Language::JavaScript, ast, rep, &cfg())
                .into_iter()
                .filter(|e| {
                    ast.value(e.a).unwrap().as_str() == "d"
                        || ast.value(e.b).unwrap().as_str() == "d"
                })
                .map(|e| {
                    format!(
                        "{}|{}|{}",
                        ast.value(e.a).unwrap(),
                        e.feature,
                        ast.value(e.b).unwrap()
                    )
                })
                .collect();
            fs.sort();
            fs.dedup();
            fs
        };

        let rel_a = feature_set(&looping, Representation::Relations);
        let rel_b = feature_set(&flat, Representation::Relations);
        assert_eq!(
            rel_a, rel_b,
            "single-statement relations must see the two programs identically"
        );

        let paths_a = feature_set(&looping, Representation::AstPaths(Abstraction::Full));
        let paths_b = feature_set(&flat, Representation::AstPaths(Abstraction::Full));
        assert_ne!(paths_a, paths_b, "AST paths must distinguish them");
    }

    #[test]
    fn no_paths_collapses_features() {
        let ast = js_ast("var a = b + c;");
        let feats =
            extract_edge_features(Language::JavaScript, &ast, Representation::NoPaths, &cfg());
        assert!(!feats.is_empty());
        assert!(feats.iter().all(|e| e.feature == "rel"));
    }

    #[test]
    fn ngram_features_encode_distance_only() {
        let ast = js_ast("f(a, b, c, d);");
        let feats = extract_edge_features(
            Language::JavaScript,
            &ast,
            Representation::NGram { window: 3 },
            &cfg(),
        );
        assert!(feats.iter().all(|e| e.feature.starts_with("gram:")));
        // 5 leaves (f a b c d): pairs at distance <= 3.
        let d1 = feats.iter().filter(|e| e.feature == "gram:1").count();
        assert_eq!(d1, 4);
        let d3 = feats.iter().filter(|e| e.feature == "gram:3").count();
        assert_eq!(d3, 2);
    }

    #[test]
    fn ast_path_features_render_paths() {
        let ast = js_ast("d = true;");
        let feats = extract_edge_features(
            Language::JavaScript,
            &ast,
            Representation::AstPaths(Abstraction::Full),
            &cfg(),
        );
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].feature, "SymbolRef ↑ Assign= ↓ True");
    }

    #[test]
    fn abstraction_changes_the_rendered_feature() {
        let ast = js_ast("d = true;");
        let full = extract_edge_features(
            Language::JavaScript,
            &ast,
            Representation::AstPaths(Abstraction::Full),
            &cfg(),
        );
        let fl = extract_edge_features(
            Language::JavaScript,
            &ast,
            Representation::AstPaths(Abstraction::FirstLast),
            &cfg(),
        );
        assert_ne!(full[0].feature, fl[0].feature);
        assert_eq!(fl[0].feature, "SymbolRef True");
    }

    #[test]
    fn representation_names_are_informative() {
        assert_eq!(Representation::NGram { window: 3 }.name(), "4-grams");
        assert!(Representation::AstPaths(Abstraction::Full)
            .name()
            .contains("full"));
    }
}
