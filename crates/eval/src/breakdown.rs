//! Per-role accuracy breakdown.
//!
//! The paper's qualitative discussion (§5.4) examines *which* names the
//! model gets right — flags, counters, request/response pairs. Because
//! our corpus records the generating [`Role`] of every variable, the
//! breakdown can be computed exactly: for each role, how often the
//! model's prediction matched the gold name, and how often it at least
//! landed inside the role's synonym class (a `found`-for-`done` miss is
//! a near miss; a `count`-for-`done` miss is a role confusion).

use crate::elements::ElementClass;
use crate::features::extract_edge_features;
use crate::graph::{build_name_graph, Vocabs};
use crate::metrics::exact_match;
use crate::tasks::NameExperiment;
use pigeon_corpus::{generate, Role};
use pigeon_crf::train as train_crf;
use std::collections::HashMap;

/// Accuracy of one role's variables.
#[derive(Debug, Clone, Copy)]
pub struct RoleScore {
    /// The generating role.
    pub role: Role,
    /// Variables of this role scored.
    pub total: usize,
    /// Exact (normalised) matches.
    pub exact: usize,
    /// Predictions inside the role's synonym class (includes exact).
    pub in_class: usize,
}

impl RoleScore {
    /// Exact-match accuracy for the role.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.exact as f64 / self.total as f64
    }

    /// Fraction of predictions that stayed inside the synonym class —
    /// the "semantically similar even when wrong" effect of the paper's
    /// Table 4.
    pub fn class_accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.in_class as f64 / self.total as f64
    }
}

/// Runs `exp` end to end and scores each test variable against its
/// generating role, returning one [`RoleScore`] per role seen in the
/// test split (sorted by descending support).
pub fn role_breakdown(exp: &NameExperiment) -> Vec<RoleScore> {
    assert!(
        exp.target == ElementClass::Variable,
        "role breakdown is defined for the variable-name task"
    );
    let corpus = generate(exp.language, &exp.corpus);
    let (train_corpus, _, test_corpus) = corpus.split(exp.train_frac, 0.0);
    let mut vocabs = Vocabs::new();

    let mut train_instances = Vec::new();
    for doc in &train_corpus.docs {
        let ast = exp
            .language
            .parse(&doc.source)
            .expect("generated docs parse");
        let features =
            extract_edge_features(exp.language, &ast, exp.representation, &exp.extraction);
        let graph = build_name_graph(exp.language, &ast, exp.target, &features, &mut vocabs, true);
        train_instances.push(graph.instance);
    }
    let model = train_crf(&train_instances, vocabs.labels.len() as u32, &exp.crf);

    let mut by_role: HashMap<Role, RoleScore> = HashMap::new();
    for doc in &test_corpus.docs {
        let ast = exp
            .language
            .parse(&doc.source)
            .expect("generated docs parse");
        let features =
            extract_edge_features(exp.language, &ast, exp.representation, &exp.extraction);
        let graph = build_name_graph(
            exp.language,
            &ast,
            exp.target,
            &features,
            &mut vocabs,
            false,
        );
        let predicted = model.predict(&graph.instance);
        for &node in &graph.unknown_nodes {
            let gold = &graph.node_names[node];
            // A name can be drawn for several roles (noise); attribute the
            // prediction to every truth entry carrying this name once.
            let Some(truth) = doc.truth.vars.iter().find(|v| &v.name == gold) else {
                continue;
            };
            let name = vocabs.label_name(predicted[node]);
            let entry = by_role.entry(truth.role).or_insert(RoleScore {
                role: truth.role,
                total: 0,
                exact: 0,
                in_class: 0,
            });
            entry.total += 1;
            if exact_match(name, gold) {
                entry.exact += 1;
                entry.in_class += 1;
            } else if truth.role.admits(name) {
                entry.in_class += 1;
            }
        }
    }

    let mut scores: Vec<RoleScore> = by_role.into_values().collect();
    scores.sort_by_key(|s| std::cmp::Reverse(s.total));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_corpus::{CorpusConfig, Language};

    #[test]
    fn breakdown_covers_the_major_roles_and_bounds_hold() {
        let exp = NameExperiment {
            corpus: CorpusConfig::default().with_files(150),
            ..NameExperiment::var_names(Language::JavaScript)
        };
        let scores = role_breakdown(&exp);
        assert!(scores.len() >= 10, "only {} roles seen", scores.len());
        let total: usize = scores.iter().map(|s| s.total).sum();
        assert!(total > 100);
        for s in &scores {
            assert!(s.exact <= s.in_class);
            assert!(s.in_class <= s.total);
            assert!(
                s.class_accuracy() >= s.accuracy(),
                "{:?}: class accuracy dominates exact",
                s.role
            );
        }
        // The synonym-class effect of the paper's Table 4: staying inside
        // the class is clearly easier than exact recovery overall.
        let exact: usize = scores.iter().map(|s| s.exact).sum();
        let in_class: usize = scores.iter().map(|s| s.in_class).sum();
        assert!(in_class > exact);
    }

    #[test]
    #[should_panic(expected = "variable-name task")]
    fn method_task_is_rejected() {
        let exp = NameExperiment {
            corpus: CorpusConfig::default().with_files(10),
            ..NameExperiment::method_names(Language::JavaScript)
        };
        let _ = role_breakdown(&exp);
    }
}
