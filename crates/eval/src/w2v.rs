//! word2vec-based variable naming (§3.2, Table 3).
//!
//! Three context definitions are compared, holding the SGNS learner
//! fixed:
//!
//! * **token stream** — the surrounding source tokens in a ±window, the
//!   context NLP uses and the paper's weakest row (20.6%);
//! * **path-neighbours, no-paths** — the values at the far ends of the
//!   element's path-contexts, with the path identity hidden (23.2%);
//! * **AST paths** — the full `(path, far value)` pair (40.4%).
//!
//! Prediction is the paper's Eq. 4 over the whole word vocabulary.

use crate::elements::{classify_elements, ElementClass};
use crate::metrics::Scoreboard;
use pigeon_core::{leaf_pair_contexts, Abstraction, ExtractionConfig, Interner};
use pigeon_corpus::{generate, CorpusConfig, Language};
use pigeon_word2vec::{train as train_sgns, SgnsConfig, SgnsModel};
use std::collections::HashMap;
use std::time::Instant;

/// The context definition fed to SGNS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum W2vContext {
    /// Linear token window of the given radius.
    TokenStream {
        /// Tokens on each side of an occurrence.
        window: usize,
    },
    /// Far-end values of path-contexts, path identity hidden.
    PathNeighbours,
    /// Far-end values *with* the abstracted path.
    AstPaths(Abstraction),
}

impl W2vContext {
    /// Display name matching the paper's Table 3 rows.
    pub fn name(self) -> &'static str {
        match self {
            W2vContext::TokenStream { .. } => "linear token-stream",
            W2vContext::PathNeighbours => "path-neighbors, no-paths",
            W2vContext::AstPaths(_) => "AST paths",
        }
    }
}

/// Configuration of one word2vec experiment.
#[derive(Debug, Clone)]
pub struct W2vExperiment {
    /// Evaluation language (the paper runs Table 3 on JavaScript).
    pub language: Language,
    /// Context definition under test.
    pub context: W2vContext,
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Path limits (for the path-based contexts).
    pub extraction: ExtractionConfig,
    /// SGNS training parameters.
    pub sgns: SgnsConfig,
    /// Fraction of documents used for training.
    pub train_frac: f64,
}

impl W2vExperiment {
    /// The Table 3 setting: JavaScript variable names, best path params.
    pub fn table3(context: W2vContext) -> Self {
        W2vExperiment {
            language: Language::JavaScript,
            context,
            corpus: CorpusConfig::default(),
            extraction: ExtractionConfig::with_limits(7, 3),
            sgns: SgnsConfig::default(),
            train_frac: 0.8,
        }
    }
}

/// The contexts of every unknown variable element in one document, as
/// rendered strings keyed by the element's name.
fn document_contexts(exp: &W2vExperiment, source: &str) -> Vec<(String, Vec<String>)> {
    let ast = exp
        .language
        .parse(source)
        .expect("generated documents parse");
    let elements = classify_elements(exp.language, &ast);
    let unknown: HashMap<&str, usize> = elements
        .iter()
        .enumerate()
        .filter(|(_, e)| e.class == ElementClass::Variable)
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();
    let mut contexts: Vec<(String, Vec<String>)> = elements
        .iter()
        .filter(|e| e.class == ElementClass::Variable)
        .map(|e| (e.name.clone(), Vec::new()))
        .collect();
    let slot: HashMap<String, usize> = contexts
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.clone(), i))
        .collect();

    match exp.context {
        W2vContext::TokenStream { window } => {
            let tokens: Vec<String> = pigeon_js::tokenize(source)
                .expect("generated documents tokenize")
                .into_iter()
                .filter(|t| t.kind != pigeon_js::TokenKind::Eof)
                .map(|t| t.text)
                .collect();
            for (i, tok) in tokens.iter().enumerate() {
                let Some(&s) = slot.get(tok.as_str()) else {
                    continue;
                };
                let lo = i.saturating_sub(window);
                let hi = (i + window + 1).min(tokens.len());
                for (j, other) in tokens[lo..hi].iter().enumerate() {
                    if lo + j != i {
                        contexts[s].1.push(format!("tok:{other}"));
                    }
                }
            }
        }
        W2vContext::PathNeighbours | W2vContext::AstPaths(_) => {
            // Element-occurrence leaves of each unknown element.
            let leaf_owner: HashMap<pigeon_ast::NodeId, usize> = elements
                .iter()
                .filter(|e| unknown.contains_key(e.name.as_str()))
                .flat_map(|e| {
                    let s = slot[e.name.as_str()];
                    e.occurrences.iter().map(move |&l| (l, s))
                })
                .collect();
            for ctx in leaf_pair_contexts(&ast, &exp.extraction) {
                for (leaf, far, flip) in [
                    (ctx.start_node, ctx.end, false),
                    (ctx.end_node, ctx.start, true),
                ] {
                    let Some(&s) = leaf_owner.get(&leaf) else {
                        continue;
                    };
                    let rendered = match exp.context {
                        W2vContext::PathNeighbours => format!("nb:{far}"),
                        W2vContext::AstPaths(a) => {
                            let p = if flip {
                                a.apply(&ctx.path.reversed()).to_string()
                            } else {
                                a.apply(&ctx.path).to_string()
                            };
                            format!("{p}|{far}")
                        }
                        W2vContext::TokenStream { .. } => unreachable!(),
                    };
                    contexts[s].1.push(rendered);
                }
            }
        }
    }
    contexts
}

/// A trained embedding together with its vocabularies, for qualitative
/// inspection (the paper's Table 4b synonym clusters).
#[derive(Debug)]
pub struct W2vBundle {
    /// The trained SGNS embeddings.
    pub model: SgnsModel,
    /// Word (name) vocabulary.
    pub words: Interner<String>,
    /// Context vocabulary.
    pub contexts: Interner<String>,
    /// Wall-clock training seconds.
    pub train_secs: f64,
}

/// Trains SGNS on the training split of `exp`'s corpus and returns the
/// model with its vocabularies.
pub fn train_w2v(exp: &W2vExperiment) -> W2vBundle {
    assert!(
        !matches!(exp.context, W2vContext::TokenStream { .. })
            || exp.language == Language::JavaScript,
        "the token-stream baseline is implemented for JavaScript (Table 3)"
    );
    let corpus = generate(exp.language, &exp.corpus);
    let (train_corpus, _, _) = corpus.split(exp.train_frac, 0.0);

    let mut words: Interner<String> = Interner::new();
    let mut ctxs: Interner<String> = Interner::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for doc in &train_corpus.docs {
        for (name, contexts) in document_contexts(exp, &doc.source) {
            let w = words.intern(name);
            for c in contexts {
                pairs.push((w, ctxs.intern(c)));
            }
        }
    }
    let started = Instant::now();
    let model: SgnsModel = train_sgns(&pairs, words.len(), ctxs.len(), &exp.sgns);
    W2vBundle {
        model,
        words,
        contexts: ctxs,
        train_secs: started.elapsed().as_secs_f64(),
    }
}

/// Runs a Table 3 experiment: train SGNS on the training split's
/// (name, context) pairs, predict names on the test split via Eq. 4.
pub fn run_w2v_experiment(exp: &W2vExperiment) -> crate::TaskOutcome {
    let W2vBundle {
        model,
        words,
        contexts: ctxs,
        train_secs,
    } = train_w2v(exp);
    let corpus = generate(exp.language, &exp.corpus);
    let (_, _, test_corpus) = corpus.split(exp.train_frac, 0.0);

    let mut board = Scoreboard::new();
    for doc in &test_corpus.docs {
        for (gold, contexts) in document_contexts(exp, &doc.source) {
            let ids: Vec<u32> = contexts.iter().filter_map(|c| ctxs.get(c)).collect();
            if ids.is_empty() {
                board.record_oov();
                continue;
            }
            // Bounded top-k: only the 5 best of the vocabulary are needed.
            let ranked = model.predict_top_k(&ids, None, 5);
            let top: Vec<String> = ranked
                .iter()
                .map(|&(w, _)| words.resolve(w).clone())
                .collect();
            let predicted = top.first().cloned().unwrap_or_default();
            board.record(&predicted, &gold, Some(&top));
        }
    }

    crate::TaskOutcome {
        accuracy: board.accuracy(),
        topk_accuracy: board.topk_accuracy(),
        f1: board.f1(),
        n_test: board.total(),
        train_secs,
        n_features: ctxs.len(),
        n_labels: words.len(),
        oov_rate: board.oov_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(context: W2vContext) -> W2vExperiment {
        W2vExperiment {
            corpus: CorpusConfig::default().with_files(150),
            ..W2vExperiment::table3(context)
        }
    }

    #[test]
    fn paths_beat_token_stream_and_neighbours() {
        let paths = run_w2v_experiment(&small(W2vContext::AstPaths(Abstraction::Full)));
        let neighbours = run_w2v_experiment(&small(W2vContext::PathNeighbours));
        let tokens = run_w2v_experiment(&small(W2vContext::TokenStream { window: 2 }));
        assert!(paths.n_test > 50);
        assert!(
            paths.accuracy > neighbours.accuracy,
            "paths {:.3} <= neighbours {:.3}",
            paths.accuracy,
            neighbours.accuracy
        );
        assert!(
            paths.accuracy > tokens.accuracy,
            "paths {:.3} <= tokens {:.3}",
            paths.accuracy,
            tokens.accuracy
        );
    }

    #[test]
    fn token_contexts_are_windowed() {
        let exp = small(W2vContext::TokenStream { window: 1 });
        let ctxs = document_contexts(&exp, "var done = false;");
        let done = ctxs.iter().find(|(n, _)| n == "done").unwrap();
        assert_eq!(done.1, vec!["tok:var".to_owned(), "tok:=".to_owned()]);
    }

    #[test]
    fn path_contexts_attach_to_both_ends() {
        let exp = small(W2vContext::AstPaths(Abstraction::Full));
        let ctxs = document_contexts(&exp, "var a = b;");
        // `a` and `b` are both variables... b is a bare reference, so only
        // `a` is a declared variable element here.
        let a = ctxs.iter().find(|(n, _)| n == "a").unwrap();
        assert_eq!(a.1.len(), 1);
        assert!(a.1[0].contains("SymbolVar"));
    }
}
