//! Parameter sweeps behind the paper's figures.

use crate::features::Representation;
use crate::tasks::{run_name_experiment, NameExperiment};
use pigeon_core::{parallel_map_indexed, Abstraction, ExtractionConfig};
use pigeon_corpus::{CorpusConfig, Language};

/// One cell of the Fig. 10 grid: accuracy at a length/width combination.
#[derive(Debug, Clone, Copy)]
pub struct LengthWidthCell {
    /// `max_length` value.
    pub max_length: usize,
    /// `max_width` value.
    pub max_width: usize,
    /// Variable-name accuracy at this setting.
    pub accuracy: f64,
}

/// Fig. 10: JavaScript variable-name accuracy over the
/// `max_length × max_width` grid. Cells are independent experiments and
/// fan out over `jobs` workers (`1` serial, `0` all cores); results come
/// back in grid order either way.
pub fn length_width_sweep(
    corpus: &CorpusConfig,
    lengths: &[usize],
    widths: &[usize],
    jobs: usize,
) -> Vec<LengthWidthCell> {
    let mut cells = Vec::new();
    for &w in widths {
        for &l in lengths {
            cells.push((l, w));
        }
    }
    parallel_map_indexed(&cells, jobs, |_, &(l, w)| {
        // Leafwise only: semi-paths would blur the length axis
        // because a short-capped leafwise set still gets ancestor
        // context through them; the figure isolates the §4.2
        // hyper-parameters.
        let exp = NameExperiment {
            corpus: *corpus,
            extraction: ExtractionConfig::with_limits(l, w),
            ..NameExperiment::var_names(Language::JavaScript)
        };
        LengthWidthCell {
            max_length: l,
            max_width: w,
            accuracy: run_name_experiment(&exp).accuracy,
        }
    })
}

/// One point of the Fig. 11 curve: accuracy and training time at a
/// keep-probability.
#[derive(Debug, Clone, Copy)]
pub struct DownsamplePoint {
    /// Probability of keeping each path-context occurrence.
    pub keep_prob: f64,
    /// Variable-name accuracy.
    pub accuracy: f64,
    /// CRF training seconds.
    pub train_secs: f64,
}

/// Fig. 11: downsampling keep-probability vs accuracy and training time
/// (JavaScript variable names). Points fan out over `jobs` workers; note
/// that parallel points sharing cores perturbs the reported
/// `train_secs`, so time-sensitive runs should pass `jobs = 1`.
pub fn downsample_sweep(corpus: &CorpusConfig, probs: &[f64], jobs: usize) -> Vec<DownsamplePoint> {
    parallel_map_indexed(probs, jobs, |_, &p| {
        let exp = NameExperiment {
            corpus: *corpus,
            keep_prob: p,
            ..NameExperiment::var_names(Language::JavaScript)
        };
        let out = run_name_experiment(&exp);
        DownsamplePoint {
            keep_prob: p,
            accuracy: out.accuracy,
            train_secs: out.train_secs,
        }
    })
}

/// One point of the Fig. 12 trade-off: an abstraction level's accuracy
/// and training time.
#[derive(Debug, Clone, Copy)]
pub struct AbstractionPoint {
    /// The abstraction level.
    pub abstraction: Abstraction,
    /// Java variable-name accuracy.
    pub accuracy: f64,
    /// CRF training seconds.
    pub train_secs: f64,
    /// Distinct relation features (the model-size proxy).
    pub n_features: usize,
}

/// Fig. 12: accuracy vs training time across the abstraction levels of
/// §5.6 (Java variable names, identical corpus and settings per level).
/// Levels fan out over `jobs` workers; `train_secs` comparisons are only
/// clean at `jobs = 1`.
pub fn abstraction_sweep(corpus: &CorpusConfig, jobs: usize) -> Vec<AbstractionPoint> {
    parallel_map_indexed(&Abstraction::ALL, jobs, |_, &a| {
        let exp = NameExperiment {
            corpus: *corpus,
            representation: Representation::AstPaths(a),
            ..NameExperiment::var_names(Language::Java)
        };
        let out = run_name_experiment(&exp);
        AbstractionPoint {
            abstraction: a,
            accuracy: out.accuracy,
            train_secs: out.train_secs,
            n_features: out.n_features,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig::default().with_files(250)
    }

    #[test]
    fn length_sweep_shows_gain_from_longer_paths() {
        let cells = length_width_sweep(&tiny(), &[2, 3], &[3], 2);
        assert_eq!(cells.len(), 2);
        let short = cells.iter().find(|c| c.max_length == 2).unwrap();
        let long = cells.iter().find(|c| c.max_length == 3).unwrap();
        assert!(
            long.accuracy > short.accuracy,
            "length 3 ({:.3}) should beat length 2 ({:.3})",
            long.accuracy,
            short.accuracy
        );
    }

    #[test]
    fn abstraction_sweep_orders_no_path_last() {
        let points = abstraction_sweep(&tiny(), 2);
        assert_eq!(points.len(), 7);
        let full = points
            .iter()
            .find(|p| p.abstraction == Abstraction::Full)
            .unwrap();
        let none = points
            .iter()
            .find(|p| p.abstraction == Abstraction::NoPath)
            .unwrap();
        assert!(
            full.accuracy > none.accuracy + 0.02,
            "full {:.3} vs no-path {:.3}",
            full.accuracy,
            none.accuracy
        );
        assert!(full.n_features > none.n_features);
    }

    #[test]
    fn downsample_sweep_produces_monotone_sizes() {
        let points = downsample_sweep(&tiny(), &[0.2, 1.0], 2);
        assert_eq!(points.len(), 2);
        assert!(points[1].accuracy >= points[0].accuracy - 0.15);
    }
}
