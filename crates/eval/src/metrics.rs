//! Evaluation metrics (§5.2 of the paper).
//!
//! The headline metric is **normalised exact match**: case-insensitive
//! and ignoring non-alphanumeric characters, so `totalCount` matches
//! `total_count`. For the comparison against Allamanis et al. the paper
//! also reports **precision/recall/F1 over sub-tokens** (`getCount` →
//! `get`, `count`). An unknown ("UNK") gold label always counts as an
//! incorrect prediction.

/// Normalises a name for exact-match comparison: lowercase, with every
/// non-alphanumeric character removed.
///
/// ```
/// use pigeon_eval::normalize_name;
/// assert_eq!(normalize_name("totalCount"), normalize_name("total_count"));
/// assert_ne!(normalize_name("done"), normalize_name("count"));
/// ```
pub fn normalize_name(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Whether `predicted` exactly matches `gold` under normalisation.
pub fn exact_match(predicted: &str, gold: &str) -> bool {
    let p = normalize_name(predicted);
    !p.is_empty() && p == normalize_name(gold)
}

/// Splits a name into lowercase sub-tokens at camelCase humps, digits and
/// separator characters.
///
/// ```
/// use pigeon_eval::subtokens;
/// assert_eq!(subtokens("getTotalCount"), ["get", "total", "count"]);
/// assert_eq!(subtokens("total_count"), ["total", "count"]);
/// assert_eq!(subtokens("HTTPServer2"), ["httpserver", "2"]);
/// ```
pub fn subtokens(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    for c in name.chars() {
        if !c.is_ascii_alphanumeric() {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            prev = None;
            continue;
        }
        let hump = c.is_ascii_uppercase() && prev.is_some_and(|p| p.is_ascii_lowercase());
        let digit_boundary =
            !cur.is_empty() && prev.is_some_and(|p| p.is_ascii_digit() != c.is_ascii_digit());
        if hump || digit_boundary {
            out.push(std::mem::take(&mut cur));
        }
        cur.push(c.to_ascii_lowercase());
        prev = Some(c);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Sub-token precision, recall and F1 of one prediction, with
/// multiplicity (bag semantics).
pub fn subtoken_prf(predicted: &str, gold: &str) -> (f64, f64, f64) {
    let p = subtokens(predicted);
    let g = subtokens(gold);
    if p.is_empty() || g.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut remaining = g.clone();
    let mut hits = 0usize;
    for t in &p {
        if let Some(i) = remaining.iter().position(|r| r == t) {
            remaining.swap_remove(i);
            hits += 1;
        }
    }
    let precision = hits as f64 / p.len() as f64;
    let recall = hits as f64 / g.len() as f64;
    let f1 = if hits == 0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

/// Accumulates per-prediction outcomes into corpus-level scores.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    correct: usize,
    total: usize,
    topk_correct: usize,
    /// Predictions that supplied a candidate list — the top-k accuracy
    /// denominator. Candidate-less predictions and OoV entries are not
    /// top-k attempts and must not deflate the metric.
    topk_total: usize,
    f1_sum: f64,
    oov: usize,
}

impl Scoreboard {
    /// An empty scoreboard.
    pub fn new() -> Self {
        Scoreboard::default()
    }

    /// Records one prediction. `top_k` optionally carries the ranked
    /// candidate list for top-k accuracy.
    pub fn record(&mut self, predicted: &str, gold: &str, top_k: Option<&[String]>) {
        self.total += 1;
        if exact_match(predicted, gold) {
            self.correct += 1;
        }
        if let Some(candidates) = top_k {
            self.topk_total += 1;
            if candidates.iter().any(|c| exact_match(c, gold)) {
                self.topk_correct += 1;
            }
        }
        self.f1_sum += subtoken_prf(predicted, gold).2;
    }

    /// Records a gold label that the model cannot express (out of
    /// vocabulary): always wrong, per §5.2.
    pub fn record_oov(&mut self) {
        self.total += 1;
        self.oov += 1;
    }

    /// Marks the most recent [`record`](Scoreboard::record) as an
    /// out-of-vocabulary gold (scored normally — normalised variants may
    /// still match — but tracked for the §5.3 OoV statistics).
    pub fn note_oov(&mut self) {
        self.oov += 1;
    }

    /// The fraction of predictions whose gold label was out of
    /// vocabulary (the paper reports 5–15% across its datasets).
    pub fn oov_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.oov as f64 / self.total as f64
    }

    /// Exact-match accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Top-k accuracy in `[0, 1]` over the predictions that supplied
    /// candidate lists.
    pub fn topk_accuracy(&self) -> f64 {
        if self.topk_total == 0 {
            return 0.0;
        }
        self.topk_correct as f64 / self.topk_total as f64
    }

    /// Mean sub-token F1 in `[0, 1]`.
    pub fn f1(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.f1_sum / self.total as f64
    }

    /// Number of predictions recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of exact-match hits.
    pub fn correct(&self) -> usize {
        self.correct
    }

    /// Merges another scoreboard into this one.
    pub fn merge(&mut self, other: &Scoreboard) {
        self.correct += other.correct;
        self.total += other.total;
        self.topk_correct += other.topk_correct;
        self.topk_total += other.topk_total;
        self.f1_sum += other.f1_sum;
        self.oov += other.oov;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_matches_paper_example() {
        assert!(exact_match("totalCount", "total_count"));
        assert!(exact_match("DONE", "done"));
        assert!(!exact_match("msg", "message"));
        assert!(!exact_match("", "x"));
    }

    #[test]
    fn subtoken_splitting() {
        assert_eq!(subtokens("multithreadedHttpConnectionManager").len(), 4);
        assert_eq!(subtokens("i"), ["i"]);
        assert_eq!(subtokens("__"), Vec::<String>::new());
        assert_eq!(subtokens("a1b"), ["a", "1", "b"]);
    }

    #[test]
    fn prf_partial_credit() {
        // Paper example: getFoo vs get<UNK> gives partial precision and
        // recall; here getCount vs countItems shares `count`.
        let (p, r, f1) = subtoken_prf("getCount", "countItems");
        assert!((p - 0.5).abs() < 1e-9);
        assert!((r - 0.5).abs() < 1e-9);
        assert!((f1 - 0.5).abs() < 1e-9);
        assert_eq!(subtoken_prf("done", "done"), (1.0, 1.0, 1.0));
        assert_eq!(subtoken_prf("done", "count").2, 0.0);
    }

    #[test]
    fn prf_respects_multiplicity() {
        let (p, _, _) = subtoken_prf("aA", "a");
        assert!((p - 0.5).abs() < 1e-9, "duplicate prediction counted once");
    }

    #[test]
    fn scoreboard_aggregates() {
        let mut s = Scoreboard::new();
        s.record("done", "done", Some(&["done".into(), "found".into()]));
        s.record("msg", "message", Some(&["text".into(), "message".into()]));
        s.record_oov();
        assert_eq!(s.total(), 3);
        assert!((s.oov_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.correct(), 1);
        assert!((s.accuracy() - 1.0 / 3.0).abs() < 1e-9);
        // Both candidate-supplying predictions hit within top-k; the OoV
        // entry never attempted top-k and does not dilute the metric.
        assert!((s.topk_accuracy() - 1.0).abs() < 1e-9);
        assert!(s.f1() > 0.0);
    }

    /// Regression: `topk_accuracy` is documented as being "over the
    /// predictions that supplied candidate lists" — `top_k: None`
    /// records and `record_oov` entries must leave it untouched.
    #[test]
    fn topk_denominator_counts_only_candidate_supplying_records() {
        let mut s = Scoreboard::new();
        s.record("done", "done", Some(&["done".into()]));
        s.record("msg", "message", Some(&["text".into()]));
        assert!((s.topk_accuracy() - 0.5).abs() < 1e-9);
        // A candidate-less prediction and an OoV gold: accuracy's
        // denominator grows, top-k's must not.
        s.record("x", "x", None);
        s.record_oov();
        assert_eq!(s.total(), 4);
        assert!((s.topk_accuracy() - 0.5).abs() < 1e-9);
        // Merging preserves both denominators independently.
        let mut merged = Scoreboard::new();
        merged.record("found", "found", Some(&["found".into()]));
        merged.merge(&s);
        assert_eq!(merged.total(), 5);
        assert!((merged.topk_accuracy() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn scoreboard_merge() {
        let mut a = Scoreboard::new();
        a.record("x", "x", None);
        let mut b = Scoreboard::new();
        b.record("y", "z", None);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.correct(), 1);
    }

    #[test]
    fn empty_scoreboard_is_zero() {
        let s = Scoreboard::new();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }
}
