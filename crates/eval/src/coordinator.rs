//! Shard coordination for multi-box distributed training.
//!
//! The coordinator's job is bookkeeping, not I/O: given a corpus split
//! into `shard_count` ranges (the same [`shard_range`] chunks the
//! single-box `--shard i/n` path uses), it hands shards to polling
//! workers, watches per-shard deadlines, reassigns stragglers with
//! capped exponential backoff, and reports when coverage is exact so
//! the caller can run the merge finishing pass. Everything here is
//! pure state driven by an injected millisecond clock — the HTTP
//! surface, the partial cache on disk, and JSON all live in the
//! binary's serve layer, which keeps this logic unit-testable without
//! sockets and this crate free of a JSON dependency.
//!
//! Cache keys are content addresses: FNV-1a over the training-config
//! fingerprint, the shard coordinates, and a fingerprint of the shard's
//! source bytes. Two runs over the same corpus with the same knobs
//! derive the same keys, so a shard that is already in the cache is
//! never re-extracted or re-uploaded; touching one file changes only
//! that shard's key.
//!
//! [`shard_range`]: crate::partial::shard_range

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Attempts after which the lease backoff stops doubling (base × 2⁴).
const BACKOFF_CAP: u32 = 4;

/// 64-bit FNV-1a over a byte string. Dependency-free, stable across
/// platforms, and good enough for content addressing a few thousand
/// shards — collisions would need ~2³² keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Extends an FNV-1a hash with more bytes (for incremental hashing of
/// multi-part inputs without concatenating them).
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprints a training configuration from its knob table (the same
/// `(name, value)` pairs [`merge_partials`] compares). Every knob name
/// and value is length-framed so `("ab","c")` and `("a","bc")` hash
/// differently.
///
/// [`merge_partials`]: crate::partial::merge_partials
pub fn config_fingerprint(knobs: &[(&str, String)]) -> u64 {
    let mut hash = FNV_OFFSET;
    for (name, value) in knobs {
        hash = fnv1a_extend(hash, &(name.len() as u64).to_le_bytes());
        hash = fnv1a_extend(hash, name.as_bytes());
        hash = fnv1a_extend(hash, &(value.len() as u64).to_le_bytes());
        hash = fnv1a_extend(hash, value.as_bytes());
    }
    hash
}

/// Fingerprints one corpus shard: the relative path and content bytes
/// of every file in the shard's range, length-framed in corpus order.
/// Renaming, reordering, editing, adding or removing a file all change
/// the fingerprint of exactly the shards whose ranges are affected.
pub fn corpus_shard_fingerprint<'a>(files: impl IntoIterator<Item = (&'a str, &'a [u8])>) -> u64 {
    let mut hash = FNV_OFFSET;
    for (name, bytes) in files {
        hash = fnv1a_extend(hash, &(name.len() as u64).to_le_bytes());
        hash = fnv1a_extend(hash, name.as_bytes());
        hash = fnv1a_extend(hash, &(bytes.len() as u64).to_le_bytes());
        hash = fnv1a_extend(hash, bytes);
    }
    hash
}

/// Derives a shard's content-address: FNV-1a of the config
/// fingerprint, the shard coordinates, and the corpus-shard
/// fingerprint, rendered as 16 lowercase hex digits. This is the
/// partial's name in the cache directory and its id in
/// `/v1/partials/<key>`.
pub fn cache_key(config_fp: u64, shard_index: u32, shard_count: u32, corpus_fp: u64) -> String {
    let mut hash = fnv1a(&config_fp.to_le_bytes());
    hash = fnv1a_extend(hash, &shard_index.to_le_bytes());
    hash = fnv1a_extend(hash, &shard_count.to_le_bytes());
    hash = fnv1a_extend(hash, &corpus_fp.to_le_bytes());
    format!("{hash:016x}")
}

/// A shard's position in the job state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Not yet handed to any worker.
    Pending,
    /// Leased to a worker; reassigned if the deadline passes.
    Assigned,
    /// A validated partial for this shard is in the cache.
    Uploaded,
    /// The finishing merge consumed this shard's partial.
    Merged,
}

impl ShardPhase {
    /// Stable lowercase name for status JSON and logs.
    pub fn name(self) -> &'static str {
        match self {
            ShardPhase::Pending => "pending",
            ShardPhase::Assigned => "assigned",
            ShardPhase::Uploaded => "uploaded",
            ShardPhase::Merged => "merged",
        }
    }
}

/// How a shard's partial became available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSource {
    /// Not available yet.
    None,
    /// Found in the content-addressed cache at job creation (or by a
    /// worker's pre-flight `GET /v1/partials/<key>`).
    Cache,
    /// Freshly extracted and uploaded by a worker this run.
    Upload,
}

impl ShardSource {
    /// Stable lowercase name for status JSON.
    pub fn name(self) -> &'static str {
        match self {
            ShardSource::None => "none",
            ShardSource::Cache => "cache",
            ShardSource::Upload => "upload",
        }
    }
}

/// One shard's coordinator-side state.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Content-address of this shard's partial (16 hex digits).
    pub key: String,
    /// Position in the state machine.
    pub phase: ShardPhase,
    /// Worker currently holding the lease (while `Assigned`) or the
    /// worker that uploaded the partial.
    pub worker: Option<String>,
    /// Times this shard has been leased (reassignments = attempts − 1).
    pub attempts: u32,
    /// Lease expiry in coordinator-clock milliseconds (while
    /// `Assigned`).
    pub deadline_ms: u64,
    /// Where the partial came from once available.
    pub source: ShardSource,
}

/// Outcome of a worker's lease poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lease {
    /// Work on this shard. `reassigned` is true when the shard was
    /// taken back from an expired lease — the caller counts these.
    Assigned { index: usize, reassigned: bool },
    /// Nothing assignable right now, but uploads are still
    /// outstanding — poll again.
    Wait,
    /// Every shard is uploaded (or merged); there is nothing left to
    /// extract.
    Complete,
}

/// The per-job shard board: lease assignment, deadline tracking, and
/// coverage accounting. Time is injected as milliseconds so tests
/// drive expiry deterministically without sleeping.
#[derive(Debug)]
pub struct ShardBoard {
    shards: Vec<Shard>,
    /// First-attempt lease duration; doubles per retry up to
    /// `base × 2^BACKOFF_CAP`.
    base_lease_ms: u64,
}

impl ShardBoard {
    /// Creates a board with one `Pending` shard per cache key.
    pub fn new(keys: Vec<String>, base_lease_ms: u64) -> Self {
        let shards = keys
            .into_iter()
            .map(|key| Shard {
                key,
                phase: ShardPhase::Pending,
                worker: None,
                attempts: 0,
                deadline_ms: 0,
                source: ShardSource::None,
            })
            .collect();
        ShardBoard {
            shards,
            base_lease_ms,
        }
    }

    /// Read access to the shard table (status reporting).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The lease a shard's next attempt gets: base × 2^(attempts−1),
    /// capped. Attempt 1 waits `base`, attempt 2 `2×base`, … so a
    /// persistently slow shard is retried patiently instead of
    /// thrashing between workers.
    fn lease_ms(&self, attempts: u32) -> u64 {
        let doublings = attempts.saturating_sub(1).min(BACKOFF_CAP);
        self.base_lease_ms.saturating_mul(1u64 << doublings)
    }

    /// Marks a shard's partial as already present in the cache (job
    /// creation scan, or a validated out-of-band upload).
    /// Returns false if the shard already had its partial.
    pub fn mark_cached(&mut self, index: usize) -> bool {
        let shard = &mut self.shards[index];
        if matches!(shard.phase, ShardPhase::Uploaded | ShardPhase::Merged) {
            return false;
        }
        shard.phase = ShardPhase::Uploaded;
        shard.source = ShardSource::Cache;
        shard.worker = None;
        true
    }

    /// Records a validated upload for a shard. Returns true when the
    /// shard was newly satisfied, false for a duplicate (late
    /// straggler) upload — the caller leaves state untouched. `None`
    /// keeps the leasing worker's name (uploads are raw partial bytes
    /// and carry no worker identity).
    pub fn mark_uploaded(&mut self, index: usize, worker: Option<&str>) -> bool {
        let shard = &mut self.shards[index];
        if matches!(shard.phase, ShardPhase::Uploaded | ShardPhase::Merged) {
            return false;
        }
        shard.phase = ShardPhase::Uploaded;
        shard.source = ShardSource::Upload;
        if let Some(worker) = worker {
            shard.worker = Some(worker.to_owned());
        }
        true
    }

    /// Hands the caller a shard to work on: first any `Pending` shard,
    /// then any `Assigned` shard whose lease expired (a straggler or a
    /// dead worker — flagged `reassigned`). Expired leases get a
    /// doubled deadline per attempt so slow-but-alive workers aren't
    /// starved by theft loops.
    pub fn lease(&mut self, now_ms: u64, worker: &str) -> Lease {
        // Fresh shards first: breadth before retrying stragglers.
        if let Some(index) = self
            .shards
            .iter()
            .position(|s| s.phase == ShardPhase::Pending)
        {
            self.assign(index, now_ms, worker);
            return Lease::Assigned {
                index,
                reassigned: false,
            };
        }
        if let Some(index) = self
            .shards
            .iter()
            .position(|s| s.phase == ShardPhase::Assigned && s.deadline_ms <= now_ms)
        {
            self.assign(index, now_ms, worker);
            return Lease::Assigned {
                index,
                reassigned: true,
            };
        }
        if self.all_uploaded() {
            Lease::Complete
        } else {
            Lease::Wait
        }
    }

    fn assign(&mut self, index: usize, now_ms: u64, worker: &str) {
        let attempts = self.shards[index].attempts + 1;
        let deadline_ms = now_ms.saturating_add(self.lease_ms(attempts));
        let shard = &mut self.shards[index];
        shard.phase = ShardPhase::Assigned;
        shard.worker = Some(worker.to_owned());
        shard.attempts = attempts;
        shard.deadline_ms = deadline_ms;
    }

    /// True once every shard's partial is available (uploaded or
    /// merged) — the trigger for the finishing merge.
    pub fn all_uploaded(&self) -> bool {
        self.shards
            .iter()
            .all(|s| matches!(s.phase, ShardPhase::Uploaded | ShardPhase::Merged))
    }

    /// Moves every uploaded shard to `Merged` (after the finishing
    /// pass consumed the partials).
    pub fn mark_merged(&mut self) {
        for shard in &mut self.shards {
            if shard.phase == ShardPhase::Uploaded {
                shard.phase = ShardPhase::Merged;
            }
        }
    }

    /// Shard index for a cache key, if any shard owns it.
    pub fn index_of_key(&self, key: &str) -> Option<usize> {
        self.shards.iter().position(|s| s.key == key)
    }

    /// `(pending, assigned, uploaded, merged)` counts for status JSON.
    pub fn phase_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for shard in &self.shards {
            match shard.phase {
                ShardPhase::Pending => counts.0 += 1,
                ShardPhase::Assigned => counts.1 += 1,
                ShardPhase::Uploaded => counts.2 += 1,
                ShardPhase::Merged => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        // Incremental hashing equals one-shot hashing.
        assert_eq!(fnv1a_extend(fnv1a(b"foo"), b"bar"), fnv1a(b"foobar"));
    }

    #[test]
    fn cache_keys_are_stable_and_sensitive() {
        let knobs = [("max_length", "4".to_owned()), ("jobs", "0".to_owned())];
        let config = config_fingerprint(&knobs);
        let corpus = corpus_shard_fingerprint([("a.js", b"var x;".as_slice())]);
        let key = cache_key(config, 0, 4, corpus);
        assert_eq!(key.len(), 16);
        assert!(key.bytes().all(|b| b.is_ascii_hexdigit()));
        // Deterministic.
        assert_eq!(key, cache_key(config, 0, 4, corpus));
        // Any coordinate, knob or content change moves the key.
        assert_ne!(key, cache_key(config, 1, 4, corpus));
        assert_ne!(key, cache_key(config, 0, 5, corpus));
        let other_knobs = [("max_length", "7".to_owned()), ("jobs", "0".to_owned())];
        assert_ne!(
            key,
            cache_key(config_fingerprint(&other_knobs), 0, 4, corpus)
        );
        let touched = corpus_shard_fingerprint([("a.js", b"var y;".as_slice())]);
        assert_ne!(key, cache_key(config, 0, 4, touched));
    }

    #[test]
    fn framed_fingerprints_resist_concatenation_ambiguity() {
        let a = corpus_shard_fingerprint([("ab", b"c".as_slice())]);
        let b = corpus_shard_fingerprint([("a", b"bc".as_slice())]);
        assert_ne!(a, b);
        let one = corpus_shard_fingerprint([("a.js", b"xy".as_slice())]);
        let two = corpus_shard_fingerprint([("a.js", b"x".as_slice()), ("", b"y".as_slice())]);
        assert_ne!(one, two);
    }

    fn board(n: usize) -> ShardBoard {
        ShardBoard::new((0..n).map(|i| format!("{i:016x}")).collect(), 1_000)
    }

    #[test]
    fn leases_cover_every_shard_once() {
        let mut b = board(3);
        for expect in 0..3 {
            match b.lease(0, "w") {
                Lease::Assigned { index, reassigned } => {
                    assert_eq!(index, expect);
                    assert!(!reassigned);
                }
                other => panic!("expected assignment, got {other:?}"),
            }
        }
        // Everything leased and in-deadline: wait.
        assert_eq!(b.lease(10, "w2"), Lease::Wait);
        for i in 0..3 {
            assert!(b.mark_uploaded(i, Some("w")));
        }
        assert_eq!(b.lease(10, "w2"), Lease::Complete);
        assert!(b.all_uploaded());
    }

    #[test]
    fn expired_leases_are_reassigned_with_backoff() {
        let mut b = board(1);
        assert!(matches!(
            b.lease(0, "slow"),
            Lease::Assigned {
                index: 0,
                reassigned: false
            }
        ));
        // Attempt 1: base lease of 1000ms — not expired at 999.
        assert_eq!(b.lease(999, "thief"), Lease::Wait);
        // Expired at 1000: reassigned, attempt 2 gets a doubled lease.
        assert_eq!(
            b.lease(1_000, "thief"),
            Lease::Assigned {
                index: 0,
                reassigned: true
            }
        );
        assert_eq!(b.shards()[0].attempts, 2);
        assert_eq!(b.shards()[0].worker.as_deref(), Some("thief"));
        assert_eq!(b.shards()[0].deadline_ms, 1_000 + 2_000);
        assert_eq!(b.lease(2_999, "w3"), Lease::Wait);
        assert!(matches!(b.lease(3_000, "w3"), Lease::Assigned { .. }));
        assert_eq!(b.shards()[0].deadline_ms, 3_000 + 4_000);
    }

    #[test]
    fn backoff_is_capped() {
        let mut b = board(1);
        let mut now = 0;
        for _ in 0..10 {
            match b.lease(now, "w") {
                Lease::Assigned { .. } => now = b.shards()[0].deadline_ms,
                other => panic!("expected assignment, got {other:?}"),
            }
        }
        // Attempts ≥ 5 all get base × 2⁴.
        let lease = b.shards()[0].deadline_ms - (now - 16_000);
        assert_eq!(lease, 16_000);
    }

    #[test]
    fn duplicate_uploads_and_cache_hits_are_idempotent() {
        let mut b = board(2);
        assert!(b.mark_cached(0));
        assert!(!b.mark_cached(0), "second cache mark is a no-op");
        assert_eq!(b.shards()[0].source, ShardSource::Cache);
        assert!(matches!(
            b.lease(0, "w"),
            Lease::Assigned {
                index: 1,
                reassigned: false
            }
        ));
        assert!(b.mark_uploaded(1, Some("w")));
        assert!(!b.mark_uploaded(1, Some("late")), "duplicate upload");
        assert_eq!(b.shards()[1].worker.as_deref(), Some("w"));
        assert!(b.all_uploaded());
        b.mark_merged();
        assert_eq!(b.phase_counts(), (0, 0, 0, 2));
        assert!(!b.mark_uploaded(1, Some("very-late")));
        assert_eq!(b.lease(0, "w"), Lease::Complete);
    }

    #[test]
    fn key_lookup_and_counts() {
        let mut b = board(3);
        assert_eq!(b.index_of_key(&format!("{:016x}", 1)), Some(1));
        assert_eq!(b.index_of_key("no-such-key"), None);
        assert_eq!(b.phase_counts(), (3, 0, 0, 0));
        let _ = b.lease(0, "w");
        assert!(b.mark_uploaded(0, Some("w")));
        assert_eq!(b.phase_counts(), (2, 0, 1, 0));
    }
}
