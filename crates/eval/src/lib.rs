//! Prediction tasks, metrics, baselines and experiment drivers for the
//! PIGEON reproduction.
//!
//! This crate wires the substrates together into the paper's evaluation
//! (§5): it generates corpora (`pigeon-corpus`), parses them with the
//! language frontends, extracts a chosen **representation** of element
//! relations — AST paths or one of the paper's baselines — feeds either
//! learner (`pigeon-crf`, `pigeon-word2vec`), and scores predictions with
//! the paper's metrics. The benchmark harness (`pigeon-bench`) calls the
//! drivers here to regenerate every table and figure.
//!
//! # Example
//!
//! Run a miniature version of the Table 2 JavaScript row:
//!
//! ```no_run
//! use pigeon_corpus::{CorpusConfig, Language};
//! use pigeon_eval::{run_name_experiment, NameExperiment};
//!
//! let exp = NameExperiment {
//!     corpus: CorpusConfig::default().with_files(100),
//!     ..NameExperiment::var_names(Language::JavaScript)
//! };
//! let out = run_name_experiment(&exp);
//! println!("accuracy: {:.1}%", 100.0 * out.accuracy);
//! ```

mod breakdown;
pub mod coordinator;
mod elements;
mod features;
mod graph;
mod metrics;
pub mod partial;
mod split;
mod sweeps;
mod tasks;
mod tune;
mod w2v;

pub use breakdown::{role_breakdown, RoleScore};
pub use elements::{classify_elements, find_initializer, Element, ElementClass};
pub use features::{
    extract_edge_features, extract_node_features, EdgeFeature, NodeFeature, Representation,
};
pub use graph::{
    add_semi_paths, add_semi_paths_lookup, build_name_graph, build_name_graph_lookup,
    build_type_graph, build_type_graph_lookup, DocGraph, Vocabs,
};
pub use metrics::{exact_match, normalize_name, subtoken_prf, subtokens, Scoreboard};
pub use partial::{
    decode_partial, encode_partial, is_partial, merge_partials, shard_range, verify_doc_stats,
    DocPartial, MergedTraining, PartialMeta, TrainPartial,
};
// The worker pool lives in `pigeon-core` (so `pigeon-crf` can share it);
// re-exported here because every experiment driver fans out over it.
pub use pigeon_core::{effective_jobs, parallel_map_indexed};
pub use split::split_dedup;
pub use sweeps::{
    abstraction_sweep, downsample_sweep, length_width_sweep, AbstractionPoint, DownsamplePoint,
    LengthWidthCell,
};
pub use tasks::{
    naive_string_type_accuracy, rule_based_java_vars, run_name_experiment, run_type_experiment,
    DataflowExtractor, NameExperiment, TaskOutcome, TypeExperiment,
};
pub use tune::{tune_and_run, tune_parameters, TuneResult};
pub use w2v::{run_w2v_experiment, train_w2v, W2vBundle, W2vContext, W2vExperiment};
