//! Partial training-statistics files (`.pgnc`, container kind
//! `partial`) and their deterministic merge — the scale-out half of
//! `pigeon train --shard i/n` / `pigeon merge`.
//!
//! A shard worker extracts its 1/n slice of the corpus and stores, per
//! document: the document's **local vocabularies** (label and feature
//! strings in first-intern order), its CRF instance in doc-local ids,
//! and its [`RawStatistics`] in the doc-local label space. Merging
//! replays each document's vocabulary in global document order, which
//! reproduces the single-process interner state exactly: in training
//! mode the graph builder's intern sequence depends only on the
//! document itself, so a document's first-touch list interned in order
//! yields the same global ids the single pass would have assigned.
//! Instances and statistics are then remapped and integer-summed, and
//! candidate truncation happens only after the full merge — making
//! `pigeon merge` byte-identical to single-process `pigeon train` for
//! any shard count.
//!
//! The file reuses the `.pgnc` container of [`pigeon_crf::artifact`]
//! (magic, versioned checksummed section table, kind tag
//! [`artifact::KIND_PARTIAL`]); decoding trusts nothing and never
//! panics on truncated or bit-flipped input.

use pigeon_crf::artifact::{
    self, decode_strings, decode_u32s, decode_u64s, encode_strings, encode_u32s, encode_u64s,
    kind_name, Quant, Reader, Writer, KIND_PARTIAL, SEC_PT_DOCS, SEC_PT_META,
};
use pigeon_crf::{CrfConfig, Instance, Node, PairFactor, RawStatistics, UnaryFactor};
use pigeon_telemetry as telemetry;
use std::collections::HashMap;
use std::time::Instant;

use crate::graph::Vocabs;

/// The extraction + training configuration a partial was built under,
/// plus its shard coordinates. Merging refuses partials whose
/// configuration knobs differ — mixed-config statistics would be
/// silently wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialMeta {
    /// Language name (`Language::name`).
    pub language: String,
    /// Prediction target (`"variables"` / `"methods"` / `"other"`).
    pub target: String,
    /// Path abstraction name (`Abstraction::name`).
    pub abstraction: String,
    /// Extraction limit: maximum path length.
    pub max_length: u32,
    /// Extraction limit: maximum path width.
    pub max_width: u32,
    /// Whether semi-paths were extracted.
    pub semi_paths: bool,
    /// Whether edge-typed data-flow path-contexts were extracted.
    /// Encoded as a 17th numeric field **only when set**, so partials
    /// written with the knob off stay byte-identical to pre-knob files.
    pub dataflow_contexts: bool,
    /// Candidates per prediction (carried into the merged model file).
    pub top_k: u32,
    /// Path-context keep probability (per-document derived seeds make
    /// this reproducible across any sharding).
    pub keep_prob: f64,
    /// CRF hyper-parameters. `jobs` is ignored (and stored as zero):
    /// the model is invariant to it.
    pub crf: CrfConfig,
    /// This shard's index, `0..shard_count`.
    pub shard_index: u32,
    /// Total number of shards in the run.
    pub shard_count: u32,
    /// Total documents across all shards.
    pub total_docs: u32,
}

/// One document's contribution to training: its local vocabularies (in
/// first-intern order — the replay key), its instance in doc-local
/// ids, and its statistics in the doc-local label space. The
/// statistics are redundant with the instance (merge could recompute
/// them) but storing them lets `pigeon audit` cross-check a partial's
/// count maps and lets merge sum integers instead of re-walking
/// factors.
#[derive(Debug, Clone)]
pub struct DocPartial {
    /// Position of this document in the full corpus.
    pub global_index: u32,
    /// Doc-local label vocabulary, first-intern order.
    pub labels: Vec<String>,
    /// Doc-local feature vocabulary, first-intern order.
    pub features: Vec<String>,
    /// The document's CRF instance, ids into the local vocabularies.
    pub instance: Instance,
    /// `RawStatistics` of `[instance]` over the local label space.
    pub stats: RawStatistics,
}

/// A decoded partial file: shard metadata plus its documents.
#[derive(Debug, Clone)]
pub struct TrainPartial {
    /// Configuration fingerprint and shard coordinates.
    pub meta: PartialMeta,
    /// This shard's documents, in global-index order.
    pub docs: Vec<DocPartial>,
}

/// The output of [`merge_partials`]: the reassembled single-process
/// training inputs.
#[derive(Debug)]
pub struct MergedTraining {
    /// The shared configuration (shard coordinates are shard 0's).
    pub meta: PartialMeta,
    /// Global vocabularies, identical to a single-process build.
    pub vocabs: Vocabs,
    /// All instances in global ids, corpus order.
    pub instances: Vec<Instance>,
    /// Summed statistics over the global label space.
    pub stats: RawStatistics,
}

/// Registers the shard-merge metric family on the current telemetry
/// sink, so rendered families are stable whether or not a merge ran.
pub fn register_metrics() {
    telemetry::describe(
        "pigeon_shard_merge_micros",
        "Time to merge partial statistics files into training inputs, microseconds",
    );
    telemetry::histogram("pigeon_shard_merge_micros", &[], telemetry::PHASE_BOUNDS);
}

/// The deterministic contiguous 1/`count` slice of `total` documents
/// assigned to shard `index` — the same `div_ceil` chunking the CRF
/// statistics pass uses, so shard boundaries never depend on worker
/// scheduling.
///
/// # Panics
///
/// Panics when `count` is zero or `index >= count`.
pub fn shard_range(total: usize, index: usize, count: usize) -> std::ops::Range<usize> {
    assert!(count > 0, "shard count must be at least 1");
    assert!(index < count, "shard index {index} out of range {count}");
    let chunk = total.div_ceil(count).max(1);
    let start = (index * chunk).min(total);
    let end = (start + chunk).min(total);
    start..end
}

/// `true` when `bytes` is a `.pgnc` container of partial kind (the
/// dispatch sniff; full validation is [`decode_partial`]).
pub fn is_partial(bytes: &[u8]) -> bool {
    artifact::container_kind(bytes) == Some(KIND_PARTIAL)
}

/// Number of `u64` numeric fields trailing the meta string table in the
/// original layout; one more (data-flow contexts) is appended only when
/// that flag is set.
const META_NUMS: usize = 16;

/// Serialises a partial. Byte-stable: documents are written in order
/// and suggestion maps in sorted key order.
pub fn encode_partial(partial: &TrainPartial) -> Vec<u8> {
    let m = &partial.meta;
    let mut meta = encode_strings([
        m.language.as_str(),
        m.target.as_str(),
        m.abstraction.as_str(),
    ]);
    let mut nums = vec![
        u64::from(m.max_length),
        u64::from(m.max_width),
        u64::from(m.semi_paths),
        u64::from(m.top_k),
        m.keep_prob.to_bits(),
        m.crf.epochs as u64,
        u64::from(m.crf.learning_rate.to_bits()),
        m.crf.max_passes as u64,
        m.crf.max_candidates as u64,
        m.crf.global_candidates as u64,
        m.crf.suggestions_per_key as u64,
        u64::from(m.crf.use_unary),
        m.crf.seed,
        u64::from(m.shard_index),
        u64::from(m.shard_count),
        u64::from(m.total_docs),
    ];
    if m.dataflow_contexts {
        nums.push(1);
    }
    meta.extend_from_slice(&encode_u64s(&nums));

    let mut docs = encode_u32s(&[partial.docs.len() as u32]);
    for doc in &partial.docs {
        docs.extend_from_slice(&doc.global_index.to_le_bytes());
        docs.extend_from_slice(&encode_strings(doc.labels.iter().map(String::as_str)));
        docs.extend_from_slice(&encode_strings(doc.features.iter().map(String::as_str)));
        let inst = &doc.instance;
        docs.extend_from_slice(&(inst.nodes.len() as u32).to_le_bytes());
        for node in &inst.nodes {
            docs.extend_from_slice(&node.label.to_le_bytes());
            docs.extend_from_slice(&u32::from(node.known).to_le_bytes());
        }
        docs.extend_from_slice(&(inst.pairwise.len() as u32).to_le_bytes());
        for pf in &inst.pairwise {
            docs.extend_from_slice(&(pf.a as u32).to_le_bytes());
            docs.extend_from_slice(&(pf.b as u32).to_le_bytes());
            docs.extend_from_slice(&pf.path.to_le_bytes());
        }
        docs.extend_from_slice(&(inst.unary.len() as u32).to_le_bytes());
        for uf in &inst.unary {
            docs.extend_from_slice(&(uf.node as u32).to_le_bytes());
            docs.extend_from_slice(&uf.path.to_le_bytes());
        }
        docs.extend_from_slice(&(doc.stats.counts.len() as u32).to_le_bytes());
        docs.extend_from_slice(&encode_u32s(&doc.stats.counts));
        let mut suggestions: Vec<(u32, u32, u8, u32, u32)> = doc
            .stats
            .suggestions
            .iter()
            .flat_map(|(&(path, other, side), by_label)| {
                by_label
                    .iter()
                    .map(move |(&label, &count)| (path, other, side, label, count))
            })
            .collect();
        suggestions.sort_unstable();
        docs.extend_from_slice(&(suggestions.len() as u32).to_le_bytes());
        for (path, other, side, label, count) in suggestions {
            docs.extend_from_slice(&encode_u32s(&[path, other, u32::from(side), label, count]));
        }
    }

    let mut w = Writer::new();
    w.section(SEC_PT_META, meta);
    w.section(SEC_PT_DOCS, docs);
    w.finish_kind(Quant::F32, KIND_PARTIAL)
}

/// A bounds-checked little-endian cursor over the docs section.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.rest.len() < n {
            return Err(format!("pt-docs is truncated reading {what}"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let c = self.take(4, what)?;
        Ok(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// A `u32` count bounded so a corrupted value cannot drive a
    /// pathological allocation: each counted record consumes at least
    /// `min_record` bytes of the remainder.
    fn count(&mut self, min_record: usize, what: &str) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        if n > self.rest.len() / min_record.max(1) {
            return Err(format!(
                "pt-docs claims {n} {what}, more than the file holds"
            ));
        }
        Ok(n)
    }

    fn strings(&mut self, what: &str) -> Result<Vec<String>, String> {
        let (strings, rest) = decode_strings(self.rest, what)?;
        self.rest = rest;
        Ok(strings)
    }
}

/// Decodes and fully validates a partial file.
///
/// # Errors
///
/// A message naming the first problem found — container level
/// (magic/version/bounds/checksums), wrong kind, malformed section, or
/// inconsistent content (ids out of range, duplicate vocabulary
/// entries, self-loop factors). Never panics on arbitrary input.
pub fn decode_partial(bytes: &[u8]) -> Result<TrainPartial, String> {
    let r = Reader::parse(bytes)?;
    if r.kind() != KIND_PARTIAL {
        return Err(format!(
            "container holds a {} (kind {}), not a partial statistics file",
            kind_name(r.kind()),
            r.kind()
        ));
    }

    let (meta_strings, meta_rest) = decode_strings(r.section(SEC_PT_META)?, "pt-meta")?;
    let [language, target, abstraction]: [String; 3] = meta_strings
        .try_into()
        .map_err(|_| "pt-meta must hold exactly 3 strings".to_string())?;
    let mut nums = decode_u64s(meta_rest, "pt-meta")?;
    let dataflow_contexts = match nums.len() {
        META_NUMS => 0,
        n if n == META_NUMS + 1 => nums.pop().expect("length checked"),
        n => {
            return Err(format!(
                "pt-meta must hold {META_NUMS} or {} numeric fields, got {n}",
                META_NUMS + 1
            ))
        }
    };
    let nums: [u64; META_NUMS] = nums.try_into().expect("length checked above");
    let [max_length, max_width, semi_paths, top_k, keep_prob_bits, epochs, lr_bits, max_passes, max_candidates, global_candidates, suggestions_per_key, use_unary, seed, shard_index, shard_count, total_docs] =
        nums;
    let as_u32 = |v: u64, what: &str| {
        u32::try_from(v).map_err(|_| format!("pt-meta {what} {v} overflows u32"))
    };
    for (flag, what) in [
        (semi_paths, "semi_paths"),
        (use_unary, "use_unary"),
        (dataflow_contexts, "dataflow_contexts"),
    ] {
        if flag > 1 {
            return Err(format!("pt-meta {what} flag is {flag}, expected 0 or 1"));
        }
    }
    let keep_prob = f64::from_bits(keep_prob_bits);
    if !(keep_prob > 0.0 && keep_prob <= 1.0) {
        return Err(format!("pt-meta keep_prob {keep_prob} outside (0, 1]"));
    }
    let learning_rate = f32::from_bits(
        u32::try_from(lr_bits).map_err(|_| "pt-meta learning rate overflows f32".to_owned())?,
    );
    if !learning_rate.is_finite() {
        return Err("pt-meta learning rate is not finite".into());
    }
    let shard_index = as_u32(shard_index, "shard_index")?;
    let shard_count = as_u32(shard_count, "shard_count")?;
    let total_docs = as_u32(total_docs, "total_docs")?;
    if shard_count == 0 || shard_index >= shard_count {
        return Err(format!(
            "pt-meta shard index {shard_index} out of range {shard_count}"
        ));
    }
    let meta = PartialMeta {
        language,
        target,
        abstraction,
        max_length: as_u32(max_length, "max_length")?,
        max_width: as_u32(max_width, "max_width")?,
        semi_paths: semi_paths == 1,
        dataflow_contexts: dataflow_contexts == 1,
        top_k: as_u32(top_k, "top_k")?,
        keep_prob,
        crf: CrfConfig {
            epochs: epochs as usize,
            learning_rate,
            max_passes: max_passes as usize,
            max_candidates: max_candidates as usize,
            global_candidates: global_candidates as usize,
            suggestions_per_key: suggestions_per_key as usize,
            use_unary: use_unary == 1,
            seed,
            jobs: 0,
        },
        shard_index,
        shard_count,
        total_docs,
    };

    let mut cur = Cursor {
        rest: r.section(SEC_PT_DOCS)?,
    };
    let n_docs = cur.count(4, "documents")?;
    let mut docs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let global_index = cur.u32("global index")?;
        if global_index >= total_docs {
            return Err(format!(
                "pt-docs document index {global_index} out of range {total_docs}"
            ));
        }
        let labels = cur.strings("pt-docs labels")?;
        let features = cur.strings("pt-docs features")?;
        for (what, table) in [("label", &labels), ("feature", &features)] {
            let mut seen = std::collections::HashSet::new();
            if !table.iter().all(|s| seen.insert(s.as_str())) {
                return Err(format!(
                    "pt-docs document {global_index} has a duplicate {what} entry"
                ));
            }
        }
        let n_labels = labels.len() as u32;
        let n_features = features.len() as u32;

        let n_nodes = cur.count(8, "nodes")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let label = cur.u32("node label")?;
            let known = cur.u32("node flag")?;
            if label >= n_labels {
                return Err(format!(
                    "pt-docs node label {label} out of range {n_labels}"
                ));
            }
            if known > 1 {
                return Err(format!("pt-docs node flag is {known}, expected 0 or 1"));
            }
            nodes.push(Node {
                label,
                known: known == 1,
            });
        }
        let n_pairs = cur.count(12, "pair factors")?;
        let mut pairwise = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            let a = cur.u32("pair endpoint")? as usize;
            let b = cur.u32("pair endpoint")? as usize;
            let path = cur.u32("pair path")?;
            if a >= n_nodes || b >= n_nodes || a == b || path >= n_features {
                return Err(format!(
                    "pt-docs pair factor ({a}, {b}, path {path}) is out of range"
                ));
            }
            pairwise.push(PairFactor { a, b, path });
        }
        let n_unary = cur.count(8, "unary factors")?;
        let mut unary = Vec::with_capacity(n_unary);
        for _ in 0..n_unary {
            let node = cur.u32("unary node")? as usize;
            let path = cur.u32("unary path")?;
            if node >= n_nodes || path >= n_features {
                return Err(format!(
                    "pt-docs unary factor (node {node}, path {path}) is out of range"
                ));
            }
            unary.push(UnaryFactor { node, path });
        }

        let n_counts = cur.count(4, "label counts")?;
        if n_counts as u32 != n_labels {
            return Err(format!(
                "pt-docs document {global_index} has {n_counts} counts for {n_labels} labels"
            ));
        }
        let counts = decode_u32s(cur.take(n_counts * 4, "label counts")?, "pt-docs counts")?;
        let n_sugg = cur.count(20, "suggestions")?;
        let mut suggestions: HashMap<(u32, u32, u8), HashMap<u32, u32>> = HashMap::new();
        let mut prev: Option<(u32, u32, u8, u32)> = None;
        for _ in 0..n_sugg {
            let path = cur.u32("suggestion path")?;
            let other = cur.u32("suggestion other-label")?;
            let side = cur.u32("suggestion side")?;
            let label = cur.u32("suggestion label")?;
            let count = cur.u32("suggestion count")?;
            if path >= n_features || other >= n_labels || label >= n_labels || side > 1 {
                return Err(format!(
                    "pt-docs suggestion (path {path}, other {other}, side {side}, \
                     label {label}) is out of range"
                ));
            }
            let side = side as u8;
            if let Some(p) = prev {
                if p >= (path, other, side, label) {
                    return Err("pt-docs suggestions are not strictly sorted".into());
                }
            }
            prev = Some((path, other, side, label));
            suggestions
                .entry((path, other, side))
                .or_default()
                .insert(label, count);
        }

        docs.push(DocPartial {
            global_index,
            labels,
            features,
            instance: Instance {
                nodes,
                pairwise,
                unary,
            },
            stats: RawStatistics {
                counts,
                suggestions,
            },
        });
    }
    if !cur.rest.is_empty() {
        return Err("pt-docs has trailing bytes".into());
    }
    Ok(TrainPartial { meta, docs })
}

/// Cross-checks a document's stored statistics against its instance —
/// the count-map sanity lint `pigeon audit` runs on partials.
///
/// # Errors
///
/// A message naming the first mismatch.
pub fn verify_doc_stats(doc: &DocPartial) -> Result<(), String> {
    let expected =
        RawStatistics::collect(std::slice::from_ref(&doc.instance), doc.labels.len() as u32);
    if expected.counts != doc.stats.counts {
        return Err(format!(
            "document {}: stored label counts do not match its instance",
            doc.global_index
        ));
    }
    if expected.suggestions != doc.stats.suggestions {
        return Err(format!(
            "document {}: stored suggestion counts do not match its instance",
            doc.global_index
        ));
    }
    Ok(())
}

/// The configuration knobs [`merge_partials`] requires to agree, with
/// accessors for error messages. Public so the distributed-training
/// ingest path can validate an uploaded partial against a job's
/// expected configuration and name the offending knob in its 400.
pub fn config_knobs(m: &PartialMeta) -> [(&'static str, String); 14] {
    [
        ("language", m.language.clone()),
        ("target", m.target.clone()),
        ("abstraction", m.abstraction.clone()),
        ("max_length", m.max_length.to_string()),
        ("max_width", m.max_width.to_string()),
        ("semi_paths", m.semi_paths.to_string()),
        ("dataflow_contexts", m.dataflow_contexts.to_string()),
        ("keep_prob", format!("{}", m.keep_prob)),
        ("crf.epochs", m.crf.epochs.to_string()),
        ("crf.learning_rate", format!("{}", m.crf.learning_rate)),
        ("crf.max_passes", m.crf.max_passes.to_string()),
        ("crf.max_candidates", m.crf.max_candidates.to_string()),
        ("crf.use_unary", m.crf.use_unary.to_string()),
        ("crf.seed", format!("{:#x}", m.crf.seed)),
    ]
}

/// Merges decoded partials back into single-process training inputs:
/// validates configuration equality and shard coverage, replays each
/// document's local vocabulary in global order, remaps instances, and
/// integer-sums the statistics.
///
/// # Errors
///
/// Partials built under different configurations (the message names
/// the differing knob), an incomplete or overlapping shard set, or
/// document indices that do not cover `0..total_docs` exactly once.
pub fn merge_partials(partials: &[TrainPartial]) -> Result<MergedTraining, String> {
    let start = Instant::now();
    register_metrics();
    let _span = telemetry::span("shard_merge");
    let first = partials
        .first()
        .ok_or_else(|| "no partials to merge".to_owned())?;

    // Every configuration knob must agree; name the first that differs.
    let reference = config_knobs(&first.meta);
    for p in &partials[1..] {
        for ((knob, a), (_, b)) in reference.iter().zip(config_knobs(&p.meta)) {
            if *a != b {
                return Err(format!(
                    "partials disagree on {knob}: shard {} has {a}, shard {} has {b}",
                    first.meta.shard_index, p.meta.shard_index
                ));
            }
        }
        // Remaining CRF knobs shape the merged model too.
        if p.meta.crf.global_candidates != first.meta.crf.global_candidates {
            return Err(format!(
                "partials disagree on crf.global_candidates: shard {} has {}, shard {} has {}",
                first.meta.shard_index,
                first.meta.crf.global_candidates,
                p.meta.shard_index,
                p.meta.crf.global_candidates
            ));
        }
        if p.meta.crf.suggestions_per_key != first.meta.crf.suggestions_per_key {
            return Err(format!(
                "partials disagree on crf.suggestions_per_key: shard {} has {}, shard {} has {}",
                first.meta.shard_index,
                first.meta.crf.suggestions_per_key,
                p.meta.shard_index,
                p.meta.crf.suggestions_per_key
            ));
        }
        if p.meta.top_k != first.meta.top_k {
            return Err(format!(
                "partials disagree on top_k: shard {} has {}, shard {} has {}",
                first.meta.shard_index, first.meta.top_k, p.meta.shard_index, p.meta.top_k
            ));
        }
        if p.meta.shard_count != first.meta.shard_count {
            return Err(format!(
                "partials disagree on shard count: {} vs {}",
                first.meta.shard_count, p.meta.shard_count
            ));
        }
        if p.meta.total_docs != first.meta.total_docs {
            return Err(format!(
                "partials disagree on total document count: {} vs {}",
                first.meta.total_docs, p.meta.total_docs
            ));
        }
    }

    // Shard coverage: exactly the set {0, …, shard_count-1}.
    let shard_count = first.meta.shard_count as usize;
    let mut seen_shards = vec![false; shard_count];
    for p in partials {
        let i = p.meta.shard_index as usize;
        if std::mem::replace(&mut seen_shards[i], true) {
            return Err(format!("shard {i} appears twice in the merge set"));
        }
    }
    if let Some(missing) = seen_shards.iter().position(|&s| !s) {
        return Err(format!(
            "shard {missing} of {shard_count} is missing from the merge set"
        ));
    }

    // Document coverage: exactly 0..total_docs, each once.
    let total = first.meta.total_docs as usize;
    let mut by_index: Vec<Option<&DocPartial>> = vec![None; total];
    for p in partials {
        for doc in &p.docs {
            let slot = &mut by_index[doc.global_index as usize];
            if slot.is_some() {
                return Err(format!(
                    "document {} appears in more than one partial",
                    doc.global_index
                ));
            }
            *slot = Some(doc);
        }
    }
    if let Some(missing) = by_index.iter().position(Option::is_none) {
        return Err(format!(
            "document {missing} of {total} is missing from the merge set"
        ));
    }

    // Replay: interning each document's first-touch vocabulary in
    // global order reproduces the single-process interner state.
    let mut vocabs = Vocabs::new();
    let mut instances = Vec::with_capacity(total);
    let mut counts: Vec<u32> = Vec::new();
    let mut suggestions: HashMap<(u32, u32, u8), HashMap<u32, u32>> = HashMap::new();
    for doc in by_index.into_iter().map(|d| d.expect("coverage checked")) {
        let label_map: Vec<u32> = doc
            .labels
            .iter()
            .map(|s| vocabs.labels.intern(s.clone()))
            .collect();
        let feature_map: Vec<u32> = doc
            .features
            .iter()
            .map(|s| vocabs.features.intern(s.clone()))
            .collect();
        instances.push(Instance {
            nodes: doc
                .instance
                .nodes
                .iter()
                .map(|n| Node {
                    label: label_map[n.label as usize],
                    known: n.known,
                })
                .collect(),
            pairwise: doc
                .instance
                .pairwise
                .iter()
                .map(|pf| PairFactor {
                    a: pf.a,
                    b: pf.b,
                    path: feature_map[pf.path as usize],
                })
                .collect(),
            unary: doc
                .instance
                .unary
                .iter()
                .map(|uf| UnaryFactor {
                    node: uf.node,
                    path: feature_map[uf.path as usize],
                })
                .collect(),
        });
        if counts.len() < vocabs.labels.len() {
            counts.resize(vocabs.labels.len(), 0);
        }
        for (local, &c) in doc.stats.counts.iter().enumerate() {
            counts[label_map[local] as usize] += c;
        }
        for (&(path, other, side), by_label) in &doc.stats.suggestions {
            let key = (feature_map[path as usize], label_map[other as usize], side);
            let slot = suggestions.entry(key).or_default();
            for (&label, &c) in by_label {
                *slot.entry(label_map[label as usize]).or_insert(0) += c;
            }
        }
    }
    counts.resize(vocabs.labels.len(), 0);

    telemetry::observe(
        "pigeon_shard_merge_micros",
        &[],
        start.elapsed().as_micros() as u64,
    );
    Ok(MergedTraining {
        meta: first.meta.clone(),
        vocabs,
        instances,
        stats: RawStatistics {
            counts,
            suggestions,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> PartialMeta {
        PartialMeta {
            language: "JavaScript".into(),
            target: "variables".into(),
            abstraction: "full".into(),
            max_length: 4,
            max_width: 3,
            semi_paths: false,
            dataflow_contexts: false,
            top_k: 8,
            keep_prob: 1.0,
            crf: CrfConfig {
                jobs: 0,
                ..CrfConfig::default()
            },
            shard_index: 0,
            shard_count: 1,
            total_docs: 2,
        }
    }

    fn sample_doc(global_index: u32) -> DocPartial {
        let mut instance = Instance::new(vec![Node::unknown(0), Node::known(1)]);
        instance.add_pair(0, 1, 0);
        instance.add_unary(0, 1);
        let stats = RawStatistics::collect(std::slice::from_ref(&instance), 2);
        DocPartial {
            global_index,
            labels: vec![format!("var{global_index}"), "known".into()],
            features: vec!["p0".into(), "p1".into()],
            instance,
            stats,
        }
    }

    #[test]
    fn round_trip_is_exact_and_byte_stable() {
        let partial = TrainPartial {
            meta: sample_meta(),
            docs: vec![sample_doc(0), sample_doc(1)],
        };
        let bytes = encode_partial(&partial);
        assert!(is_partial(&bytes));
        let back = decode_partial(&bytes).unwrap();
        assert_eq!(back.meta, partial.meta);
        assert_eq!(back.docs.len(), 2);
        assert_eq!(back.docs[0].labels, partial.docs[0].labels);
        assert_eq!(encode_partial(&back), bytes);
        for doc in &back.docs {
            verify_doc_stats(doc).unwrap();
        }
    }

    #[test]
    fn dataflow_flag_roundtrips_and_knob_off_layout_is_unchanged() {
        let on = TrainPartial {
            meta: PartialMeta {
                dataflow_contexts: true,
                ..sample_meta()
            },
            docs: vec![sample_doc(0), sample_doc(1)],
        };
        let bytes = encode_partial(&on);
        let back = decode_partial(&bytes).unwrap();
        assert!(back.meta.dataflow_contexts);
        assert_eq!(encode_partial(&back), bytes);

        // With the knob off the extra field is absent entirely, so the
        // encoding matches what pre-knob writers produced.
        let off = TrainPartial {
            meta: sample_meta(),
            docs: vec![sample_doc(0), sample_doc(1)],
        };
        let off_bytes = encode_partial(&off);
        assert!(off_bytes.len() < bytes.len());
        assert!(!decode_partial(&off_bytes).unwrap().meta.dataflow_contexts);
    }

    #[test]
    fn merge_rejects_mismatched_configs_naming_the_knob() {
        let a = TrainPartial {
            meta: PartialMeta {
                shard_count: 2,
                ..sample_meta()
            },
            docs: vec![sample_doc(0)],
        };
        let b = TrainPartial {
            meta: PartialMeta {
                shard_index: 1,
                shard_count: 2,
                max_length: 7,
                ..sample_meta()
            },
            docs: vec![sample_doc(1)],
        };
        let err = merge_partials(&[a, b]).unwrap_err();
        assert!(
            err.contains("max_length"),
            "error must name the knob: {err}"
        );
        assert!(err.contains('4') && err.contains('7'), "values: {err}");
    }

    #[test]
    fn merge_rejects_missing_and_duplicate_shards() {
        let shard = |index: u32| TrainPartial {
            meta: PartialMeta {
                shard_index: index,
                shard_count: 2,
                ..sample_meta()
            },
            docs: vec![sample_doc(index)],
        };
        let err = merge_partials(&[shard(0)]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let err = merge_partials(&[shard(0), shard(0)]).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn merge_rejects_document_gaps() {
        let partial = TrainPartial {
            meta: sample_meta(),
            docs: vec![sample_doc(0), sample_doc(0)],
        };
        let err = merge_partials(&[partial]).unwrap_err();
        assert!(err.contains("more than one"), "{err}");
    }

    #[test]
    fn corruption_is_a_coded_error_never_a_panic() {
        let bytes = encode_partial(&TrainPartial {
            meta: sample_meta(),
            docs: vec![sample_doc(0), sample_doc(1)],
        });
        for len in [0, 3, 16, 31, 32, 63, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_partial(&bytes[..len]).is_err(), "len {len}");
        }
        for i in (0..bytes.len()).step_by(5) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(decode_partial(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn shard_range_partitions_exactly() {
        for total in [0usize, 1, 5, 16, 17, 100] {
            for count in [1usize, 2, 4, 7] {
                let mut covered = Vec::new();
                for i in 0..count {
                    covered.extend(shard_range(total, i, count));
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>());
            }
        }
    }
}
