//! End-to-end experiment drivers for the three prediction tasks of §5.3:
//! variable names, method names, and full types.

use crate::elements::{classify_elements, ElementClass};
use crate::features::{extract_edge_features, extract_node_features, Representation};
use crate::graph::{
    add_semi_paths, add_semi_paths_lookup, build_name_graph, build_name_graph_lookup,
    build_type_graph, build_type_graph_lookup, Vocabs,
};
use crate::metrics::Scoreboard;
use pigeon_ast::{Ast, NodeId};
use pigeon_core::parallel_map_indexed;
use pigeon_core::{downsample, Abstraction, ExtractionConfig};
use pigeon_corpus::{generate, generate_java_types, Corpus, CorpusConfig, Language};
use pigeon_crf::{train as train_crf, CrfConfig, Instance};
use pigeon_telemetry as telemetry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration of one CRF experiment on a name-prediction task.
#[derive(Debug, Clone)]
pub struct NameExperiment {
    /// Evaluation language.
    pub language: Language,
    /// Which elements are stripped and predicted.
    pub target: ElementClass,
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Input representation (AST paths or a baseline).
    pub representation: Representation,
    /// Path length/width limits.
    pub extraction: ExtractionConfig,
    /// CRF training parameters.
    pub crf: CrfConfig,
    /// Training-time path-context keep probability (§5.5, Fig. 11).
    pub keep_prob: f64,
    /// Fraction of documents used for training (the rest is test).
    pub train_frac: f64,
    /// Candidates reported for top-k accuracy.
    pub top_k: usize,
    /// Worker threads for per-document parse + extraction; `1` is fully
    /// serial, `0` uses all available cores. Results are merged in
    /// document order, so the trained model is identical for any value.
    pub jobs: usize,
    /// Optional extra edge-feature extractor whose triples are appended
    /// after the base representation's. The facade injects edge-typed
    /// data-flow path-contexts through this hook — this crate cannot
    /// depend on the analysis crate that computes the flow edges, so
    /// the composed extractor arrives from above. A plain function
    /// pointer (not a boxed closure) keeps the config `Clone` + `Debug`.
    pub dataflow: Option<DataflowExtractor>,
}

/// Signature of the [`NameExperiment::dataflow`] hook: language, tree,
/// the experiment's extraction limits, and the path abstraction to
/// render features under.
pub type DataflowExtractor =
    fn(Language, &Ast, &ExtractionConfig, Abstraction) -> Vec<crate::features::EdgeFeature>;

impl NameExperiment {
    /// The best variable-name configuration per language, tuned on a
    /// validation split the way the paper tunes its Table 2 parameters.
    /// The paper's optima are 7/3, 6/3, 7/4, 7/4 on GB-scale corpora; on
    /// our smaller synthetic corpora the same bias–variance trade-off
    /// (§4.2 of the paper) moves the optimum to shorter paths.
    pub fn var_names(language: Language) -> Self {
        let (len, width) = match language {
            Language::JavaScript => (3, 3),
            Language::Java => (4, 3),
            Language::Python => (3, 3),
            Language::CSharp => (3, 3),
        };
        NameExperiment {
            language,
            target: ElementClass::Variable,
            corpus: CorpusConfig::default(),
            representation: Representation::AstPaths(Abstraction::Full),
            // Leafwise paths plus semi-paths, as the paper uses for name
            // prediction ("semi-paths provide more generalization", §5).
            extraction: ExtractionConfig::with_limits(len, width).semi_paths(true),
            crf: CrfConfig::default(),
            keep_prob: 1.0,
            train_frac: 0.8,
            top_k: 5,
            jobs: 1,
            dataflow: None,
        }
    }

    /// The best method-name configuration per language (tuned as above;
    /// the paper's Table 2 uses lengths 12/6/10 at its corpus scale).
    /// Method names see the whole body, so the optimum is longer than for
    /// variables — the same ordering the paper reports.
    pub fn method_names(language: Language) -> Self {
        let (len, width) = match language {
            Language::JavaScript => (6, 3),
            Language::Java => (8, 3),
            Language::Python => (6, 3),
            Language::CSharp => (6, 3),
        };
        NameExperiment {
            target: ElementClass::Method,
            extraction: ExtractionConfig::with_limits(len, width),
            ..NameExperiment::var_names(language)
        }
    }

    /// Same experiment with a different representation.
    pub fn with_representation(mut self, rep: Representation) -> Self {
        self.representation = rep;
        self
    }

    /// Same experiment with a different corpus size.
    pub fn with_files(mut self, files: usize) -> Self {
        self.corpus = self.corpus.with_files(files);
        self
    }

    /// Same experiment with extra data-flow edge features appended to
    /// every document's triples.
    pub fn with_dataflow(mut self, extractor: DataflowExtractor) -> Self {
        self.dataflow = Some(extractor);
        self
    }
}

/// Aggregate result of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct TaskOutcome {
    /// Normalised exact-match accuracy on the test split.
    pub accuracy: f64,
    /// Top-k accuracy (k from the experiment config).
    pub topk_accuracy: f64,
    /// Mean sub-token F1.
    pub f1: f64,
    /// Number of predictions scored.
    pub n_test: usize,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
    /// Distinct relation features in the vocabulary after training.
    pub n_features: usize,
    /// Distinct labels after training.
    pub n_labels: usize,
    /// Fraction of test golds that were out of vocabulary (§5.3 reports
    /// 5–15% across the paper's datasets).
    pub oov_rate: f64,
}

/// Parses every document across `jobs` workers; pairs come back in
/// document order.
fn parse_corpus_jobs(corpus: &Corpus, jobs: usize) -> Vec<(Ast, &pigeon_corpus::Document)> {
    let _phase = telemetry::span("parse_extract");
    parallel_map_indexed(&corpus.docs, jobs, |_, doc| {
        corpus
            .language
            .parse(&doc.source)
            .expect("generated documents parse")
    })
    .into_iter()
    .zip(&corpus.docs)
    .collect()
}

/// Per-document output of the parallel parse + extract stage, produced by
/// workers and consumed in document order by the (sequential, vocabulary-
/// interning) graph-build stage.
struct ExtractedDoc {
    ast: Ast,
    features: Vec<crate::features::EdgeFeature>,
    semis: Option<Vec<crate::features::NodeFeature>>,
}

/// Parses and extracts every document of `corpus` across `jobs` workers.
/// Results come back in document order, so downstream vocabulary
/// interning encounters features in the same order as a serial run.
fn extract_corpus(corpus: &Corpus, exp: &NameExperiment) -> Vec<ExtractedDoc> {
    let _phase = telemetry::span("parse_extract");
    parallel_map_indexed(&corpus.docs, exp.jobs, |_, doc| {
        let ast = corpus
            .language
            .parse(&doc.source)
            .expect("generated documents parse");
        let mut features =
            extract_edge_features(exp.language, &ast, exp.representation, &exp.extraction);
        if let Some(flow) = exp.dataflow {
            // Render flow features under the same abstraction as the
            // base paths; baselines without one fall back to Full.
            let abstraction = match exp.representation {
                Representation::AstPaths(a) => a,
                _ => Abstraction::Full,
            };
            features.extend(flow(exp.language, &ast, &exp.extraction, abstraction));
        }
        let semis = exp
            .extraction
            .semi_paths
            .then(|| extract_node_features(&ast, exp.representation, &exp.extraction));
        ExtractedDoc {
            ast,
            features,
            semis,
        }
    })
}

/// Runs a name-prediction experiment end to end: generate → parse →
/// extract → build graphs → train CRF → score on the held-out split.
///
/// Parsing and extraction fan out over `exp.jobs` workers; downsampling
/// and graph building stay sequential in document order, so the trained
/// model does not depend on the worker count.
pub fn run_name_experiment(exp: &NameExperiment) -> TaskOutcome {
    let _span = telemetry::span("name_experiment");
    let corpus = {
        let _phase = telemetry::span("corpus_generate");
        generate(exp.language, &exp.corpus)
    };
    // Duplicate-safe split: no program crosses into test under a mere
    // renaming (see `split_dedup`).
    let (train_corpus, _, test_corpus) = {
        let _phase = telemetry::span("split_dedup");
        crate::split::split_dedup(corpus, exp.train_frac, 0.0, exp.jobs)
    };
    let mut vocabs = Vocabs::new();
    let mut rng = SmallRng::seed_from_u64(exp.corpus.seed ^ 0xD05A);

    let train_docs = extract_corpus(&train_corpus, exp);
    let mut train_instances: Vec<Instance> = Vec::new();
    {
        let _phase = telemetry::span("graph_build");
        for doc in train_docs {
            let features = downsample(doc.features, exp.keep_prob, &mut rng);
            let mut graph = build_name_graph(
                exp.language,
                &doc.ast,
                exp.target,
                &features,
                &mut vocabs,
                true,
            );
            if let Some(semis) = &doc.semis {
                add_semi_paths(
                    exp.language,
                    &doc.ast,
                    exp.target,
                    &mut graph,
                    semis,
                    &mut vocabs,
                    true,
                );
            }
            train_instances.push(graph.instance);
        }
    }

    let n_labels = vocabs.labels.len() as u32;
    let started = Instant::now();
    let crf_cfg = CrfConfig {
        jobs: exp.jobs,
        ..exp.crf
    };
    let model = train_crf(&train_instances, n_labels, &crf_cfg);
    let train_secs = started.elapsed().as_secs_f64();

    // Held-out scoring fans out per document: graph building is
    // lookup-only against the frozen vocabularies and prediction runs on
    // the model's shared compiled engine. Per-document scoreboards merge
    // in document order.
    let extracted = extract_corpus(&test_corpus, exp);
    let _score_phase = telemetry::span("eval_score");
    let vocabs = &vocabs;
    let model = &model;
    let boards = parallel_map_indexed(&extracted, exp.jobs, |_, doc| {
        let mut board = Scoreboard::new();
        let mut graph =
            build_name_graph_lookup(exp.language, &doc.ast, exp.target, &doc.features, vocabs);
        if let Some(semis) = &doc.semis {
            add_semi_paths_lookup(
                exp.language,
                &doc.ast,
                exp.target,
                &mut graph,
                semis,
                vocabs,
            );
        }
        let predicted = model.predict(&graph.instance);
        for &node in &graph.unknown_nodes {
            let gold = &graph.node_names[node];
            let name = vocabs.label_name(predicted[node]).to_owned();
            let top: Vec<String> = model
                .top_k(&graph.instance, node, exp.top_k)
                .into_iter()
                .map(|(l, _)| vocabs.label_name(l).to_owned())
                .collect();
            board.record(&name, gold, Some(&top));
            if vocabs.labels.get(gold).is_none() {
                board.note_oov();
            }
        }
        board
    });
    let mut board = Scoreboard::new();
    for b in &boards {
        board.merge(b);
    }

    TaskOutcome {
        accuracy: board.accuracy(),
        topk_accuracy: board.topk_accuracy(),
        f1: board.f1(),
        n_test: board.total(),
        train_secs,
        n_features: vocabs.features.len(),
        n_labels: vocabs.labels.len(),
        oov_rate: board.oov_rate(),
    }
}

/// Configuration of the full-type experiment (§5.3.3).
#[derive(Debug, Clone)]
pub struct TypeExperiment {
    /// Corpus generation parameters (typed-Java generator).
    pub corpus: CorpusConfig,
    /// Path limits; the paper's best is length 4, width 1.
    pub extraction: ExtractionConfig,
    /// Path abstraction level.
    pub abstraction: Abstraction,
    /// CRF training parameters.
    pub crf: CrfConfig,
    /// Fraction of documents used for training.
    pub train_frac: f64,
    /// Worker threads for per-document parsing and held-out scoring
    /// (`1` serial, `0` all cores); the trained model is identical for
    /// any value.
    pub jobs: usize,
}

impl Default for TypeExperiment {
    fn default() -> Self {
        TypeExperiment {
            corpus: CorpusConfig::default(),
            extraction: ExtractionConfig::with_limits(4, 1),
            abstraction: Abstraction::Full,
            crf: CrfConfig::default(),
            train_frac: 0.8,
            jobs: 1,
        }
    }
}

/// Runs the full-type prediction experiment.
pub fn run_type_experiment(exp: &TypeExperiment) -> TaskOutcome {
    let _span = telemetry::span("type_experiment");
    let corpus = {
        let _phase = telemetry::span("corpus_generate");
        generate_java_types(&exp.corpus)
    };
    let (train_corpus, _, test_corpus) = {
        let _phase = telemetry::span("split_dedup");
        crate::split::split_dedup(corpus, exp.train_frac, 0.0, exp.jobs)
    };
    let mut vocabs = Vocabs::new();

    // Parsing fans out; graph building interns vocabulary entries and
    // stays sequential in document order.
    let train_parsed = parse_corpus_jobs(&train_corpus, exp.jobs);
    let mut train_instances = Vec::new();
    {
        let _phase = telemetry::span("graph_build");
        for (ast, doc) in train_parsed {
            let graph = build_type_graph(
                &ast,
                &doc.truth.types,
                &exp.extraction,
                exp.abstraction,
                &mut vocabs,
                true,
            );
            train_instances.push(graph.instance);
        }
    }

    let n_labels = vocabs.labels.len() as u32;
    let started = Instant::now();
    let crf_cfg = CrfConfig {
        jobs: exp.jobs,
        ..exp.crf
    };
    let model = train_crf(&train_instances, n_labels, &crf_cfg);
    let train_secs = started.elapsed().as_secs_f64();

    // Held-out scoring is per-document independent: lookup-only graph
    // builds, shared compiled model, scoreboards merged in doc order.
    let parsed = parse_corpus_jobs(&test_corpus, exp.jobs);
    let _score_phase = telemetry::span("eval_score");
    let vocabs_ref = &vocabs;
    let model = &model;
    let boards = parallel_map_indexed(&parsed, exp.jobs, |_, (ast, doc)| {
        let mut board = Scoreboard::new();
        let graph = build_type_graph_lookup(
            ast,
            &doc.truth.types,
            &exp.extraction,
            exp.abstraction,
            vocabs_ref,
        );
        let predicted = model.predict(&graph.instance);
        for &node in &graph.unknown_nodes {
            let gold = &graph.node_names[node];
            let name = vocabs_ref.label_name(predicted[node]);
            // Types match exactly (FQNs are case-sensitive identifiers,
            // but our normalised comparison is equivalent here).
            board.record(name, gold, None);
        }
        board
    });
    let mut board = Scoreboard::new();
    for b in &boards {
        board.merge(b);
    }

    TaskOutcome {
        accuracy: board.accuracy(),
        topk_accuracy: 0.0,
        f1: board.f1(),
        n_test: board.total(),
        train_secs,
        n_features: vocabs.features.len(),
        n_labels: vocabs.labels.len(),
        oov_rate: board.oov_rate(),
    }
}

/// The paper's naive full-type baseline: predict `java.lang.String` for
/// every expression (24.1% in the paper).
pub fn naive_string_type_accuracy(corpus_cfg: &CorpusConfig, train_frac: f64) -> TaskOutcome {
    let corpus = generate_java_types(corpus_cfg);
    // Baselines score on the same deduplicated test split as the real
    // experiments, keeping the comparison apples-to-apples.
    let (_, _, test_corpus) = crate::split::split_dedup(corpus, train_frac, 0.0, 1);
    let mut board = Scoreboard::new();
    for doc in &test_corpus.docs {
        for t in &doc.truth.types {
            board.record("java.lang.String", &t.fqn, None);
        }
    }
    TaskOutcome {
        accuracy: board.accuracy(),
        topk_accuracy: 0.0,
        f1: 0.0,
        n_test: board.total(),
        train_secs: 0.0,
        n_features: 0,
        n_labels: 1,
        oov_rate: 0.0,
    }
}

/// The paper's rule-based Java baseline (§5.3.1): pattern heuristics —
/// `i` for classic for-loop indices, `e` for catch parameters, otherwise
/// a name derived from the declared type (`HttpClient client`).
pub fn rule_based_java_vars(corpus_cfg: &CorpusConfig, train_frac: f64) -> TaskOutcome {
    let corpus = generate(Language::Java, corpus_cfg);
    let (_, _, test_corpus) = crate::split::split_dedup(corpus, train_frac, 0.0, 1);
    let mut board = Scoreboard::new();
    for doc in &test_corpus.docs {
        let ast = Language::Java
            .parse(&doc.source)
            .expect("generated docs parse");
        for element in classify_elements(Language::Java, &ast) {
            if element.class != ElementClass::Variable {
                continue;
            }
            let decl = element
                .occurrences
                .iter()
                .copied()
                .find(|&l| matches!(ast.kind(l).as_str(), "NameVar" | "NameParam"));
            let predicted = decl
                .map(|l| rule_based_prediction(&ast, l))
                .unwrap_or_else(|| "value".to_owned());
            board.record(&predicted, &element.name, None);
        }
    }
    TaskOutcome {
        accuracy: board.accuracy(),
        topk_accuracy: 0.0,
        f1: board.f1(),
        n_test: board.total(),
        train_secs: 0.0,
        n_features: 0,
        n_labels: 0,
        oov_rate: 0.0,
    }
}

fn rule_based_prediction(ast: &Ast, decl: NodeId) -> String {
    // `for (int i = ...)` → i.
    let in_for_init = ast.ancestors(decl).take(3).any(|a| {
        ast.kind(a).as_str() == "LocalVar"
            && ast
                .parent(a)
                .is_some_and(|p| ast.kind(p).as_str() == "For" && ast.child_index(a) == 0)
    });
    if in_for_init {
        return "i".to_owned();
    }
    // `catch (... e)` → e.
    if ast
        .parent(decl)
        .is_some_and(|p| ast.kind(p).as_str() == "Catch")
    {
        return "e".to_owned();
    }
    // Otherwise: use the type — `HttpClient client`.
    if let Some(ty) = declared_type(ast, decl) {
        return type_based_name(&ty);
    }
    "value".to_owned()
}

/// The declared type's simple name for a NameVar/NameParam leaf.
fn declared_type(ast: &Ast, decl: NodeId) -> Option<String> {
    let parent = ast.parent(decl)?;
    let type_holder = match ast.kind(parent).as_str() {
        // LocalVar → [Type, VariableDeclarator...]; Parameter → [Type, Name];
        // ForEach → [Type, NameVar, iterable, body]; Catch → [Type, Name, Block].
        "VariableDeclarator" => ast.parent(parent)?,
        "Parameter" | "ForEach" | "Catch" => parent,
        _ => return None,
    };
    let ty = *ast.children(type_holder).first()?;
    type_simple_name(ast, ty)
}

fn type_simple_name(ast: &Ast, ty: NodeId) -> Option<String> {
    match ast.kind(ty).as_str() {
        "PrimitiveType" => Some(ast.value(ty)?.as_str().to_owned()),
        "ArrayType" => type_simple_name(ast, *ast.children(ty).first()?),
        "ClassType" => {
            let name_leaf = *ast.children(ty).first()?;
            let full = ast.value(name_leaf)?.as_str();
            Some(full.rsplit('.').next().unwrap_or(full).to_owned())
        }
        _ => None,
    }
}

fn type_based_name(ty: &str) -> String {
    let mut chars = ty.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => "value".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> CorpusConfig {
        CorpusConfig::default().with_files(120)
    }

    #[test]
    fn js_var_names_learn_well_above_no_paths() {
        let base = NameExperiment::var_names(Language::JavaScript);
        let paths = run_name_experiment(&NameExperiment {
            corpus: small_corpus(),
            ..base.clone()
        });
        let no_paths = run_name_experiment(
            &NameExperiment {
                corpus: small_corpus(),
                ..base
            }
            .with_representation(Representation::NoPaths),
        );
        assert!(paths.n_test > 50);
        assert!(
            paths.accuracy > no_paths.accuracy + 0.03,
            "paths {:.3} should beat no-paths {:.3} clearly",
            paths.accuracy,
            no_paths.accuracy
        );
        assert!(paths.accuracy > 0.4, "paths accuracy {:.3}", paths.accuracy);
        assert!(
            paths.topk_accuracy >= paths.accuracy,
            "top-k dominates top-1"
        );
    }

    #[test]
    fn method_names_are_learnable() {
        let out = run_name_experiment(&NameExperiment {
            corpus: small_corpus(),
            ..NameExperiment::method_names(Language::Python)
        });
        assert!(out.n_test > 30);
        assert!(out.accuracy > 0.25, "accuracy {:.3}", out.accuracy);
        assert!(
            out.f1 >= out.accuracy,
            "subtoken F1 includes partial credit"
        );
    }

    #[test]
    fn type_task_beats_the_string_baseline() {
        let cfg = small_corpus();
        let types = run_type_experiment(&TypeExperiment {
            corpus: cfg,
            ..TypeExperiment::default()
        });
        let naive = naive_string_type_accuracy(&cfg, 0.8);
        assert!(types.n_test > 50);
        assert!(
            types.accuracy > naive.accuracy + 0.2,
            "paths {:.3} vs naive {:.3}",
            types.accuracy,
            naive.accuracy
        );
        assert!(
            (0.15..0.40).contains(&naive.accuracy),
            "naive baseline should sit near the String share, got {:.3}",
            naive.accuracy
        );
    }

    #[test]
    fn rule_based_baseline_is_weak_but_nonzero() {
        let out = rule_based_java_vars(&small_corpus(), 0.8);
        assert!(out.n_test > 50);
        assert!(
            (0.01..0.45).contains(&out.accuracy),
            "rule-based accuracy {:.3}",
            out.accuracy
        );
    }

    #[test]
    fn downsampling_keeps_most_of_the_accuracy() {
        let base = NameExperiment {
            corpus: small_corpus(),
            ..NameExperiment::var_names(Language::JavaScript)
        };
        let full = run_name_experiment(&base);
        let sampled = run_name_experiment(&NameExperiment {
            keep_prob: 0.5,
            ..base
        });
        assert!(
            sampled.accuracy > full.accuracy - 0.15,
            "p=0.5 dropped accuracy too far: {:.3} vs {:.3}",
            sampled.accuracy,
            full.accuracy
        );
    }
}
