//! Program-element classification per language.
//!
//! A *program element* is the set of leaves sharing one identifier. For
//! each prediction task some elements are unknown (stripped, to be
//! predicted) and the rest are given — exactly the protocol of the
//! paper: for variable naming, local variables and parameters are
//! unknown; for method naming "all the other names in the method are
//! given" (§1). Classification keys off each frontend's declaration-site
//! terminal kinds.

use pigeon_ast::{Ast, Kind, NodeId};
use pigeon_corpus::Language;

/// What a program element is, for task selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementClass {
    /// A local variable, parameter or catch binding.
    Variable,
    /// A declared method/function name.
    Method,
    /// Anything else: literals, properties, API names, types, …
    Other,
}

/// Whether `leaf` is a declaration site of a local variable or parameter.
fn is_var_decl(language: Language, ast: &Ast, leaf: NodeId) -> bool {
    let kind = ast.kind(leaf).as_str();
    match language {
        Language::JavaScript => {
            matches!(kind, "SymbolVar" | "SymbolFunarg" | "SymbolCatch")
        }
        Language::Java => matches!(kind, "NameVar" | "NameParam"),
        Language::Python => {
            if kind != "NameStore" && kind != "NameParam" {
                return false;
            }
            // `self` is a convention, not a choice worth predicting.
            ast.value(leaf).is_some_and(|v| v.as_str() != "self")
        }
        Language::CSharp => {
            if kind != "Identifier" {
                return false;
            }
            let Some(parent) = ast.parent(leaf) else {
                return false;
            };
            match ast.kind(parent).as_str() {
                "Parameter" | "ForEachStatement" | "CatchClause" => true,
                "VariableDeclarator" => ast
                    .parent(parent)
                    .is_some_and(|gp| ast.kind(gp).as_str() == "VariableDeclaration"),
                _ => false,
            }
        }
    }
}

/// Whether `leaf` is a declaration site of a method/function name.
fn is_method_decl(language: Language, ast: &Ast, leaf: NodeId) -> bool {
    let kind = ast.kind(leaf).as_str();
    match language {
        Language::JavaScript => matches!(kind, "SymbolDefun" | "SymbolLambda"),
        Language::Java => kind == "NameMethod",
        Language::Python => kind == "NameFunc",
        Language::CSharp => {
            kind == "Identifier"
                && ast
                    .parent(leaf)
                    .is_some_and(|p| ast.kind(p).as_str() == "MethodDeclaration")
        }
    }
}

/// One grouped element with its class.
#[derive(Debug, Clone)]
pub struct Element {
    /// The shared identifier text.
    pub name: String,
    /// All leaves carrying it.
    pub occurrences: Vec<NodeId>,
    /// The element's classification.
    pub class: ElementClass,
}

/// Function-level node kinds: the scoping units for local variables.
fn function_kinds(language: Language) -> &'static [&'static str] {
    match language {
        Language::JavaScript => &["Defun", "Function", "Arrow"],
        Language::Java => &["MethodDecl", "ConstructorDecl"],
        Language::Python => &["FunctionDef", "Lambda"],
        Language::CSharp => &["MethodDeclaration", "ConstructorDeclaration"],
    }
}

/// The nearest enclosing function node of `leaf`, or the root.
fn scope_of(language: Language, ast: &Ast, leaf: NodeId) -> NodeId {
    let kinds = function_kinds(language);
    ast.ancestors(leaf)
        .find(|&a| kinds.contains(&ast.kind(a).as_str()))
        .unwrap_or_else(|| ast.root())
}

/// Groups the leaves of `ast` into classified elements.
///
/// Local variables are **scope-resolved**: a name declared as a variable
/// in a function forms one element per declaring function, binding the
/// occurrences of that name inside the same function. This mirrors
/// Nice2Predict, where CRF nodes come from scoped identifier resolution —
/// the same variable name in two functions is two independent prediction
/// targets. Names never declared as variables (method names, properties,
/// literals, API calls) group file-wide.
pub fn classify_elements(language: Language, ast: &Ast) -> Vec<Element> {
    let mut out = Vec::new();
    for (value, occurrences) in pigeon_core::element_occurrences(ast) {
        let name = value.as_str();
        // Scopes in which this name is declared as a variable.
        let mut var_scopes: Vec<NodeId> = occurrences
            .iter()
            .filter(|&&l| is_var_decl(language, ast, l))
            .map(|&l| scope_of(language, ast, l))
            .collect();
        var_scopes.sort_unstable();
        var_scopes.dedup();

        let mut residual: Vec<NodeId> = Vec::new();
        let mut per_scope: Vec<(NodeId, Vec<NodeId>)> =
            var_scopes.iter().map(|&s| (s, Vec::new())).collect();
        for &leaf in &occurrences {
            let scope = scope_of(language, ast, leaf);
            match per_scope.iter_mut().find(|(s, _)| *s == scope) {
                Some((_, bucket)) => bucket.push(leaf),
                None => residual.push(leaf),
            }
        }
        for (_, bucket) in per_scope {
            out.push(Element {
                name: name.to_owned(),
                occurrences: bucket,
                class: ElementClass::Variable,
            });
        }
        if !residual.is_empty() {
            let is_method = residual.iter().any(|&l| is_method_decl(language, ast, l));
            out.push(Element {
                name: name.to_owned(),
                occurrences: residual,
                class: if is_method {
                    ElementClass::Method
                } else {
                    ElementClass::Other
                },
            });
        }
    }
    out
}

/// Finds the initializer expression node of the typed declaration of
/// `var` (for the full-type task): the second child of the
/// `VariableDeclarator` whose name leaf carries `var`.
pub fn find_initializer(ast: &Ast, var: &str) -> Option<NodeId> {
    let declarator_kind = Kind::new("VariableDeclarator");
    for &leaf in ast.leaves() {
        if ast.value(leaf).is_some_and(|v| v.as_str() == var)
            && ast.kind(leaf).as_str() == "NameVar"
        {
            let parent = ast.parent(leaf)?;
            if ast.kind(parent) == declarator_kind {
                let children = ast.children(parent);
                if children.len() >= 2 {
                    return Some(children[1]);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(language: Language, src: &str) -> Vec<(String, ElementClass)> {
        let ast = language.parse(src).unwrap();
        classify_elements(language, &ast)
            .into_iter()
            .map(|e| (e.name, e.class))
            .collect()
    }

    fn class_of(v: &[(String, ElementClass)], name: &str) -> ElementClass {
        v.iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} not found in {v:?}"))
            .1
    }

    #[test]
    fn js_classification() {
        let v = classes(
            Language::JavaScript,
            "function send(url, req) { var done = false; req.open('GET', url, done); }",
        );
        assert_eq!(class_of(&v, "send"), ElementClass::Method);
        assert_eq!(class_of(&v, "url"), ElementClass::Variable);
        assert_eq!(class_of(&v, "req"), ElementClass::Variable);
        assert_eq!(class_of(&v, "done"), ElementClass::Variable);
        assert_eq!(class_of(&v, "open"), ElementClass::Other);
        assert_eq!(class_of(&v, "GET"), ElementClass::Other);
    }

    #[test]
    fn java_classification() {
        let v = classes(
            Language::Java,
            "class A { int count(List<Integer> values) { int count = 0; for (int v : \
             values) { count++; } return count; } }",
        );
        // `count` is both a method name and a local: the variable wins.
        assert_eq!(class_of(&v, "count"), ElementClass::Variable);
        assert_eq!(class_of(&v, "values"), ElementClass::Variable);
        assert_eq!(class_of(&v, "v"), ElementClass::Variable);
        assert_eq!(class_of(&v, "A"), ElementClass::Other);
        assert_eq!(class_of(&v, "List"), ElementClass::Other);
    }

    #[test]
    fn python_classification_skips_self() {
        let v = classes(
            Language::Python,
            "class H:\n    def handle(self, request):\n        data = request.body\n        \
             return data\n",
        );
        assert_eq!(class_of(&v, "handle"), ElementClass::Method);
        assert_eq!(class_of(&v, "request"), ElementClass::Variable);
        assert_eq!(class_of(&v, "data"), ElementClass::Variable);
        assert_eq!(class_of(&v, "self"), ElementClass::Other);
        assert_eq!(class_of(&v, "body"), ElementClass::Other);
    }

    #[test]
    fn csharp_classification() {
        let v = classes(
            Language::CSharp,
            "class A { public int Sum(int[] xs) { int total = 0; foreach (var x in xs) { \
             total += x; } return total; } }",
        );
        assert_eq!(class_of(&v, "Sum"), ElementClass::Method);
        assert_eq!(class_of(&v, "total"), ElementClass::Variable);
        assert_eq!(class_of(&v, "x"), ElementClass::Variable);
        assert_eq!(class_of(&v, "xs"), ElementClass::Variable);
        assert_eq!(class_of(&v, "A"), ElementClass::Other);
    }

    #[test]
    fn csharp_fields_are_not_variables() {
        let v = classes(Language::CSharp, "class A { int count; }");
        assert_eq!(class_of(&v, "count"), ElementClass::Other);
    }

    #[test]
    fn find_initializer_locates_the_expression() {
        let ast = Language::Java
            .parse("class A { void f(String raw) { String message = raw.trim(); } }")
            .unwrap();
        let init = find_initializer(&ast, "message").expect("initializer exists");
        assert_eq!(ast.kind(init).as_str(), "MethodCall");
        assert_eq!(find_initializer(&ast, "absent"), None);
    }
}
