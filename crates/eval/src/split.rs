//! Duplicate-safe train/valid/test splitting.
//!
//! Synthetic (and real) corpora contain duplicated programs — often
//! identical up to identifier renaming. A naive prefix split lets such a
//! pair straddle the train/test boundary, and a model then scores on a
//! program it has memorized, inflating every reported number. This
//! module splits like [`pigeon_corpus::Corpus::split`] but then drops
//! any later-split document whose alpha-renaming-normalized fingerprint
//! already occurs in an earlier split: training keeps every document
//! (duplicates there are harmless), while validation and test only keep
//! programs the model has genuinely never seen.

use pigeon_core::{fnv64, normalized_fingerprint, parallel_map_indexed};
use pigeon_corpus::Corpus;
use std::collections::HashSet;

/// Splits `corpus` into train/valid/test prefix fractions, then removes
/// from valid every document sharing a normalized fingerprint with
/// train, and from test every document sharing one with train or the
/// kept valid set. `jobs` fans the per-document fingerprinting out
/// (`1` serial, `0` all cores); the result is identical for any value.
///
/// A document that fails to parse (impossible for generated corpora,
/// possible for user-supplied ones) falls back to a byte-content hash,
/// so exact byte duplicates still never cross the boundary.
pub fn split_dedup(
    corpus: Corpus,
    train_frac: f64,
    valid_frac: f64,
    jobs: usize,
) -> (Corpus, Corpus, Corpus) {
    let language = corpus.language;
    let fingerprints: Vec<u64> = parallel_map_indexed(&corpus.docs, jobs, |_, doc| match language
        .parse(&doc.source)
    {
        Ok(ast) => normalized_fingerprint(&ast),
        Err(_) => fnv64(doc.source.as_bytes()),
    });
    let (train, valid, test) = corpus.split(train_frac, valid_frac);

    // `split` is a prefix split, so the fingerprint list lines up:
    // train gets [0, n_train), valid the next n_valid, test the rest.
    let n_train = train.docs.len();
    let n_valid = valid.docs.len();
    let mut seen: HashSet<u64> = fingerprints[..n_train].iter().copied().collect();

    let keep = |docs: Vec<pigeon_corpus::Document>,
                fps: &[u64],
                seen: &mut HashSet<u64>|
     -> Vec<pigeon_corpus::Document> {
        docs.into_iter()
            .zip(fps)
            .filter_map(|(doc, &fp)| seen.insert(fp).then_some(doc))
            .collect()
    };
    let valid_docs = keep(
        valid.docs,
        &fingerprints[n_train..n_train + n_valid],
        &mut seen,
    );
    let test_docs = keep(test.docs, &fingerprints[n_train + n_valid..], &mut seen);

    (
        train,
        Corpus {
            language,
            docs: valid_docs,
        },
        Corpus {
            language,
            docs: test_docs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_corpus::{generate, CorpusConfig, Document, Language};

    fn fingerprint_set(corpus: &Corpus) -> HashSet<u64> {
        corpus
            .docs
            .iter()
            .map(|d| normalized_fingerprint(&corpus.language.parse(&d.source).unwrap()))
            .collect()
    }

    #[test]
    fn duplicate_straddling_the_boundary_is_dropped_from_test() {
        // Two renamed copies of one program, placed so the prefix split
        // puts one in train and one in test.
        let twin_a = "function f(alpha) { var beta = alpha + 1; return beta; }";
        let twin_b = "function g(left) { var right = left + 1; return right; }";
        let filler = |i: usize| format!("function h{i}(x) {{ return x * {i}; }}");
        let mut docs: Vec<Document> = Vec::new();
        docs.push(Document {
            source: twin_a.to_string(),
            truth: Default::default(),
        });
        for i in 0..3 {
            docs.push(Document {
                source: filler(i),
                truth: Default::default(),
            });
        }
        docs.push(Document {
            source: twin_b.to_string(),
            truth: Default::default(),
        });
        let corpus = Corpus {
            language: Language::JavaScript,
            docs,
        };

        // The naive split leaks: twin_b lands in test while twin_a
        // trained, with identical normalized fingerprints.
        let (naive_train, _, naive_test) = corpus.clone().split(0.8, 0.0);
        assert!(!naive_test.docs.is_empty());
        let leak: Vec<u64> = fingerprint_set(&naive_train)
            .intersection(&fingerprint_set(&naive_test))
            .copied()
            .collect();
        assert!(!leak.is_empty(), "fixture must actually straddle the split");

        // The dedup split drops the twin from test entirely.
        let (train, _, test) = split_dedup(corpus, 0.8, 0.0, 1);
        assert_eq!(train.docs.len(), 4);
        assert!(test.docs.is_empty());
    }

    #[test]
    fn clean_corpora_split_identically_to_the_naive_split() {
        let corpus = generate(Language::Python, &CorpusConfig::default().with_files(30));
        let naive = corpus.clone().split(0.8, 0.1);
        let dedup = split_dedup(corpus, 0.8, 0.1, 1);
        // Any documents dropped must be genuine cross-split duplicates;
        // the train split is always untouched.
        assert_eq!(naive.0.docs.len(), dedup.0.docs.len());
        assert!(dedup.1.docs.len() <= naive.1.docs.len());
        assert!(dedup.2.docs.len() <= naive.2.docs.len());
        // And after dedup no fingerprint crosses any boundary.
        let train_fps = fingerprint_set(&dedup.0);
        let valid_fps = fingerprint_set(&dedup.1);
        let test_fps = fingerprint_set(&dedup.2);
        assert!(train_fps.is_disjoint(&test_fps));
        assert!(train_fps.is_disjoint(&valid_fps));
        assert!(valid_fps.is_disjoint(&test_fps));
    }

    #[test]
    fn jobs_value_does_not_change_the_split() {
        let corpus = generate(Language::Java, &CorpusConfig::default().with_files(20));
        let serial = split_dedup(corpus.clone(), 0.8, 0.0, 1);
        let parallel = split_dedup(corpus, 0.8, 0.0, 0);
        let names = |c: &Corpus| c.docs.iter().map(|d| d.source.clone()).collect::<Vec<_>>();
        assert_eq!(names(&serial.0), names(&parallel.0));
        assert_eq!(names(&serial.2), names(&parallel.2));
    }
}
