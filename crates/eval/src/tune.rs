//! Validation-set hyper-parameter tuning (§4.2 of the paper).
//!
//! "We tune the optimal values of width and length by grid search of
//! combinations on a validation set of programs and choose the
//! combination that yields the highest accuracy … The tuning process …
//! should be separate for each language and task." This module implements
//! exactly that: the corpus is split train/validation/test, the grid is
//! scored on the validation split only, and the winning combination is
//! returned for a final test-set run.

use crate::tasks::{run_name_experiment, NameExperiment, TaskOutcome};
use pigeon_core::{parallel_map_indexed, ExtractionConfig};

/// The outcome of a grid search: the winning parameters and the grid.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning `max_length`.
    pub max_length: usize,
    /// The winning `max_width`.
    pub max_width: usize,
    /// Validation accuracy of the winner.
    pub valid_accuracy: f64,
    /// Every `(length, width, validation accuracy)` cell scored.
    pub grid: Vec<(usize, usize, f64)>,
}

/// Grid-searches `lengths × widths` for `base`, scoring each combination
/// on a validation split carved out of the experiment's training
/// fraction. The experiment's other settings (language, task,
/// representation, CRF config) are held fixed.
///
/// Cells are independent experiments, so they fan out over `base.jobs`
/// workers; results come back in grid order and the argmax is resolved
/// over that order (first strict improvement wins), so the winning cell
/// is identical to a serial scan.
///
/// # Panics
///
/// Panics if `lengths` or `widths` is empty.
pub fn tune_parameters(base: &NameExperiment, lengths: &[usize], widths: &[usize]) -> TuneResult {
    assert!(
        !lengths.is_empty() && !widths.is_empty(),
        "the grid needs at least one cell"
    );
    // Validation scoring: shrink the training fraction and test on the
    // held-out slice *before* the real test split (which run_name_experiment
    // defines as everything after train_frac). Using a smaller train_frac
    // makes the experiment's "test" split play the validation role; the
    // caller then evaluates the winner with the original fractions on data
    // the search never saw.
    let valid_frac = base.train_frac * 0.8;
    let mut cells = Vec::new();
    for &w in widths {
        for &l in lengths {
            cells.push((l, w));
        }
    }
    let grid: Vec<(usize, usize, f64)> = parallel_map_indexed(&cells, base.jobs, |_, &(l, w)| {
        let mut exp = base.clone();
        exp.extraction = ExtractionConfig {
            max_length: l,
            max_width: w,
            semi_paths: base.extraction.semi_paths,
        };
        exp.train_frac = valid_frac;
        // Only the validation prefix participates: shrink the corpus
        // to the original training fraction so test data stays unseen.
        exp.corpus = exp
            .corpus
            .with_files((base.corpus.files as f64 * base.train_frac).round() as usize);
        // The grid already occupies the workers; keep each cell serial.
        exp.jobs = 1;
        (l, w, run_name_experiment(&exp).accuracy)
    });
    let mut best = (lengths[0], widths[0], f64::MIN);
    for &(l, w, accuracy) in &grid {
        if accuracy > best.2 {
            best = (l, w, accuracy);
        }
    }
    TuneResult {
        max_length: best.0,
        max_width: best.1,
        valid_accuracy: best.2,
        grid,
    }
}

/// Tunes `base` and runs the final experiment with the winning
/// parameters on the untouched test split.
pub fn tune_and_run(
    base: &NameExperiment,
    lengths: &[usize],
    widths: &[usize],
) -> (TuneResult, TaskOutcome) {
    let tuned = tune_parameters(base, lengths, widths);
    let mut exp = base.clone();
    exp.extraction = ExtractionConfig {
        max_length: tuned.max_length,
        max_width: tuned.max_width,
        semi_paths: base.extraction.semi_paths,
    };
    let outcome = run_name_experiment(&exp);
    (tuned, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_corpus::{CorpusConfig, Language};

    #[test]
    fn tuning_scans_the_whole_grid_and_picks_its_argmax() {
        let base = NameExperiment {
            corpus: CorpusConfig::default().with_files(120),
            ..NameExperiment::var_names(Language::JavaScript)
        };
        let result = tune_parameters(&base, &[2, 3], &[2, 3]);
        assert_eq!(result.grid.len(), 4);
        let max = result
            .grid
            .iter()
            .map(|&(_, _, a)| a)
            .fold(f64::MIN, f64::max);
        assert_eq!(result.valid_accuracy, max);
        assert!(result.grid.contains(&(
            result.max_length,
            result.max_width,
            result.valid_accuracy
        )));
    }

    #[test]
    fn tune_and_run_reports_on_unseen_data() {
        let base = NameExperiment {
            corpus: CorpusConfig::default().with_files(120),
            ..NameExperiment::var_names(Language::Python)
        };
        let (tuned, outcome) = tune_and_run(&base, &[3], &[3]);
        assert_eq!((tuned.max_length, tuned.max_width), (3, 3));
        assert!(outcome.n_test > 20);
        assert!(outcome.accuracy > 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_grid_panics() {
        let base = NameExperiment::var_names(Language::Java);
        let _ = tune_parameters(&base, &[], &[1]);
    }
}
