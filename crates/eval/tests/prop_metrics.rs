//! Property tests for the evaluation metrics.

use pigeon_eval::{exact_match, normalize_name, subtoken_prf, subtokens};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_]{0,20}"
}

proptest! {
    /// Normalisation is idempotent and produces only lowercase
    /// alphanumerics.
    #[test]
    fn normalisation_is_idempotent(name in name_strategy()) {
        let once = normalize_name(&name);
        prop_assert_eq!(normalize_name(&once), once.clone());
        prop_assert!(once.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }

    /// Exact match is reflexive for names with any alphanumeric content,
    /// and symmetric always.
    #[test]
    fn exact_match_is_reflexive_and_symmetric(a in name_strategy(), b in name_strategy()) {
        if !normalize_name(&a).is_empty() {
            prop_assert!(exact_match(&a, &a));
        }
        prop_assert_eq!(exact_match(&a, &b), exact_match(&b, &a));
    }

    /// Case and separators never affect equality: the paper's
    /// `totalCount == total_count` rule generalised.
    #[test]
    fn separators_are_invisible(a in "[a-z]{1,6}", b in "[a-z]{1,6}") {
        let camel = format!("{a}{}{}", b[..1].to_uppercase(), &b[1..]);
        let snake = format!("{a}_{b}");
        prop_assert!(exact_match(&camel, &snake));
    }

    /// Subtokens reassemble to the normalised name.
    #[test]
    fn subtokens_partition_the_name(name in name_strategy()) {
        let joined: String = subtokens(&name).concat();
        prop_assert_eq!(joined, normalize_name(&name));
    }

    /// Precision/recall/F1 stay in [0, 1]; F1 is 1 exactly on equal
    /// bags and 0 exactly on disjoint ones.
    #[test]
    fn prf_bounds(a in name_strategy(), b in name_strategy()) {
        let (p, r, f1) = subtoken_prf(&a, &b);
        for v in [p, r, f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let (sa, sb) = (subtokens(&a), subtokens(&b));
        if !sa.is_empty() && sa == sb {
            prop_assert_eq!(f1, 1.0);
        }
        if !sa.is_empty() && !sb.is_empty() && sa.iter().all(|t| !sb.contains(t)) {
            prop_assert_eq!(f1, 0.0);
        }
    }

    /// F1 is symmetric.
    #[test]
    fn f1_is_symmetric(a in name_strategy(), b in name_strategy()) {
        let (_, _, ab) = subtoken_prf(&a, &b);
        let (_, _, ba) = subtoken_prf(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    /// Exact match implies perfect F1 (the finer metric dominates).
    #[test]
    fn exact_match_implies_f1_one(a in name_strategy()) {
        if exact_match(&a, &a) {
            let (_, _, f1) = subtoken_prf(&a, &a);
            prop_assert_eq!(f1, 1.0);
        }
    }
}
