//! Ignored-by-default tuning probes used to pick the experiment defaults
//! (run with `cargo test -p pigeon-eval --release --test tuning -- --ignored --nocapture`).

use pigeon_corpus::{CorpusConfig, Language};
use pigeon_eval::*;

#[test]
#[ignore]
fn method_length_tuning() {
    for lang in [Language::JavaScript, Language::Java, Language::Python] {
        for (len, w) in [(5usize, 3usize), (6, 3), (7, 3), (8, 3)] {
            let out = run_name_experiment(&NameExperiment {
                corpus: CorpusConfig::default().with_files(500),
                extraction: pigeon_core::ExtractionConfig::with_limits(len, w),
                ..NameExperiment::method_names(lang)
            });
            println!("{lang:12} methods L{len}/W{w}: {:.3}", out.accuracy);
        }
    }
}

#[test]
#[ignore]
fn var_sanity_after_drivers() {
    for lang in Language::ALL {
        let out = run_name_experiment(&NameExperiment {
            corpus: CorpusConfig::default().with_files(500),
            ..NameExperiment::var_names(lang)
        });
        println!("{lang:12} vars: {:.3}", out.accuracy);
    }
}

#[test]
#[ignore]
fn semi_path_ablation() {
    for task in ["vars", "methods"] {
        for semi in [false, true] {
            let mut exp = if task == "vars" {
                NameExperiment::var_names(Language::JavaScript)
            } else {
                NameExperiment::method_names(Language::JavaScript)
            };
            exp.corpus = CorpusConfig::default().with_files(500);
            exp.extraction.semi_paths = semi;
            let out = run_name_experiment(&exp);
            println!("{task} semi={semi}: {:.3}", out.accuracy);
        }
    }
}

#[test]
#[ignore]
fn fig10_shape_check() {
    let corpus = CorpusConfig::default().with_files(500);
    let cells = length_width_sweep(&corpus, &[2, 3, 4, 5, 6], &[3], 0);
    for c in cells {
        println!("L{} = {:.3}", c.max_length, c.accuracy);
    }
}

#[test]
#[ignore]
fn var_retune() {
    println!();
    for lang in Language::ALL {
        for (len, w) in [(3usize, 2usize), (3, 3), (4, 3), (4, 4)] {
            let mut exp = NameExperiment::var_names(lang);
            exp.corpus = CorpusConfig::default().with_files(500);
            exp.extraction = pigeon_core::ExtractionConfig::with_limits(len, w).semi_paths(true);
            let out = run_name_experiment(&exp);
            println!("{lang:12} L{len}/W{w}: {:.3}", out.accuracy);
        }
    }
}

#[test]
#[ignore]
fn nopath_gap_check() {
    for lang in [Language::JavaScript, Language::Java, Language::Python] {
        let base = NameExperiment {
            corpus: CorpusConfig::default().with_files(800),
            ..NameExperiment::var_names(lang)
        };
        let paths = run_name_experiment(&base);
        let nopath =
            run_name_experiment(&base.clone().with_representation(Representation::NoPaths));
        println!(
            "{lang:12} paths={:.3} nopath={:.3} gap={:+.1}",
            paths.accuracy,
            nopath.accuracy,
            100.0 * (paths.accuracy - nopath.accuracy)
        );
    }
}

#[test]
#[ignore]
fn relations_gap_check() {
    let base = NameExperiment {
        corpus: CorpusConfig::default().with_files(800),
        ..NameExperiment::var_names(Language::JavaScript)
    };
    let paths = run_name_experiment(&base);
    let relations =
        run_name_experiment(&base.clone().with_representation(Representation::Relations));
    let nopath = run_name_experiment(&base.clone().with_representation(Representation::NoPaths));
    println!(
        "paths={:.3} relations={:.3} nopath={:.3}",
        paths.accuracy, relations.accuracy, nopath.accuracy
    );
}
