//! Golden tests: realistic C# programs parse to stable shapes.

use pigeon_ast::Symbol;

#[test]
fn service_class_with_properties() {
    let src = r#"
using System;
using System.Collections.Generic;

namespace App.Services {
    public class OrderService {
        private List<Order> pending = new List<Order>();

        public int Count { get; set; }

        public OrderService(Repository repository) {
            this.repository = repository;
        }

        public int Submit(Order order) {
            if (order == null) {
                throw new ArgumentException("order");
            }
            pending.Add(order);
            Count++;
            return Count;
        }

        public Order FindFirst(string id) {
            foreach (var order in pending) {
                if (order.Id == id) {
                    return order;
                }
            }
            return null;
        }
    }
}
"#;
    let ast = pigeon_csharp::parse(src).unwrap();
    ast.check_invariants().unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains("(NamespaceDeclaration (Name App.Services)"));
    assert!(text.contains(
        "(PropertyDeclaration (Modifier public) (PredefinedType int) \
                           (Identifier Count) (AccessorList (GetAccessor) (SetAccessor)))"
    ));
    assert!(text.contains(
        "(ThrowStatement (ObjectCreationExpression (TypeName \
                           ArgumentException)"
    ));
    assert_eq!(ast.leaves_with_value(Symbol::new("pending")).len(), 3);
    assert_eq!(ast.leaves_with_value(Symbol::new("order")).len(), 7);
    let methods = ast
        .preorder()
        .filter(|&n| ast.kind(n).as_str() == "MethodDeclaration")
        .count();
    assert_eq!(methods, 2);
}

#[test]
fn linq_free_pipeline_with_lambdas() {
    let src = "class A { public void Wire(Bus bus) { bus.Subscribe(msg => Handle(msg)); \
               var stop = () => bus.Close(); stop(); } }";
    let ast = pigeon_csharp::parse(src).unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains("(SimpleLambdaExpression (Parameter (Identifier msg))"));
    assert!(text.contains("(ParenthesizedLambdaExpression (InvocationExpression"));
}

#[test]
fn nullable_coalesce_cast_combination() {
    let src = "class A { public string Pick(object raw, string fallback) { string s = \
               raw as string ?? fallback; int? n = null; return s; } }";
    let ast = pigeon_csharp::parse(src).unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains(
        "(CoalesceExpression (AsExpression (IdentifierName raw) \
                           (PredefinedType string)) (IdentifierName fallback))"
    ));
    assert!(text.contains("(NullableType (PredefinedType int))"));
}

#[test]
fn do_while_and_switch() {
    let src = "class A { public int Step(int x) { do { x--; } while (x > 10); switch (x) \
               { case 0: return 0; default: return x; } } }";
    let ast = pigeon_csharp::parse(src).unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains("(DoStatement (Block (ExpressionStatement (PostfixUnaryExpression--"));
    assert!(text.contains(
        "(CaseSwitchLabel (NumericLiteral 0) (ReturnStatement \
                           (NumericLiteral 0)))"
    ));
}
