//! Tokenizer for the C# subset.

use std::fmt;

/// The lexical category of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// An integer or floating-point literal.
    Number,
    /// A string literal (text excludes the quotes).
    String,
    /// A character literal (text excludes the quotes).
    Char,
    /// A punctuation or operator token.
    Punct,
    /// End of input.
    Eof,
}

/// One lexical token with its text and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// The token's source text (for strings/chars: unquoted contents).
    pub text: String,
    /// Byte offset of the first character in the source.
    pub offset: u32,
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// C# reserved keywords recognised by the parser. Contextual keywords
/// (`var`, `get`, `set`) are deliberately absent: they remain valid
/// identifiers, as in the language.
pub const KEYWORDS: &[&str] = &[
    "using",
    "namespace",
    "public",
    "private",
    "protected",
    "internal",
    "static",
    "readonly",
    "sealed",
    "abstract",
    "override",
    "virtual",
    "class",
    "interface",
    "struct",
    "void",
    "int",
    "long",
    "short",
    "float",
    "double",
    "decimal",
    "bool",
    "string",
    "char",
    "byte",
    "object",
    "new",
    "if",
    "else",
    "while",
    "do",
    "for",
    "foreach",
    "in",
    "return",
    "break",
    "continue",
    "this",
    "base",
    "null",
    "true",
    "false",
    "try",
    "catch",
    "finally",
    "throw",
    "switch",
    "case",
    "default",
    "is",
    "as",
    "out",
    "ref",
];

/// Whether `text` is a reserved word.
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Predefined (built-in) type keywords.
pub const PREDEFINED_TYPES: &[&str] = &[
    "int", "long", "short", "float", "double", "decimal", "bool", "string", "char", "byte",
    "object", "void",
];

const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "=>", "??",
];
const PUNCT1: &[char] = &[
    '(', ')', '{', '}', '[', ']', ';', ',', '.', '=', '<', '>', '+', '-', '*', '/', '%', '!', '?',
    ':', '&', '|', '^', '~', '@',
];

/// Tokenizes `source`, skipping whitespace and comments.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated literals or comments, or on a
/// character outside the subset's alphabet.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    let start = i;
                    i += 2;
                    loop {
                        if i + 1 >= bytes.len() {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                offset: start as u32,
                            });
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }
        let offset = i as u32;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: source[start..i].to_owned(),
                offset,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                let decimal_point =
                    ch == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit();
                if ch.is_ascii_alphanumeric() || ch == '_' || decimal_point {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[start..i].to_owned(),
                offset,
            });
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = c;
            let start = i;
            i += 1;
            let mut text = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: format!(
                            "unterminated {} literal",
                            if quote == '"' { "string" } else { "char" }
                        ),
                        offset: start as u32,
                    });
                }
                let ch = bytes[i] as char;
                if ch == quote {
                    i += 1;
                    break;
                }
                if ch == '\\' && i + 1 < bytes.len() {
                    let esc = bytes[i + 1] as char;
                    text.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '0' => '\0',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                text.push(ch);
                i += 1;
            }
            tokens.push(Token {
                kind: if quote == '"' {
                    TokenKind::String
                } else {
                    TokenKind::Char
                },
                text,
                offset,
            });
            continue;
        }
        let rest = &source[i..];
        if let Some(p) = PUNCT2.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: (*p).to_owned(),
                offset,
            });
            i += p.len();
            continue;
        }
        if PUNCT1.contains(&c) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                offset,
            });
            i += 1;
            continue;
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            offset,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        text: String::new(),
        offset: bytes.len() as u32,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_line() {
        assert_eq!(texts("var count = 0;"), ["var", "count", "=", "0", ";"]);
    }

    #[test]
    fn lambda_arrow_and_null_coalesce() {
        assert_eq!(texts("x => y ?? z"), ["x", "=>", "y", "??", "z"]);
    }

    #[test]
    fn contextual_keywords_stay_identifiers() {
        assert!(!is_keyword("var"));
        assert!(!is_keyword("get"));
        assert!(!is_keyword("set"));
        assert!(is_keyword("foreach"));
    }

    #[test]
    fn string_and_char_literals() {
        let toks = tokenize("string s = \"hi\"; char c = 'x';").unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::String && t.text == "hi"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(texts("a // x\n b /* y */ c"), ["a", "b", "c"]);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("a $ b").is_err());
    }
}
