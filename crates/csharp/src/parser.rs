//! Recursive-descent parser for the C# subset.
//!
//! Node kinds are Roslyn-flavoured: `CompilationUnit`,
//! `NamespaceDeclaration`, `ClassDeclaration`, `MethodDeclaration`,
//! `LocalDeclarationStatement` → `VariableDeclaration` →
//! `VariableDeclarator` → `EqualsValueClause`, and invocations wrap
//! arguments in `ArgumentList` → `Argument`. These extra wrapper layers
//! make C# paths slightly longer than Java's for the same surface code —
//! the paper notes exactly this ("the C# AST is slightly more elaborate
//! than the one we used for Java", §5.5), which is why C#'s best
//! `max_width` is 4 where Java's is 3.

use crate::lexer::{is_keyword, tokenize, LexError, Token, TokenKind, PREDEFINED_TYPES};
use pigeon_ast::{Ast, TreeNode};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a C# compilation unit into a PIGEON AST rooted at
/// `CompilationUnit`.
///
/// # Errors
///
/// Returns [`ParseError`] on input outside the supported subset.
///
/// ```
/// # fn main() -> Result<(), pigeon_csharp::ParseError> {
/// let ast = pigeon_csharp::parse("class A { int x; }")?;
/// assert!(pigeon_ast::sexp(&ast).contains("ClassDeclaration"));
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Ast, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut children = Vec::new();
    while p.at("using") {
        p.bump();
        let name = p.qualified_name()?;
        p.expect(";")?;
        children.push(TreeNode::inner(
            "UsingDirective",
            vec![TreeNode::leaf("Name", name.as_str())],
        ));
    }
    while !p.at_eof() {
        if p.at("namespace") {
            p.bump();
            let name = p.qualified_name()?;
            let mut ns = vec![TreeNode::leaf("Name", name.as_str())];
            p.expect("{")?;
            while !p.at("}") {
                ns.push(p.type_decl()?);
            }
            p.expect("}")?;
            children.push(TreeNode::inner("NamespaceDeclaration", ns));
        } else {
            children.push(p.type_decl()?);
        }
    }
    Ok(TreeNode::inner("CompilationUnit", children).into_ast())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult = Result<TreeNode, ParseError>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, n: usize) -> &Token {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn at(&self, text: &str) -> bool {
        let t = self.peek();
        matches!(t.kind, TokenKind::Ident | TokenKind::Punct) && t.text == text
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.at(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseError> {
        if self.at(text) {
            Ok(self.bump())
        } else {
            Err(self.error(&format!("expected `{text}`, found `{}`", self.peek().text)))
        }
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.peek().offset,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            Ok(self.bump().text)
        } else {
            Err(self.error(&format!("expected identifier, found `{}`", t.text)))
        }
    }

    fn qualified_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.ident()?;
        while self.at(".") {
            self.bump();
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    fn skip_attributes(&mut self) {
        while self.at("[") {
            let mut depth = 0usize;
            loop {
                if self.at("[") {
                    depth += 1;
                } else if self.at("]") {
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                    continue;
                } else if self.at_eof() {
                    break;
                }
                self.bump();
            }
        }
    }

    fn modifiers(&mut self) -> Vec<TreeNode> {
        let mut mods = Vec::new();
        loop {
            self.skip_attributes();
            let t = self.peek();
            if t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "public"
                        | "private"
                        | "protected"
                        | "internal"
                        | "static"
                        | "readonly"
                        | "sealed"
                        | "abstract"
                        | "override"
                        | "virtual"
                )
            {
                let m = self.bump().text;
                mods.push(TreeNode::leaf("Modifier", m.as_str()));
            } else {
                return mods;
            }
        }
    }

    // ---- declarations ---------------------------------------------------

    fn type_decl(&mut self) -> PResult {
        let mut children = self.modifiers();
        let kind = if self.eat("interface") {
            "InterfaceDeclaration"
        } else if self.eat("struct") {
            "StructDeclaration"
        } else {
            self.expect("class")?;
            "ClassDeclaration"
        };
        let name = self.ident()?;
        children.push(TreeNode::leaf("Identifier", name.as_str()));
        if self.eat(":") {
            let mut bases = vec![self.type_node()?];
            while self.eat(",") {
                bases.push(self.type_node()?);
            }
            children.push(TreeNode::inner("BaseList", bases));
        }
        self.expect("{")?;
        while !self.at("}") {
            children.push(self.member(&name)?);
        }
        self.expect("}")?;
        Ok(TreeNode::inner(kind, children))
    }

    fn member(&mut self, class_name: &str) -> PResult {
        let mut children = self.modifiers();
        // Constructor: `ClassName (`.
        if self.peek().text == class_name && self.peek_at(1).text == "(" {
            let name = self.ident()?;
            children.push(TreeNode::leaf("Identifier", name.as_str()));
            children.push(self.parameter_list()?);
            children.push(self.block()?);
            return Ok(TreeNode::inner("ConstructorDeclaration", children));
        }
        let ty = self.type_node()?;
        let name = self.ident()?;
        if self.at("(") {
            children.push(ty);
            children.push(TreeNode::leaf("Identifier", name.as_str()));
            children.push(self.parameter_list()?);
            if self.eat(";") {
                // Interface/abstract method.
            } else if self.at("=>") {
                // Expression-bodied member.
                self.bump();
                let e = self.expression()?;
                self.expect(";")?;
                children.push(TreeNode::inner("ArrowExpressionClause", vec![e]));
            } else {
                children.push(self.block()?);
            }
            return Ok(TreeNode::inner("MethodDeclaration", children));
        }
        if self.at("{") {
            // Property with accessor list.
            children.push(ty);
            children.push(TreeNode::leaf("Identifier", name.as_str()));
            self.bump();
            let mut accessors = Vec::new();
            while !self.at("}") {
                let acc = self.ident()?;
                let kind = match acc.as_str() {
                    "get" => "GetAccessor",
                    "set" => "SetAccessor",
                    other => return Err(self.error(&format!("unknown accessor `{other}`"))),
                };
                if self.at("{") {
                    accessors.push(TreeNode::inner(kind, vec![self.block()?]));
                } else {
                    self.expect(";")?;
                    accessors.push(TreeNode::nullary(kind));
                }
            }
            self.expect("}")?;
            children.push(TreeNode::inner("AccessorList", accessors));
            if self.eat("=") {
                let init = self.expression()?;
                children.push(TreeNode::inner("EqualsValueClause", vec![init]));
                self.expect(";")?;
            }
            return Ok(TreeNode::inner("PropertyDeclaration", children));
        }
        // Field declaration.
        children.push(ty);
        let mut decl = vec![TreeNode::leaf("Identifier", name.as_str())];
        if self.eat("=") {
            decl.push(TreeNode::inner(
                "EqualsValueClause",
                vec![self.expression()?],
            ));
        }
        let mut declarators = vec![TreeNode::inner("VariableDeclarator", decl)];
        while self.eat(",") {
            let n = self.ident()?;
            let mut d = vec![TreeNode::leaf("Identifier", n.as_str())];
            if self.eat("=") {
                d.push(TreeNode::inner(
                    "EqualsValueClause",
                    vec![self.expression()?],
                ));
            }
            declarators.push(TreeNode::inner("VariableDeclarator", d));
        }
        self.expect(";")?;
        children.extend(declarators);
        Ok(TreeNode::inner("FieldDeclaration", children))
    }

    fn parameter_list(&mut self) -> PResult {
        self.expect("(")?;
        let mut params = Vec::new();
        while !self.at(")") {
            self.eat("out");
            self.eat("ref");
            let ty = self.type_node()?;
            let name = self.ident()?;
            params.push(TreeNode::inner(
                "Parameter",
                vec![ty, TreeNode::leaf("Identifier", name.as_str())],
            ));
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(TreeNode::inner("ParameterList", params))
    }

    // ---- types ----------------------------------------------------------

    fn type_node(&mut self) -> PResult {
        let mut base = self.base_type_node()?;
        loop {
            if self.at("[") && self.peek_at(1).text == "]" {
                self.bump();
                self.expect("]")?;
                base = TreeNode::inner("ArrayType", vec![base]);
            } else if self.at("?") {
                self.bump();
                base = TreeNode::inner("NullableType", vec![base]);
            } else {
                return Ok(base);
            }
        }
    }

    fn base_type_node(&mut self) -> PResult {
        let t = self.peek().clone();
        if t.kind == TokenKind::Ident && PREDEFINED_TYPES.contains(&t.text.as_str()) {
            self.bump();
            return Ok(TreeNode::leaf("PredefinedType", t.text.as_str()));
        }
        let name = self.qualified_name()?;
        if self.at("<") {
            self.bump();
            let mut args = Vec::new();
            if !self.at(">") {
                args.push(self.type_node()?);
                while self.eat(",") {
                    args.push(self.type_node()?);
                }
            }
            self.expect(">")?;
            return Ok(TreeNode::inner(
                "GenericName",
                vec![
                    TreeNode::leaf("TypeName", name.as_str()),
                    TreeNode::inner("TypeArgumentList", args),
                ],
            ));
        }
        Ok(TreeNode::leaf("TypeName", name.as_str()))
    }

    fn try_decl_head(&mut self) -> Option<(TreeNode, String)> {
        let save = self.pos;
        let ty = match self.type_node() {
            Ok(t) => t,
            Err(_) => {
                self.pos = save;
                return None;
            }
        };
        match self.ident() {
            Ok(name) if self.at("=") || self.at(";") || self.at(",") || self.at("in") => {
                Some((ty, name))
            }
            _ => {
                self.pos = save;
                None
            }
        }
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> PResult {
        self.expect("{")?;
        let mut stmts = Vec::new();
        while !self.at("}") {
            stmts.push(self.statement()?);
        }
        self.expect("}")?;
        Ok(TreeNode::inner("Block", stmts))
    }

    fn statement(&mut self) -> PResult {
        if self.at("{") {
            return self.block();
        }
        if self.at("if") {
            self.bump();
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            let then = self.statement()?;
            let mut children = vec![cond, then];
            if self.eat("else") {
                children.push(self.statement()?);
            }
            return Ok(TreeNode::inner("IfStatement", children));
        }
        if self.at("while") {
            self.bump();
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            let body = self.statement()?;
            return Ok(TreeNode::inner("WhileStatement", vec![cond, body]));
        }
        if self.at("do") {
            self.bump();
            let body = self.statement()?;
            self.expect("while")?;
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(TreeNode::inner("DoStatement", vec![body, cond]));
        }
        if self.at("for") {
            return self.for_statement();
        }
        if self.at("foreach") {
            self.bump();
            self.expect("(")?;
            let ty = self.type_node()?;
            let name = self.ident()?;
            self.expect("in")?;
            let iterable = self.expression()?;
            self.expect(")")?;
            let body = self.statement()?;
            return Ok(TreeNode::inner(
                "ForEachStatement",
                vec![
                    ty,
                    TreeNode::leaf("Identifier", name.as_str()),
                    iterable,
                    body,
                ],
            ));
        }
        if self.at("return") {
            self.bump();
            let mut children = Vec::new();
            if !self.at(";") {
                children.push(self.expression()?);
            }
            self.expect(";")?;
            return Ok(TreeNode::inner("ReturnStatement", children));
        }
        if self.at("break") {
            self.bump();
            self.expect(";")?;
            return Ok(TreeNode::nullary("BreakStatement"));
        }
        if self.at("continue") {
            self.bump();
            self.expect(";")?;
            return Ok(TreeNode::nullary("ContinueStatement"));
        }
        if self.at("throw") {
            self.bump();
            let e = self.expression()?;
            self.expect(";")?;
            return Ok(TreeNode::inner("ThrowStatement", vec![e]));
        }
        if self.at("try") {
            return self.try_statement();
        }
        if self.at("switch") {
            return self.switch_statement();
        }
        if let Some((ty, name)) = self.try_decl_head() {
            let mut decl = vec![TreeNode::leaf("Identifier", name.as_str())];
            if self.eat("=") {
                decl.push(TreeNode::inner(
                    "EqualsValueClause",
                    vec![self.expression()?],
                ));
            }
            let mut declarators = vec![TreeNode::inner("VariableDeclarator", decl)];
            while self.eat(",") {
                let n = self.ident()?;
                let mut d = vec![TreeNode::leaf("Identifier", n.as_str())];
                if self.eat("=") {
                    d.push(TreeNode::inner(
                        "EqualsValueClause",
                        vec![self.expression()?],
                    ));
                }
                declarators.push(TreeNode::inner("VariableDeclarator", d));
            }
            self.expect(";")?;
            let mut vd = vec![ty];
            vd.extend(declarators);
            return Ok(TreeNode::inner(
                "LocalDeclarationStatement",
                vec![TreeNode::inner("VariableDeclaration", vd)],
            ));
        }
        let e = self.expression()?;
        self.expect(";")?;
        Ok(TreeNode::inner("ExpressionStatement", vec![e]))
    }

    fn for_statement(&mut self) -> PResult {
        self.expect("for")?;
        self.expect("(")?;
        let mut children = Vec::new();
        if !self.at(";") {
            if let Some((ty, name)) = self.try_decl_head() {
                let mut decl = vec![TreeNode::leaf("Identifier", name.as_str())];
                if self.eat("=") {
                    decl.push(TreeNode::inner(
                        "EqualsValueClause",
                        vec![self.expression()?],
                    ));
                }
                children.push(TreeNode::inner(
                    "VariableDeclaration",
                    vec![ty, TreeNode::inner("VariableDeclarator", decl)],
                ));
            } else {
                children.push(self.expression()?);
            }
        }
        self.expect(";")?;
        if !self.at(";") {
            children.push(self.expression()?);
        }
        self.expect(";")?;
        if !self.at(")") {
            children.push(self.expression()?);
        }
        self.expect(")")?;
        children.push(self.statement()?);
        Ok(TreeNode::inner("ForStatement", children))
    }

    fn try_statement(&mut self) -> PResult {
        self.expect("try")?;
        let mut children = vec![self.block()?];
        while self.at("catch") {
            self.bump();
            let mut c = Vec::new();
            if self.eat("(") {
                let ty = self.type_node()?;
                c.push(ty);
                if !self.at(")") {
                    c.push(TreeNode::leaf("Identifier", self.ident()?.as_str()));
                }
                self.expect(")")?;
            }
            c.push(self.block()?);
            children.push(TreeNode::inner("CatchClause", c));
        }
        if self.eat("finally") {
            children.push(TreeNode::inner("FinallyClause", vec![self.block()?]));
        }
        if children.len() == 1 {
            return Err(self.error("try requires catch or finally"));
        }
        Ok(TreeNode::inner("TryStatement", children))
    }

    fn switch_statement(&mut self) -> PResult {
        self.expect("switch")?;
        self.expect("(")?;
        let scrutinee = self.expression()?;
        self.expect(")")?;
        self.expect("{")?;
        let mut children = vec![scrutinee];
        while !self.at("}") {
            if self.eat("case") {
                let v = self.expression()?;
                self.expect(":")?;
                let mut body = vec![v];
                while !self.at("case") && !self.at("default") && !self.at("}") {
                    body.push(self.statement()?);
                }
                children.push(TreeNode::inner("CaseSwitchLabel", body));
            } else {
                self.expect("default")?;
                self.expect(":")?;
                let mut body = Vec::new();
                while !self.at("case") && !self.at("default") && !self.at("}") {
                    body.push(self.statement()?);
                }
                children.push(TreeNode::inner("DefaultSwitchLabel", body));
            }
        }
        self.expect("}")?;
        Ok(TreeNode::inner("SwitchStatement", children))
    }

    // ---- expressions ----------------------------------------------------

    fn expression(&mut self) -> PResult {
        let lhs = self.conditional()?;
        for op in ["=", "+=", "-=", "*=", "/=", "%="] {
            if self.at(op) {
                self.bump();
                let rhs = self.expression()?;
                return Ok(TreeNode::inner(
                    format!("AssignmentExpression{op}").as_str(),
                    vec![lhs, rhs],
                ));
            }
        }
        Ok(lhs)
    }

    fn conditional(&mut self) -> PResult {
        let cond = self.coalesce()?;
        if self.eat("?") {
            let then = self.expression()?;
            self.expect(":")?;
            let alt = self.expression()?;
            return Ok(TreeNode::inner(
                "ConditionalExpression",
                vec![cond, then, alt],
            ));
        }
        Ok(cond)
    }

    fn coalesce(&mut self) -> PResult {
        let lhs = self.binary(0)?;
        if self.at("??") {
            self.bump();
            let rhs = self.coalesce()?;
            return Ok(TreeNode::inner("CoalesceExpression", vec![lhs, rhs]));
        }
        Ok(lhs)
    }

    const BINARY_TIERS: [&'static [&'static str]; 6] = [
        &["||"],
        &["&&"],
        &["==", "!="],
        &["<", ">", "<=", ">=", "is", "as"],
        &["+", "-"],
        &["*", "/", "%"],
    ];

    fn binary(&mut self, tier: usize) -> PResult {
        if tier >= Self::BINARY_TIERS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(tier + 1)?;
        loop {
            let op = Self::BINARY_TIERS[tier]
                .iter()
                .find(|op| self.at(op))
                .copied();
            match op {
                Some("is") => {
                    self.bump();
                    let ty = self.type_node()?;
                    lhs = TreeNode::inner("IsExpression", vec![lhs, ty]);
                }
                Some("as") => {
                    self.bump();
                    let ty = self.type_node()?;
                    lhs = TreeNode::inner("AsExpression", vec![lhs, ty]);
                }
                Some(op) => {
                    self.bump();
                    let rhs = self.binary(tier + 1)?;
                    lhs = TreeNode::inner(format!("BinaryExpression{op}").as_str(), vec![lhs, rhs]);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> PResult {
        for op in ["!", "-", "+", "++", "--"] {
            if self.at(op) {
                self.bump();
                let operand = self.unary()?;
                return Ok(TreeNode::inner(
                    format!("PrefixUnaryExpression{op}").as_str(),
                    vec![operand],
                ));
            }
        }
        self.postfix()
    }

    fn argument_list(&mut self) -> PResult {
        self.expect("(")?;
        let mut args = Vec::new();
        while !self.at(")") {
            self.eat("out");
            self.eat("ref");
            args.push(TreeNode::inner("Argument", vec![self.expression()?]));
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(TreeNode::inner("ArgumentList", args))
    }

    fn postfix(&mut self) -> PResult {
        let mut e = self.primary()?;
        loop {
            if self.at(".") {
                self.bump();
                let name = self.ident()?;
                e = TreeNode::inner(
                    "SimpleMemberAccessExpression",
                    vec![e, TreeNode::leaf("IdentifierName", name.as_str())],
                );
            } else if self.at("(") {
                let args = self.argument_list()?;
                e = TreeNode::inner("InvocationExpression", vec![e, args]);
            } else if self.at("[") {
                self.bump();
                let idx = self.expression()?;
                self.expect("]")?;
                e = TreeNode::inner(
                    "ElementAccessExpression",
                    vec![e, TreeNode::inner("BracketedArgumentList", vec![idx])],
                );
            } else if self.at("++") || self.at("--") {
                let op = self.bump().text;
                e = TreeNode::inner(format!("PostfixUnaryExpression{op}").as_str(), vec![e]);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> PResult {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Number => {
                self.bump();
                Ok(TreeNode::leaf("NumericLiteral", t.text.as_str()))
            }
            TokenKind::String => {
                self.bump();
                Ok(TreeNode::leaf("StringLiteral", t.text.as_str()))
            }
            TokenKind::Char => {
                self.bump();
                Ok(TreeNode::leaf("CharacterLiteral", t.text.as_str()))
            }
            TokenKind::Ident => match t.text.as_str() {
                "true" => {
                    self.bump();
                    Ok(TreeNode::leaf("TrueLiteral", "true"))
                }
                "false" => {
                    self.bump();
                    Ok(TreeNode::leaf("FalseLiteral", "false"))
                }
                "null" => {
                    self.bump();
                    Ok(TreeNode::leaf("NullLiteral", "null"))
                }
                "this" => {
                    self.bump();
                    Ok(TreeNode::leaf("ThisExpression", "this"))
                }
                "base" => {
                    self.bump();
                    Ok(TreeNode::leaf("BaseExpression", "base"))
                }
                "new" => {
                    self.bump();
                    let ty = self.base_type_node()?;
                    if self.at("[") {
                        self.bump();
                        let size = self.expression()?;
                        self.expect("]")?;
                        return Ok(TreeNode::inner("ArrayCreationExpression", vec![ty, size]));
                    }
                    let args = self.argument_list()?;
                    Ok(TreeNode::inner("ObjectCreationExpression", vec![ty, args]))
                }
                _ if is_keyword(&t.text) => {
                    Err(self.error(&format!("unexpected keyword `{}`", t.text)))
                }
                _ => {
                    // Simple lambda: `x => expr`.
                    if self.peek_at(1).text == "=>" && self.peek_at(1).kind == TokenKind::Punct {
                        let p = self.ident()?;
                        self.expect("=>")?;
                        let body = if self.at("{") {
                            self.block()?
                        } else {
                            self.expression()?
                        };
                        return Ok(TreeNode::inner(
                            "SimpleLambdaExpression",
                            vec![
                                TreeNode::inner(
                                    "Parameter",
                                    vec![TreeNode::leaf("Identifier", p.as_str())],
                                ),
                                body,
                            ],
                        ));
                    }
                    self.bump();
                    Ok(TreeNode::leaf("IdentifierName", t.text.as_str()))
                }
            },
            TokenKind::Punct if t.text == "(" => {
                if self.paren_starts_lambda() {
                    self.bump();
                    let mut params = Vec::new();
                    while !self.at(")") {
                        let p = self.ident()?;
                        params.push(TreeNode::inner(
                            "Parameter",
                            vec![TreeNode::leaf("Identifier", p.as_str())],
                        ));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect(")")?;
                    self.expect("=>")?;
                    let body = if self.at("{") {
                        self.block()?
                    } else {
                        self.expression()?
                    };
                    params.push(body);
                    return Ok(TreeNode::inner("ParenthesizedLambdaExpression", params));
                }
                self.bump();
                let e = self.expression()?;
                self.expect(")")?;
                Ok(e)
            }
            _ => Err(self.error(&format!("unexpected token `{}`", t.text))),
        }
    }

    fn paren_starts_lambda(&self) -> bool {
        let mut depth = 0usize;
        let mut i = self.pos;
        loop {
            let t = &self.tokens[i];
            match t.kind {
                TokenKind::Eof => return false,
                TokenKind::Punct if t.text == "(" => depth += 1,
                TokenKind::Punct if t.text == ")" => {
                    depth -= 1;
                    if depth == 0 {
                        let next = &self.tokens[(i + 1).min(self.tokens.len() - 1)];
                        return next.kind == TokenKind::Punct && next.text == "=>";
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::sexp;

    fn s(src: &str) -> String {
        sexp(&parse(src).unwrap())
    }

    #[test]
    fn locals_wrap_in_equals_value_clause() {
        let text = s("class A { void F() { int count = 0; } }");
        assert!(text.contains(
            "(LocalDeclarationStatement (VariableDeclaration (PredefinedType int) \
             (VariableDeclarator (Identifier count) (EqualsValueClause (NumericLiteral \
             0)))))"
        ));
    }

    #[test]
    fn invocations_wrap_arguments() {
        let text = s("class A { void F(HttpClient client) { client.Execute(request, 2); } }");
        assert!(text.contains(
            "(InvocationExpression (SimpleMemberAccessExpression (IdentifierName client) \
             (IdentifierName Execute)) (ArgumentList (Argument (IdentifierName request)) \
             (Argument (NumericLiteral 2))))"
        ));
    }

    #[test]
    fn namespaces_and_usings() {
        let text = s("using System; namespace App.Core { class A { } }");
        assert!(text.contains("(UsingDirective (Name System))"));
        assert!(text.contains(
            "(NamespaceDeclaration (Name App.Core) (ClassDeclaration \
                               (Identifier A)))"
        ));
    }

    #[test]
    fn var_declarations() {
        let text = s("class A { void F() { var items = GetItems(); } }");
        assert!(text.contains(
            "(VariableDeclaration (TypeName var) (VariableDeclarator \
                               (Identifier items)"
        ));
    }

    #[test]
    fn foreach_loop() {
        let text = s(
            "class A { void F(List<int> values) { foreach (var v in values) { \
                      Use(v); } } }",
        );
        assert!(text
            .contains("(ForEachStatement (TypeName var) (Identifier v) (IdentifierName values)"));
    }

    #[test]
    fn properties_with_accessors() {
        let text = s("class A { public int Count { get; set; } }");
        assert!(text.contains(
            "(PropertyDeclaration (Modifier public) (PredefinedType int) \
                               (Identifier Count) (AccessorList (GetAccessor) \
                               (SetAccessor)))"
        ));
    }

    #[test]
    fn while_done_loop_matches_paper_shape() {
        let text = s(
            "class A { void F() { bool done = false; while (!done) { if (Check()) \
                      { done = true; } } } }",
        );
        assert!(text.contains(
            "(WhileStatement (PrefixUnaryExpression! (IdentifierName \
                               done))"
        ));
        assert!(text.contains(
            "(AssignmentExpression= (IdentifierName done) (TrueLiteral \
                               true))"
        ));
    }

    #[test]
    fn lambdas() {
        let text = s("class A { void F() { var f = x => x + 1; var g = (a, b) => a; } }");
        assert!(text.contains(
            "(SimpleLambdaExpression (Parameter (Identifier x)) \
                               (BinaryExpression+ (IdentifierName x) (NumericLiteral 1)))"
        ));
        assert!(text.contains(
            "(ParenthesizedLambdaExpression (Parameter (Identifier a)) \
                               (Parameter (Identifier b)) (IdentifierName a))"
        ));
    }

    #[test]
    fn generics_nullable_and_arrays() {
        let text = s("class A { Dictionary<string, List<int>> map; int? maybe; int[] xs; }");
        assert!(text.contains(
            "(GenericName (TypeName Dictionary) (TypeArgumentList \
                               (PredefinedType string) (GenericName (TypeName List) \
                               (TypeArgumentList (PredefinedType int)))))"
        ));
        assert!(text.contains("(NullableType (PredefinedType int))"));
        assert!(text.contains("(ArrayType (PredefinedType int))"));
    }

    #[test]
    fn try_catch_throw() {
        let text = s(
            "class A { void F() { try { G(); } catch (IOException e) { throw \
                      new AppException(e); } } }",
        );
        assert!(text.contains("(CatchClause (TypeName IOException) (Identifier e)"));
        assert!(text.contains(
            "(ThrowStatement (ObjectCreationExpression (TypeName \
                               AppException) (ArgumentList (Argument (IdentifierName \
                               e)))))"
        ));
    }

    #[test]
    fn expression_bodied_method() {
        let text = s("class A { int Twice(int x) => x * 2; }");
        assert!(text.contains(
            "(ArrowExpressionClause (BinaryExpression* (IdentifierName \
                               x) (NumericLiteral 2)))"
        ));
    }

    #[test]
    fn is_as_and_coalesce() {
        let text = s(
            "class A { void F(object o) { var s = o as string ?? Fallback(); \
                      if (o is string) { } } }",
        );
        assert!(text.contains(
            "(CoalesceExpression (AsExpression (IdentifierName o) \
                               (PredefinedType string))"
        ));
        assert!(text.contains("(IsExpression (IdentifierName o) (PredefinedType string))"));
    }

    #[test]
    fn classic_for_and_element_access() {
        let text = s(
            "class A { int Sum(int[] xs) { int total = 0; for (int i = 0; i < 10; \
                      i++) { total += xs[i]; } return total; } }",
        );
        assert!(text.contains(
            "(ForStatement (VariableDeclaration (PredefinedType int) \
                               (VariableDeclarator (Identifier i) (EqualsValueClause \
                               (NumericLiteral 0))))"
        ));
        assert!(text.contains(
            "(ElementAccessExpression (IdentifierName xs) \
                               (BracketedArgumentList (IdentifierName i)))"
        ));
    }

    #[test]
    fn switch_statement() {
        let text = s(
            "class A { int F(int x) { switch (x) { case 1: return 1; default: \
                      return 0; } } }",
        );
        assert!(text.contains(
            "(SwitchStatement (IdentifierName x) (CaseSwitchLabel \
                               (NumericLiteral 1) (ReturnStatement (NumericLiteral 1))) \
                               (DefaultSwitchLabel (ReturnStatement (NumericLiteral 0))))"
        ));
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("class { }").is_err());
        assert!(parse("class A { void F() { if } }").is_err());
        assert!(parse("class A { int X { wrong; } }").is_err());
    }

    #[test]
    fn invariants_hold() {
        let ast =
            parse("namespace N { class Counter { int count; public void Add() { count++; } } }")
                .unwrap();
        ast.check_invariants().unwrap();
    }
}
