//! C#-subset frontend producing PIGEON ASTs.
//!
//! Node kinds are Roslyn-flavoured (the parser the paper's PIGEON tool
//! used for C#). Compared to the Java frontend, declarations and calls
//! carry extra wrapper layers (`VariableDeclaration` →
//! `VariableDeclarator` → `EqualsValueClause`; `InvocationExpression` →
//! `ArgumentList` → `Argument`), reproducing the paper's observation that
//! "the C# AST is slightly more elaborate than the one we used for Java"
//! (§5.5) — which is why C#'s best path parameters are wider.
//!
//! # Supported subset
//!
//! `using` directives, namespaces, class/interface/struct declarations
//! with base lists; fields, methods (including expression-bodied),
//! constructors, auto- and bodied properties; predefined, named, generic,
//! nullable and array types plus contextual `var`; the usual statement
//! suite (`if`, `while`, `do`, `for`, `foreach`, `switch`,
//! `try`/`catch`/`finally`, `return`, `break`, `continue`, `throw`);
//! and expressions with assignment, conditional, `??`, binary tiers,
//! `is`/`as`, unary/postfix operators, invocations, member and element
//! access, object/array creation and lambdas.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), pigeon_csharp::ParseError> {
//! let ast = pigeon_csharp::parse("class A { bool done = false; }")?;
//! assert!(pigeon_ast::sexp(&ast).contains("(Identifier done)"));
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;

pub use lexer::{is_keyword, tokenize, LexError, Token, TokenKind, KEYWORDS, PREDEFINED_TYPES};
pub use parser::{parse, ParseError};
