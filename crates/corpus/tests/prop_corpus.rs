//! Property tests: every corpus the generator can produce parses with
//! its language's frontend and satisfies the ground-truth contracts.

use pigeon_corpus::{generate, generate_java_types, CorpusConfig, Language};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = CorpusConfig> {
    (1usize..8, 1usize..4, 0.0f64..0.4, any::<u64>()).prop_map(|(files, max_fns, noise, seed)| {
        CorpusConfig {
            files,
            min_functions: 1,
            max_functions: max_fns,
            name_noise: noise,
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_generated_document_parses(cfg in config_strategy()) {
        for language in Language::ALL {
            let corpus = generate(language, &cfg);
            prop_assert_eq!(corpus.docs.len(), cfg.files);
            for doc in &corpus.docs {
                let ast = language
                    .parse(&doc.source)
                    .map_err(|e| TestCaseError::fail(format!("{language}: {e}\n{}", doc.source)))?;
                prop_assert!(ast.check_invariants().is_ok());
                // Every ground-truth name occurs in the tree.
                for v in &doc.truth.vars {
                    let found = ast.leaves().iter().any(|&l| {
                        ast.value(l).is_some_and(|s| s.as_str() == v.name)
                    });
                    prop_assert!(found, "{}: `{}` missing", language, v.name);
                }
            }
        }
    }

    #[test]
    fn typed_documents_parse_and_declare_their_truths(cfg in config_strategy()) {
        let corpus = generate_java_types(&cfg);
        for doc in &corpus.docs {
            let ast = Language::Java
                .parse(&doc.source)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{}", doc.source)))?;
            for t in &doc.truth.types {
                prop_assert!(
                    pigeon_eval_free_find(&ast, &t.var),
                    "typed var `{}` has no NameVar declaration",
                    t.var
                );
            }
        }
    }

    #[test]
    fn same_seed_same_corpus(cfg in config_strategy()) {
        for language in [Language::JavaScript, Language::CSharp] {
            let a = generate(language, &cfg);
            let b = generate(language, &cfg);
            for (x, y) in a.docs.iter().zip(&b.docs) {
                prop_assert_eq!(&x.source, &y.source);
            }
        }
    }
}

/// A declaration leaf named `var` exists (NameVar under a declarator) —
/// local re-implementation to keep this crate independent of pigeon-eval.
fn pigeon_eval_free_find(ast: &pigeon_ast::Ast, var: &str) -> bool {
    ast.leaves().iter().any(|&l| {
        ast.kind(l).as_str() == "NameVar" && ast.value(l).is_some_and(|s| s.as_str() == var)
    })
}
