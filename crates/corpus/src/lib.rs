//! Synthetic multi-language program corpora with role-conditioned naming.
//!
//! The paper trains on millions of files from GitHub (its Table 1). This
//! crate is the substitution documented in DESIGN.md: seeded generators
//! produce programs in all four evaluation languages whose identifier
//! names are statistically determined by each variable's syntactic role —
//! the exact dependency the path-based representation is designed to
//! exploit. A controllable noise level plays the part of real-world
//! naming idiosyncrasy, and a typed-Java generator with ambiguous simple
//! names (`Connection`, `Document`) drives the full-type prediction task.
//!
//! # Example
//!
//! ```
//! use pigeon_corpus::{generate, CorpusConfig, Language};
//!
//! let corpus = generate(Language::JavaScript, &CorpusConfig::default().with_files(3));
//! assert_eq!(corpus.docs.len(), 3);
//! let ast = Language::JavaScript.parse(&corpus.docs[0].source).unwrap();
//! assert!(!ast.leaves().is_empty());
//! ```

mod gen;
mod idiom;
mod names;
mod render;
mod types;

pub use gen::{
    generate, generate_document, generate_java_types, generate_type_document, CorpusConfig,
};
pub use idiom::{IdiomInstance, IdiomKind};
pub use names::{weighted_choice, NamePool, Role};
pub use types::{sample_spec, string_share, TypeSpec, TYPE_SPECS};

use pigeon_ast::Ast;

/// The four evaluation languages of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// JavaScript (UglifyJS-flavoured AST).
    JavaScript,
    /// Java (JavaParser-flavoured AST).
    Java,
    /// Python (CPython-ast-flavoured AST).
    Python,
    /// C# (Roslyn-flavoured AST).
    CSharp,
}

impl Language {
    /// All four languages in the paper's Table 1 order (Java first).
    pub const ALL: [Language; 4] = [
        Language::Java,
        Language::JavaScript,
        Language::Python,
        Language::CSharp,
    ];

    /// The display name used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            Language::JavaScript => "JavaScript",
            Language::Java => "Java",
            Language::Python => "Python",
            Language::CSharp => "C#",
        }
    }

    /// Parses a language from a case-insensitive name or common alias
    /// (`js`, `javascript`, `java`, `py`, `python`, `cs`, `csharp`, `c#`).
    pub fn from_name(name: &str) -> Option<Language> {
        match name.to_ascii_lowercase().as_str() {
            "js" | "javascript" => Some(Language::JavaScript),
            "java" => Some(Language::Java),
            "py" | "python" => Some(Language::Python),
            "cs" | "csharp" | "c#" => Some(Language::CSharp),
            _ => None,
        }
    }

    /// Parses `source` with this language's frontend.
    ///
    /// # Errors
    ///
    /// Returns the frontend's error message when `source` is outside the
    /// supported subset.
    pub fn parse(self, source: &str) -> Result<Ast, String> {
        match self {
            Language::JavaScript => pigeon_js::parse(source).map_err(|e| e.to_string()),
            Language::Java => pigeon_java::parse(source).map_err(|e| e.to_string()),
            Language::Python => pigeon_python::parse(source).map_err(|e| e.to_string()),
            Language::CSharp => pigeon_csharp::parse(source).map_err(|e| e.to_string()),
        }
    }
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A variable's ground truth: its surface name and the role that chose it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarTruth {
    /// The name as it appears in the source.
    pub name: String,
    /// The semantic role the generator assigned.
    pub role: Role,
}

/// A function's ground truth: its name and its primary idiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnTruth {
    /// The name as it appears in the source.
    pub name: String,
    /// The idiom the body implements.
    pub idiom: IdiomKind,
}

/// A typed declaration's ground truth for the full-type task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeTruth {
    /// The declared variable's name (unique within its file).
    pub var: String,
    /// The fully-qualified type — the label to predict.
    pub fqn: String,
}

/// Everything the generator knows about a document.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Local variables and parameters, with roles.
    pub vars: Vec<VarTruth>,
    /// Defined functions/methods, with idioms.
    pub functions: Vec<FnTruth>,
    /// Typed declarations (Java type corpus only).
    pub types: Vec<TypeTruth>,
}

/// One generated source file with its ground truth.
#[derive(Debug, Clone)]
pub struct Document {
    /// The source text.
    pub source: String,
    /// What the generator knows about it.
    pub truth: GroundTruth,
}

/// A set of documents in one language.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The language every document is written in.
    pub language: Language,
    /// The documents.
    pub docs: Vec<Document>,
}

/// Corpus size statistics, the analogue of the paper's Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of files.
    pub files: usize,
    /// Total source bytes.
    pub bytes: usize,
    /// Total functions.
    pub functions: usize,
    /// Total ground-truth variables.
    pub variables: usize,
}

impl Corpus {
    /// Splits into train/validation/test by the given fractions (the
    /// remainder is the test set). Documents are i.i.d. by construction,
    /// so a prefix split is unbiased.
    ///
    /// # Panics
    ///
    /// Panics unless `train_frac + valid_frac <= 1.0`.
    pub fn split(self, train_frac: f64, valid_frac: f64) -> (Corpus, Corpus, Corpus) {
        assert!(
            train_frac + valid_frac <= 1.0 + 1e-9,
            "fractions exceed the corpus"
        );
        let n = self.docs.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_valid = (n as f64 * valid_frac).round() as usize;
        let mut docs = self.docs;
        let rest = docs.split_off(n_train.min(docs.len()));
        let (valid_docs, test_docs) = {
            let mut rest = rest;
            let test = rest.split_off(n_valid.min(rest.len()));
            (rest, test)
        };
        (
            Corpus {
                language: self.language,
                docs,
            },
            Corpus {
                language: self.language,
                docs: valid_docs,
            },
            Corpus {
                language: self.language,
                docs: test_docs,
            },
        )
    }

    /// Checks that every document parses back into a structurally sound
    /// AST. Generators are trusted to emit valid programs; this makes
    /// that trust checkable (`pigeon generate` performs the same
    /// round-trip, plus the full audit, before writing any file). The
    /// error names the offending document index and the parser's (or
    /// invariant checker's) message.
    pub fn validate_roundtrip(&self) -> Result<(), String> {
        for (i, doc) in self.docs.iter().enumerate() {
            let ast = self
                .language
                .parse(&doc.source)
                .map_err(|e| format!("document {i} failed to parse: {e}"))?;
            ast.check_invariants()
                .map_err(|e| format!("document {i} produced a malformed AST: {e}"))?;
        }
        Ok(())
    }

    /// Size statistics for reporting (Table 1).
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            files: self.docs.len(),
            bytes: self.docs.iter().map(|d| d.source.len()).sum(),
            functions: self.docs.iter().map(|d| d.truth.functions.len()).sum(),
            variables: self.docs.iter().map(|d| d.truth.vars.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_the_corpus() {
        let corpus = generate(Language::Python, &CorpusConfig::default().with_files(100));
        let (train, valid, test) = corpus.split(0.7, 0.1);
        assert_eq!(train.docs.len(), 70);
        assert_eq!(valid.docs.len(), 10);
        assert_eq!(test.docs.len(), 20);
    }

    #[test]
    #[should_panic(expected = "fractions exceed")]
    fn overfull_split_panics() {
        let corpus = generate(Language::Python, &CorpusConfig::default().with_files(4));
        let _ = corpus.split(0.9, 0.4);
    }

    #[test]
    fn generated_corpora_roundtrip_in_every_language() {
        for language in Language::ALL {
            let corpus = generate(language, &CorpusConfig::default().with_files(10));
            corpus
                .validate_roundtrip()
                .unwrap_or_else(|e| panic!("{}: {e}", language.name()));
        }
    }

    #[test]
    fn roundtrip_rejects_an_unparsable_document() {
        let corpus = Corpus {
            language: Language::Java,
            docs: vec![Document {
                source: "class {{{ nope".to_string(),
                truth: GroundTruth::default(),
            }],
        };
        let err = corpus.validate_roundtrip().unwrap_err();
        assert!(err.contains("document 0"), "{err}");
    }

    #[test]
    fn stats_count_everything() {
        let corpus = generate(Language::Java, &CorpusConfig::default().with_files(10));
        let stats = corpus.stats();
        assert_eq!(stats.files, 10);
        assert!(stats.bytes > 100);
        assert!(stats.functions >= 10);
        assert!(stats.variables >= stats.functions);
    }

    #[test]
    fn language_display_names() {
        assert_eq!(Language::CSharp.to_string(), "C#");
        assert_eq!(Language::ALL.len(), 4);
    }

    #[test]
    fn language_from_name_aliases() {
        assert_eq!(Language::from_name("JS"), Some(Language::JavaScript));
        assert_eq!(Language::from_name("c#"), Some(Language::CSharp));
        assert_eq!(Language::from_name("python"), Some(Language::Python));
        assert_eq!(Language::from_name("klingon"), None);
    }
}
