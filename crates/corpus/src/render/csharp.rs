//! C# renderer. Functions render as class methods (the caller wraps them
//! in a class declaration).

use super::Helpers;
use crate::idiom::{IdiomInstance, IdiomKind};

fn return_type(kind: IdiomKind) -> &'static str {
    match kind {
        IdiomKind::WaitFlag
        | IdiomKind::HttpSend
        | IdiomKind::IndexLoop
        | IdiomKind::ReadConfig => "void",
        IdiomKind::CountMatches
        | IdiomKind::SumAmounts
        | IdiomKind::MaxLoop
        | IdiomKind::WalkNodes
        | IdiomKind::NestedCount
        | IdiomKind::RetryLoop
        | IdiomKind::ScanBuffer => "int",
        IdiomKind::FindElement => "Item",
        IdiomKind::GuardFlag => "bool",
        IdiomKind::BuildMessage | IdiomKind::TryRead => "string",
        IdiomKind::FilterCollection => "List<Item>",
    }
}

fn param_type(kind: IdiomKind, slot: &str) -> &'static str {
    match (kind, slot) {
        (IdiomKind::CountMatches, "collection") => "List<int>",
        (IdiomKind::CountMatches, "target") => "int",
        (IdiomKind::SumAmounts, "collection") => "List<int>",
        (IdiomKind::FindElement, "collection") => "List<Item>",
        (IdiomKind::FindElement, "target") => "string",
        (IdiomKind::BuildMessage, "key") => "string",
        (IdiomKind::HttpSend, "url") => "string",
        (IdiomKind::HttpSend, "request") => "HttpRequest",
        (IdiomKind::HttpSend, "callback") => "Callback",
        (IdiomKind::TryRead, "file") => "string",
        (IdiomKind::FilterCollection, "collection") => "List<Item>",
        (IdiomKind::IndexLoop, "collection") => "int[]",
        (IdiomKind::MaxLoop, "collection") => "int[]",
        (IdiomKind::ReadConfig, "config") => "Config",
        (IdiomKind::GuardFlag, "config") => "Config",
        (IdiomKind::NestedCount, "collection") => "int[]",
        (IdiomKind::ScanBuffer, "collection") => "int[]",
        (IdiomKind::NestedCount, "target") => "int",
        (IdiomKind::WalkNodes, "node") => "Node",
        _ => "object",
    }
}

/// Renders one method built around `inst`, named `fn_name`, indented for
/// inclusion in a class body.
pub fn method(fn_name: &str, inst: &IdiomInstance, h: &Helpers) -> String {
    let params = inst
        .kind
        .param_slots()
        .iter()
        .map(|s| format!("{} {}", param_type(inst.kind, s), inst.name(s)))
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = format!(
        "    public {} {}({}) {{\n",
        return_type(inst.kind),
        fn_name,
        params
    );
    body(inst, h, &mut out);
    out.push_str("    }\n");
    out
}

fn body(inst: &IdiomInstance, h: &Helpers, out: &mut String) {
    let n = |slot: &str| inst.name(slot).to_owned();
    match inst.kind {
        IdiomKind::WaitFlag => {
            let flag = n("flag");
            out.push_str(&format!("        bool {flag} = false;\n"));
            out.push_str(&format!("        while (!{flag}) {{\n"));
            out.push_str(&format!("            if ({}()) {{\n", h.check));
            out.push_str(&format!("                {flag} = true;\n"));
            out.push_str("            }\n        }\n");
        }
        IdiomKind::CountMatches => {
            let (c, coll, el, t) = (n("counter"), n("collection"), n("element"), n("target"));
            out.push_str(&format!("        int {c} = 0;\n"));
            out.push_str(&format!("        foreach (var {el} in {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el} == {t}) {{\n                {c}++;\n            }}\n"
            ));
            out.push_str(&format!("        }}\n        return {c};\n"));
        }
        IdiomKind::SumAmounts => {
            let (s, coll, a) = (n("sum"), n("collection"), n("amount"));
            out.push_str(&format!("        int {s} = 0;\n"));
            out.push_str(&format!("        foreach (var {a} in {coll}) {{\n"));
            out.push_str(&format!("            {s} += {a};\n        }}\n"));
            out.push_str(&format!("        return {s};\n"));
        }
        IdiomKind::FindElement => {
            let (r, coll, el, t) = (n("result"), n("collection"), n("element"), n("target"));
            out.push_str(&format!("        Item {r} = null;\n"));
            out.push_str(&format!("        foreach (var {el} in {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el}.{} == {t}) {{\n                {r} = {el};\n                break;\n            }}\n",
                capitalize(&h.id_prop)
            ));
            out.push_str(&format!("        }}\n        return {r};\n"));
        }
        IdiomKind::BuildMessage => {
            let (m, k) = (n("message"), n("key"));
            out.push_str(&format!("        string {m} = \"value: \" + {k};\n"));
            out.push_str(&format!("        {}({m});\n", capitalize(&h.log)));
            out.push_str(&format!("        return {m};\n"));
        }
        IdiomKind::HttpSend => {
            let (u, r, cb) = (n("url"), n("request"), n("callback"));
            out.push_str(&format!("        {r}.Open(\"GET\", {u}, false);\n"));
            out.push_str(&format!("        {r}.Send({cb});\n"));
        }
        IdiomKind::TryRead => {
            let (d, f, e) = (n("data"), n("file"), n("error"));
            out.push_str("        try {\n");
            out.push_str(&format!(
                "            string {d} = {}({f});\n",
                capitalize(&h.read)
            ));
            out.push_str(&format!("            return {d};\n"));
            out.push_str(&format!("        }} catch (IOException {e}) {{\n"));
            out.push_str(&format!(
                "            {}({e});\n            return null;\n        }}\n",
                capitalize(&h.log)
            ));
        }
        IdiomKind::FilterCollection => {
            let (r, coll, el) = (n("result"), n("collection"), n("element"));
            out.push_str(&format!("        var {r} = new List<Item>();\n"));
            out.push_str(&format!("        foreach (var {el} in {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el}.{}) {{\n                {r}.Add({el});\n            }}\n",
                capitalize(&h.pred_prop)
            ));
            out.push_str(&format!("        }}\n        return {r};\n"));
        }
        IdiomKind::IndexLoop => {
            let (i, coll, el, s) = (n("index"), n("collection"), n("element"), n("size"));
            out.push_str(&format!("        int {s} = {coll}.Length;\n"));
            out.push_str(&format!("        for (int {i} = 0; {i} < {s}; {i}++) {{\n"));
            out.push_str(&format!("            var {el} = {coll}[{i}];\n"));
            out.push_str(&format!(
                "            {}({el});\n        }}\n",
                capitalize(&h.consume)
            ));
        }
        IdiomKind::MaxLoop => {
            let (m, coll, el) = (n("max"), n("collection"), n("element"));
            out.push_str(&format!("        int {m} = {coll}[0];\n"));
            out.push_str(&format!("        foreach (var {el} in {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el} > {m}) {{\n                {m} = {el};\n            }}\n"
            ));
            out.push_str(&format!("        }}\n        return {m};\n"));
        }
        IdiomKind::ReadConfig => {
            let (c, s, u) = (n("config"), n("size"), n("url"));
            out.push_str(&format!("        int {s} = {c}.Size;\n"));
            out.push_str(&format!("        string {u} = {c}.Endpoint;\n"));
            out.push_str(&format!("        {}({s}, {u});\n", capitalize(&h.init)));
        }
        IdiomKind::GuardFlag => {
            let (flag, c) = (n("flag"), n("config"));
            out.push_str(&format!("        bool {flag} = false;\n"));
            out.push_str(&format!(
                "        if ({c}.{}) {{\n",
                capitalize(&h.pred_prop)
            ));
            out.push_str(&format!("            {flag} = true;\n        }}\n"));
            out.push_str(&format!("        return {flag};\n"));
        }
        IdiomKind::NestedCount => {
            let (c, i, coll, t) = (n("counter"), n("index"), n("collection"), n("target"));
            out.push_str(&format!("        int {c} = 0;\n"));
            out.push_str(&format!(
                "        for (int {i} = 0; {i} < {coll}.Length; {i}++) {{\n"
            ));
            out.push_str(&format!(
                "            if ({coll}[{i}] == {t}) {{\n                {c}++;\n            }}\n"
            ));
            out.push_str(&format!("        }}\n        return {c};\n"));
        }
        IdiomKind::RetryLoop => {
            let a = n("attempts");
            out.push_str(&format!("        int {a} = 0;\n"));
            out.push_str(&format!("        while (!{}()) {{\n", capitalize(&h.check)));
            out.push_str(&format!("            {a}++;\n        }}\n"));
            out.push_str(&format!("        return {a};\n"));
        }
        IdiomKind::ScanBuffer => {
            let (p, coll) = (n("cursor"), n("collection"));
            out.push_str(&format!("        int {p} = 0;\n"));
            out.push_str(&format!("        while ({coll}[{p}] != 0) {{\n"));
            out.push_str(&format!("            {p}++;\n        }}\n"));
            out.push_str(&format!("        return {p};\n"));
        }
        IdiomKind::WalkNodes => {
            let (nd, c) = (n("node"), n("counter"));
            out.push_str(&format!("        int {c} = 0;\n"));
            out.push_str(&format!("        while ({nd} != null) {{\n"));
            out.push_str(&format!(
                "            {c}++;\n            {nd} = {nd}.Next;\n        }}\n"
            ));
            out.push_str(&format!("        return {c};\n"));
        }
    }
}

/// C# surface convention: helper methods and properties are PascalCase.
fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NamePool;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_idiom_renders_parseable_csharp() {
        let mut rng = SmallRng::seed_from_u64(7);
        let h = Helpers::sample(&mut rng);
        for kind in IdiomKind::ALL {
            let mut pool = NamePool::new();
            for kw in pigeon_csharp::KEYWORDS {
                pool.reserve(kw);
            }
            let inst = IdiomInstance::generate(kind, &mut pool, 0.0, &mut rng);
            let src = format!("class W {{\n{}}}\n", method("F", &inst, &h));
            pigeon_csharp::parse(&src)
                .unwrap_or_else(|e| panic!("{kind:?} rendered unparseable C#: {e}\n{src}"));
        }
    }

    #[test]
    fn capitalize_handles_edges() {
        assert_eq!(capitalize("use"), "Use");
        assert_eq!(capitalize(""), "");
    }
}
