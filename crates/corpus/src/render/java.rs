//! Java renderer. Functions render as class methods (the caller wraps
//! them in a class declaration).

use super::Helpers;
use crate::idiom::{IdiomInstance, IdiomKind};

/// The method return type for an idiom.
fn return_type(kind: IdiomKind) -> &'static str {
    match kind {
        IdiomKind::WaitFlag
        | IdiomKind::HttpSend
        | IdiomKind::IndexLoop
        | IdiomKind::ReadConfig => "void",
        IdiomKind::CountMatches
        | IdiomKind::SumAmounts
        | IdiomKind::MaxLoop
        | IdiomKind::WalkNodes
        | IdiomKind::NestedCount
        | IdiomKind::RetryLoop
        | IdiomKind::ScanBuffer => "int",
        IdiomKind::FindElement => "Item",
        IdiomKind::GuardFlag => "boolean",
        IdiomKind::BuildMessage | IdiomKind::TryRead => "String",
        IdiomKind::FilterCollection => "List<Item>",
    }
}

/// The parameter type for a slot of an idiom.
fn param_type(kind: IdiomKind, slot: &str) -> &'static str {
    match (kind, slot) {
        (IdiomKind::CountMatches, "collection") => "List<Integer>",
        (IdiomKind::CountMatches, "target") => "int",
        (IdiomKind::SumAmounts, "collection") => "List<Integer>",
        (IdiomKind::FindElement, "collection") => "List<Item>",
        (IdiomKind::FindElement, "target") => "String",
        (IdiomKind::BuildMessage, "key") => "String",
        (IdiomKind::HttpSend, "url") => "String",
        (IdiomKind::HttpSend, "request") => "HttpRequest",
        (IdiomKind::HttpSend, "callback") => "Callback",
        (IdiomKind::TryRead, "file") => "String",
        (IdiomKind::FilterCollection, "collection") => "List<Item>",
        (IdiomKind::IndexLoop, "collection") => "int[]",
        (IdiomKind::MaxLoop, "collection") => "int[]",
        (IdiomKind::ReadConfig, "config") => "Config",
        (IdiomKind::GuardFlag, "config") => "Config",
        (IdiomKind::NestedCount, "collection") => "int[]",
        (IdiomKind::ScanBuffer, "collection") => "int[]",
        (IdiomKind::NestedCount, "target") => "int",
        (IdiomKind::WalkNodes, "node") => "Node",
        _ => "Object",
    }
}

/// Renders one method built around `inst`, named `fn_name`, indented for
/// inclusion in a class body.
pub fn method(fn_name: &str, inst: &IdiomInstance, h: &Helpers) -> String {
    let params = inst
        .kind
        .param_slots()
        .iter()
        .map(|s| format!("{} {}", param_type(inst.kind, s), inst.name(s)))
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = format!(
        "    {} {}({}) {{\n",
        return_type(inst.kind),
        fn_name,
        params
    );
    body(inst, h, &mut out);
    out.push_str("    }\n");
    out
}

fn body(inst: &IdiomInstance, h: &Helpers, out: &mut String) {
    let n = |slot: &str| inst.name(slot).to_owned();
    match inst.kind {
        IdiomKind::WaitFlag => {
            let flag = n("flag");
            out.push_str(&format!("        boolean {flag} = false;\n"));
            out.push_str(&format!("        while (!{flag}) {{\n"));
            out.push_str(&format!("            if ({}()) {{\n", h.check));
            out.push_str(&format!("                {flag} = true;\n"));
            out.push_str("            }\n        }\n");
        }
        IdiomKind::CountMatches => {
            let (c, coll, el, t) = (n("counter"), n("collection"), n("element"), n("target"));
            out.push_str(&format!("        int {c} = 0;\n"));
            out.push_str(&format!("        for (int {el} : {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el} == {t}) {{\n                {c}++;\n            }}\n"
            ));
            out.push_str(&format!("        }}\n        return {c};\n"));
        }
        IdiomKind::SumAmounts => {
            let (s, coll, a) = (n("sum"), n("collection"), n("amount"));
            out.push_str(&format!("        int {s} = 0;\n"));
            out.push_str(&format!("        for (int {a} : {coll}) {{\n"));
            out.push_str(&format!("            {s} += {a};\n        }}\n"));
            out.push_str(&format!("        return {s};\n"));
        }
        IdiomKind::FindElement => {
            let (r, coll, el, t) = (n("result"), n("collection"), n("element"), n("target"));
            out.push_str(&format!("        Item {r} = null;\n"));
            out.push_str(&format!("        for (Item {el} : {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el}.{} == {t}) {{\n                {r} = {el};\n                break;\n            }}\n",
                h.id_prop
            ));
            out.push_str(&format!("        }}\n        return {r};\n"));
        }
        IdiomKind::BuildMessage => {
            let (m, k) = (n("message"), n("key"));
            out.push_str(&format!("        String {m} = \"value: \" + {k};\n"));
            out.push_str(&format!("        {}({m});\n", h.log));
            out.push_str(&format!("        return {m};\n"));
        }
        IdiomKind::HttpSend => {
            let (u, r, cb) = (n("url"), n("request"), n("callback"));
            out.push_str(&format!("        {r}.open(\"GET\", {u}, false);\n"));
            out.push_str(&format!("        {r}.send({cb});\n"));
        }
        IdiomKind::TryRead => {
            let (d, f, e) = (n("data"), n("file"), n("error"));
            out.push_str("        try {\n");
            out.push_str(&format!("            String {d} = {}({f});\n", h.read));
            out.push_str(&format!("            return {d};\n"));
            out.push_str(&format!("        }} catch (IOException {e}) {{\n"));
            out.push_str(&format!(
                "            {}({e});\n            return null;\n        }}\n",
                h.log
            ));
        }
        IdiomKind::FilterCollection => {
            let (r, coll, el) = (n("result"), n("collection"), n("element"));
            out.push_str(&format!(
                "        List<Item> {r} = new ArrayList<Item>();\n"
            ));
            out.push_str(&format!("        for (Item {el} : {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el}.{}) {{\n                {r}.add({el});\n            }}\n",
                h.pred_prop
            ));
            out.push_str(&format!("        }}\n        return {r};\n"));
        }
        IdiomKind::IndexLoop => {
            let (i, coll, el, s) = (n("index"), n("collection"), n("element"), n("size"));
            out.push_str(&format!("        int {s} = {coll}.length;\n"));
            out.push_str(&format!("        for (int {i} = 0; {i} < {s}; {i}++) {{\n"));
            out.push_str(&format!("            int {el} = {coll}[{i}];\n"));
            out.push_str(&format!("            {}({el});\n        }}\n", h.consume));
        }
        IdiomKind::MaxLoop => {
            let (m, coll, el) = (n("max"), n("collection"), n("element"));
            out.push_str(&format!("        int {m} = {coll}[0];\n"));
            out.push_str(&format!("        for (int {el} : {coll}) {{\n"));
            out.push_str(&format!(
                "            if ({el} > {m}) {{\n                {m} = {el};\n            }}\n"
            ));
            out.push_str(&format!("        }}\n        return {m};\n"));
        }
        IdiomKind::ReadConfig => {
            let (c, s, u) = (n("config"), n("size"), n("url"));
            out.push_str(&format!("        int {s} = {c}.size;\n"));
            out.push_str(&format!("        String {u} = {c}.endpoint;\n"));
            out.push_str(&format!("        {}({s}, {u});\n", h.init));
        }
        IdiomKind::GuardFlag => {
            let (flag, c) = (n("flag"), n("config"));
            out.push_str(&format!("        boolean {flag} = false;\n"));
            out.push_str(&format!("        if ({c}.{}) {{\n", h.pred_prop));
            out.push_str(&format!("            {flag} = true;\n        }}\n"));
            out.push_str(&format!("        return {flag};\n"));
        }
        IdiomKind::NestedCount => {
            let (c, i, coll, t) = (n("counter"), n("index"), n("collection"), n("target"));
            out.push_str(&format!("        int {c} = 0;\n"));
            out.push_str(&format!(
                "        for (int {i} = 0; {i} < {coll}.length; {i}++) {{\n"
            ));
            out.push_str(&format!(
                "            if ({coll}[{i}] == {t}) {{\n                {c}++;\n            }}\n"
            ));
            out.push_str(&format!("        }}\n        return {c};\n"));
        }
        IdiomKind::RetryLoop => {
            let a = n("attempts");
            out.push_str(&format!("        int {a} = 0;\n"));
            out.push_str(&format!("        while (!{}()) {{\n", h.check));
            out.push_str(&format!("            {a}++;\n        }}\n"));
            out.push_str(&format!("        return {a};\n"));
        }
        IdiomKind::ScanBuffer => {
            let (p, coll) = (n("cursor"), n("collection"));
            out.push_str(&format!("        int {p} = 0;\n"));
            out.push_str(&format!("        while ({coll}[{p}] != 0) {{\n"));
            out.push_str(&format!("            {p}++;\n        }}\n"));
            out.push_str(&format!("        return {p};\n"));
        }
        IdiomKind::WalkNodes => {
            let (nd, c) = (n("node"), n("counter"));
            out.push_str(&format!("        int {c} = 0;\n"));
            out.push_str(&format!("        while ({nd} != null) {{\n"));
            out.push_str(&format!(
                "            {c}++;\n            {nd} = {nd}.next;\n        }}\n"
            ));
            out.push_str(&format!("        return {c};\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NamePool;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_idiom_renders_parseable_java() {
        let mut rng = SmallRng::seed_from_u64(7);
        let h = Helpers::sample(&mut rng);
        for kind in IdiomKind::ALL {
            let mut pool = NamePool::new();
            for kw in pigeon_java::KEYWORDS {
                pool.reserve(kw);
            }
            let inst = IdiomInstance::generate(kind, &mut pool, 0.0, &mut rng);
            let src = format!("class W {{\n{}}}\n", method("f", &inst, &h));
            pigeon_java::parse(&src)
                .unwrap_or_else(|e| panic!("{kind:?} rendered unparseable Java: {e}\n{src}"));
        }
    }

    #[test]
    fn count_matches_matches_fig9_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let h = Helpers::sample(&mut rng);
        let mut pool = NamePool::new();
        let inst = IdiomInstance::generate(IdiomKind::CountMatches, &mut pool, 0.0, &mut rng);
        let src = format!("class W {{\n{}}}\n", method("count", &inst, &h));
        let ast = pigeon_java::parse(&src).unwrap();
        let text = pigeon_ast::sexp(&ast);
        assert!(text.contains("ForEach"), "no for-each in:\n{text}");
        assert!(text.contains("UnaryPostfix++"));
    }
}
