//! Per-language source renderers for idiom instances.
//!
//! Each submodule turns an [`IdiomInstance`](crate::IdiomInstance) into
//! concrete source text in one language, mirroring how the paper's
//! PIGEON tool "consists of separate modules that parse and traverse the
//! AST of a program in each different language, but the main algorithm is
//! the same across all languages" — here the *generation* is per-language
//! and everything downstream is shared.

pub mod csharp;
pub mod java;
pub mod js;
pub mod python;

use crate::names::weighted_choice;
use rand::Rng;

/// Helper-function names referenced by rendered bodies. Drawn once per
/// file so the callees vary across the corpus without exploding the
/// vocabulary.
#[derive(Debug, Clone)]
pub struct Helpers {
    /// Boolean condition helper (`someCondition()` in the paper's Fig. 1).
    pub check: String,
    /// Element consumer.
    pub consume: String,
    /// Logging sink.
    pub log: String,
    /// Resource reader.
    pub read: String,
    /// Initialisation routine.
    pub init: String,
    /// Predicate property tested on elements.
    pub pred_prop: String,
    /// Identity property compared against the search target.
    pub id_prop: String,
}

/// One generic callee-name table shared by *every* helper purpose.
///
/// Real corpora do not reserve distinct verbs per idiom — `process()` can
/// check a condition, consume an element or kick off IO. Drawing every
/// helper from one shared pool keeps the *identity* of a nearby callee
/// from short-circuiting role identification; the discriminating signal
/// is the syntactic structure around the element, which longer paths see
/// more of (the effect behind the paper's Fig. 10).
const CALLEES: &[(&str, u32)] = &[
    ("process", 14),
    ("check", 14),
    ("handle", 12),
    ("run", 10),
    ("apply", 10),
    ("update", 10),
    ("emit", 8),
    ("get", 8),
    ("step", 7),
    ("track", 7),
];

/// One generic property-name table shared by every property purpose.
const PROPS: &[(&str, u32)] = &[
    ("value", 16),
    ("state", 14),
    ("field", 12),
    ("info", 12),
    ("status", 12),
    ("meta", 12),
    ("mark", 11),
    ("ref", 11),
];

impl Helpers {
    /// Samples a helper set. All callees share one generic name pool (and
    /// likewise all properties), drawn without replacement per file.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let mut used: Vec<String> = Vec::new();
        let mut draw = |table: &[(&str, u32)], rng: &mut R| -> String {
            for _ in 0..32 {
                let cand = pick(table, rng);
                if !used.contains(&cand) {
                    used.push(cand.clone());
                    return cand;
                }
            }
            // Table exhausted: reuse is acceptable.
            pick(table, rng)
        };
        Helpers {
            check: draw(CALLEES, rng),
            consume: draw(CALLEES, rng),
            log: draw(CALLEES, rng),
            read: draw(CALLEES, rng),
            init: draw(CALLEES, rng),
            pred_prop: draw(PROPS, rng),
            id_prop: draw(PROPS, rng),
        }
    }
}

fn pick<R: Rng>(table: &[(&str, u32)], rng: &mut R) -> String {
    weighted_choice(table, rng).to_owned()
}

/// Samples one generic callee name (for distractor statements).
pub(crate) fn sample_callee<R: Rng>(rng: &mut R) -> String {
    pick(CALLEES, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn helpers_sample_deterministically() {
        let a = Helpers::sample(&mut SmallRng::seed_from_u64(4));
        let b = Helpers::sample(&mut SmallRng::seed_from_u64(4));
        assert_eq!(a.check, b.check);
        assert_eq!(a.consume, b.consume);
    }
}
