//! The role-conditioned naming model.
//!
//! The statistical phenomenon the paper exploits is that programmers
//! choose identifier names as a function of the element's syntactic and
//! semantic role — a loop's stopping flag is called `done` or `finished`,
//! a loop counter `i` or `index` (paper §2 and Table 4). The synthetic
//! corpus reproduces that dependency explicitly: every generated variable
//! is assigned a [`Role`], and its surface name is drawn from the role's
//! skewed name distribution. The synonym classes intentionally mirror the
//! paper's Table 4b (`req ∼ request`, `array ∼ arr ∼ list`, …).

use rand::Rng;

/// The semantic role a generated variable plays in its idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// Loop induction variable.
    LoopIndex,
    /// Counting accumulator.
    Counter,
    /// Summing accumulator.
    Sum,
    /// Boolean loop-termination flag (the paper's `done` example).
    Flag,
    /// Boolean guard/state flag set from a condition (shares the surface
    /// syntax of [`Role::Flag`]; only long paths tell them apart).
    GuardFlag,
    /// A collection being iterated.
    Collection,
    /// The current element of an iteration.
    Element,
    /// A search target compared against elements.
    Target,
    /// A computed result to be returned.
    ResultValue,
    /// An HTTP-style request object.
    Request,
    /// An HTTP-style response object.
    Response,
    /// A resource locator string.
    Url,
    /// A function/handler passed around to be invoked later.
    Callback,
    /// A caught or propagated error.
    ErrorValue,
    /// A human-readable message string.
    Message,
    /// An opaque payload.
    Data,
    /// A filesystem path or file handle.
    FileName,
    /// A collection size or length.
    Size,
    /// A short-lived scratch variable.
    Temp,
    /// An identifying key or label.
    KeyName,
    /// A configuration object.
    Config,
    /// A user/account entity.
    User,
    /// A connection/client/session handle.
    Connection,
    /// A monetary or numeric amount being accumulated.
    Amount,
    /// A current node/cursor in a traversal.
    Node,
    /// A retry/attempt counter incremented inside a wait loop. Shares the
    /// `= 0` / bare `++` surface of [`Role::Counter`]; only the enclosing
    /// loop structure tells them apart.
    Attempts,
    /// A scanning position moved through a buffer inside a while loop.
    /// Shares the subscripting surface of [`Role::LoopIndex`].
    Cursor,
}

impl Role {
    /// All roles, for exhaustiveness checks and sampling.
    pub const ALL: [Role; 27] = [
        Role::LoopIndex,
        Role::Counter,
        Role::Sum,
        Role::Flag,
        Role::GuardFlag,
        Role::Collection,
        Role::Element,
        Role::Target,
        Role::ResultValue,
        Role::Request,
        Role::Response,
        Role::Url,
        Role::Callback,
        Role::ErrorValue,
        Role::Message,
        Role::Data,
        Role::FileName,
        Role::Size,
        Role::Temp,
        Role::KeyName,
        Role::Config,
        Role::User,
        Role::Connection,
        Role::Amount,
        Role::Node,
        Role::Attempts,
        Role::Cursor,
    ];

    /// The weighted name distribution for this role. Weights are relative
    /// frequencies; the head of each list is the canonical name.
    ///
    /// The distributions are deliberately peaked (the canonical name
    /// carries ~60–70% of the mass): in real corpora the *original*
    /// name being recovered is strongly determined by the role, which is
    /// what lets the paper reach ~60% exact-match accuracy. A flatter
    /// naming model would cap Bayes-optimal accuracy at the head
    /// probability regardless of the learner.
    pub fn names(self) -> &'static [(&'static str, u32)] {
        match self {
            Role::LoopIndex => &[
                ("i", 65),
                ("index", 12),
                ("j", 9),
                ("idx", 8),
                ("k", 4),
                ("pos", 2),
            ],
            Role::Counter => &[
                ("count", 66),
                ("counter", 14),
                ("total", 9),
                ("num", 6),
                ("cnt", 5),
            ],
            Role::Sum => &[
                ("sum", 64),
                ("total", 18),
                ("acc", 9),
                ("result", 6),
                ("subtotal", 3),
            ],
            Role::Flag => &[
                ("done", 62),
                ("found", 12),
                ("finished", 7),
                ("stop", 5),
                ("complete", 5),
                ("ok", 4),
                ("success", 3),
                ("ended", 2),
            ],
            Role::GuardFlag => &[
                ("enabled", 62),
                ("active", 14),
                ("visible", 8),
                ("allowed", 8),
                ("ready", 8),
            ],
            Role::Collection => &[
                ("items", 60),
                ("values", 12),
                ("list", 8),
                ("array", 6),
                ("elements", 4),
                ("arr", 4),
                ("objects", 2),
                ("keys", 2),
                ("entries", 2),
            ],
            Role::Element => &[
                ("item", 62),
                ("value", 12),
                ("element", 8),
                ("elem", 5),
                ("el", 4),
                ("entry", 4),
                ("v", 3),
                ("x", 2),
            ],
            Role::Target => &[
                ("target", 68),
                ("needle", 9),
                ("wanted", 8),
                ("expected", 8),
                ("query", 7),
            ],
            Role::ResultValue => &[
                ("result", 66),
                ("res", 12),
                ("ret", 8),
                ("out", 7),
                ("output", 7),
            ],
            Role::Request => &[("request", 70), ("req", 30)],
            Role::Response => &[("response", 68), ("resp", 20), ("reply", 12)],
            Role::Url => &[
                ("url", 68),
                ("uri", 10),
                ("link", 8),
                ("endpoint", 8),
                ("address", 6),
            ],
            Role::Callback => &[
                ("callback", 64),
                ("cb", 12),
                ("handler", 12),
                ("fn", 5),
                ("listener", 7),
            ],
            Role::ErrorValue => &[("err", 60), ("error", 18), ("e", 12), ("ex", 6), ("exc", 4)],
            Role::Message => &[("message", 64), ("msg", 20), ("text", 10), ("note", 6)],
            Role::Data => &[("data", 68), ("payload", 12), ("body", 10), ("content", 10)],
            Role::FileName => &[
                ("file", 62),
                ("path", 16),
                ("filename", 12),
                ("filepath", 6),
                ("f", 4),
            ],
            Role::Size => &[
                ("size", 62),
                ("length", 14),
                ("len", 12),
                ("n", 8),
                ("capacity", 4),
            ],
            Role::Temp => &[("tmp", 66), ("temp", 18), ("t", 10), ("aux", 6)],
            Role::KeyName => &[
                ("name", 60),
                ("key", 20),
                ("id", 10),
                ("label", 6),
                ("tag", 4),
            ],
            Role::Config => &[
                ("config", 64),
                ("options", 14),
                ("opts", 10),
                ("settings", 7),
                ("params", 5),
            ],
            Role::User => &[("user", 68), ("account", 14), ("person", 8), ("member", 10)],
            Role::Connection => &[
                ("connection", 60),
                ("conn", 14),
                ("client", 12),
                ("session", 8),
                ("socket", 6),
            ],
            Role::Amount => &[
                ("amount", 62),
                ("price", 14),
                ("cost", 10),
                ("fee", 6),
                ("balance", 8),
            ],
            Role::Attempts => &[
                ("attempts", 64),
                ("retries", 14),
                ("tries", 10),
                ("rounds", 6),
                ("spins", 6),
            ],
            Role::Cursor => &[
                ("pos", 60),
                ("cursor", 16),
                ("offset", 12),
                ("ptr", 6),
                ("mark", 6),
            ],
            Role::Node => &[
                ("node", 64),
                ("current", 14),
                ("cur", 10),
                ("cursor", 5),
                ("head", 7),
            ],
        }
    }

    /// The canonical (most frequent) name for the role.
    pub fn canonical(self) -> &'static str {
        self.names()[0].0
    }

    /// Whether `name` belongs to this role's synonym class.
    pub fn admits(self, name: &str) -> bool {
        self.names().iter().any(|&(n, _)| n == name)
    }

    /// Samples a name from the role's distribution.
    pub fn sample<R: Rng>(self, rng: &mut R) -> &'static str {
        weighted_choice(self.names(), rng)
    }
}

/// Samples from a weighted table.
///
/// # Panics
///
/// Panics if `table` is empty or all weights are zero.
pub fn weighted_choice<'a, T: ?Sized, R: Rng>(table: &'a [(&'a T, u32)], rng: &mut R) -> &'a T {
    let total: u32 = table.iter().map(|&(_, w)| w).sum();
    assert!(total > 0, "weighted_choice requires positive total weight");
    let mut roll = rng.gen_range(0..total);
    for &(item, w) in table {
        if roll < w {
            return item;
        }
        roll -= w;
    }
    unreachable!("roll bounded by total weight")
}

/// A pool of identifier names guaranteed distinct within one scope.
///
/// Generators draw each variable's name through the pool; when the
/// sampled name collides with one already used in the scope, the pool
/// falls back to the next-best name of the same role, and ultimately to a
/// numbered variant — the same thing a programmer does with `i`, `j`,
/// `k`.
#[derive(Debug, Clone, Default)]
pub struct NamePool {
    used: Vec<String>,
}

impl NamePool {
    /// An empty pool for a fresh scope.
    pub fn new() -> Self {
        NamePool { used: Vec::new() }
    }

    /// Draws a name for `role`, avoiding collisions within this scope.
    pub fn draw<R: Rng>(&mut self, role: Role, rng: &mut R) -> String {
        let first = role.sample(rng).to_owned();
        if !self.used.contains(&first) {
            self.used.push(first.clone());
            return first;
        }
        for &(candidate, _) in role.names() {
            if !self.used.iter().any(|u| u == candidate) {
                self.used.push(candidate.to_owned());
                return candidate.to_owned();
            }
        }
        for suffix in 2.. {
            let numbered = format!("{first}{suffix}");
            if !self.used.contains(&numbered) {
                self.used.push(numbered.clone());
                return numbered;
            }
        }
        unreachable!("numbered variants are unbounded")
    }

    /// Marks an externally chosen name as used in this scope.
    pub fn reserve(&mut self, name: &str) {
        if !self.used.iter().any(|u| u == name) {
            self.used.push(name.to_owned());
        }
    }

    /// The names drawn so far.
    pub fn used(&self) -> &[String] {
        &self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_role_has_names_with_positive_weight() {
        for role in Role::ALL {
            assert!(!role.names().is_empty(), "{role:?} has no names");
            assert!(role.names().iter().all(|&(_, w)| w > 0));
        }
    }

    #[test]
    fn canonical_is_most_frequent() {
        for role in Role::ALL {
            let max = role.names().iter().map(|&(_, w)| w).max().unwrap();
            assert_eq!(
                role.names()[0].1,
                max,
                "{role:?}: canonical name must carry the top weight"
            );
        }
    }

    #[test]
    fn sampling_respects_distribution_head() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut done = 0;
        for _ in 0..1000 {
            if Role::Flag.sample(&mut rng) == "done" {
                done += 1;
            }
        }
        // done carries weight 62/100.
        assert!((520..720).contains(&done), "done sampled {done}/1000");
    }

    #[test]
    fn admits_matches_name_lists() {
        assert!(Role::Flag.admits("done"));
        assert!(Role::Flag.admits("ended"));
        assert!(!Role::Flag.admits("items"));
        assert!(Role::Collection.admits("arr"));
    }

    #[test]
    fn pool_avoids_collisions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pool = NamePool::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..12 {
            let name = pool.draw(Role::LoopIndex, &mut rng);
            assert!(seen.insert(name), "pool produced a duplicate");
        }
    }

    #[test]
    fn pool_reserve_blocks_names() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pool = NamePool::new();
        for &(n, _) in Role::Flag.names() {
            pool.reserve(n);
        }
        let name = pool.draw(Role::Flag, &mut rng);
        assert!(!Role::Flag.admits(&name), "fallback must leave the class");
    }

    #[test]
    fn weighted_choice_is_deterministic_under_seed() {
        let table: &[(&str, u32)] = &[("a", 1), ("b", 2), ("c", 3)];
        let x: Vec<&str> = {
            let mut rng = SmallRng::seed_from_u64(5);
            (0..10).map(|_| weighted_choice(table, &mut rng)).collect()
        };
        let y: Vec<&str> = {
            let mut rng = SmallRng::seed_from_u64(5);
            (0..10).map(|_| weighted_choice(table, &mut rng)).collect()
        };
        assert_eq!(x, y);
    }
}
